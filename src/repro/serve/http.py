"""Asyncio HTTP/JSON front-end of the analysis service (stdlib only).

A deliberately small HTTP/1.1 implementation -- request line, headers,
``Content-Length`` bodies, keep-alive -- is all the four endpoints need:

========================  =====================================================
``POST /v1/analyze``      one chain question -> one answer document
``POST /v1/analyze_batch``  ``{"requests": [...]}`` -> per-item answers/errors
``GET /healthz``          liveness + drain state (503 while draining)
``GET /metrics``          obs metrics snapshot + service/cache statistics
========================  =====================================================

Error mapping: parse failures are 400, per-client admission refusals
and queue overload are 429 with a ``Retry-After`` header, expired
deadlines are 504, and a draining server or an open circuit breaker
answers 503 (breaker refusals also carry ``Retry-After``).  Every
``Retry-After`` value passes :func:`format_retry_after`, which clamps
it positive and finite.  See ``docs/serving.md`` for the operator
guide and ``docs/robustness.md`` for the failure-path contracts.

:class:`AnalysisServer` hosts the service either *inside* an existing
event loop (``start_async``/``stop_async``, used by the CLI runner) or
on a background thread with a synchronous ``start()``/``stop()`` pair --
the form tests, doctests, benchmarks and notebooks want.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import socket
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .. import engine
from ..obs import metrics as _metrics
from ..obs.accesslog import AccessLog
from ..obs.correlate import new_request_id, use_request_id
from ..obs.log import get_logger, log_event
from ..obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from ..obs.prometheus import render_prometheus
from ..obs.slo import evaluate_slo
from ..runtime.breaker import BreakerOpenError
from .admission import AdmissionController, client_key
from .config import ServeConfig
from .service import (
    AnalysisService,
    ClosingError,
    DeadlineError,
    OverloadedError,
    RequestParseError,
    parse_analysis_doc,
    parse_deadline,
    result_to_doc,
)

_logger = get_logger("serve.http")

#: Largest accepted request body (a batch of a few thousand questions).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: How much of an oversized body we are willing to read-and-discard to
#: keep the connection synchronised; beyond this the connection closes.
_MAX_DRAIN_BYTES = 64 * 1024 * 1024

#: Hard cap on headers per request (defensive; we only read a handful).
_MAX_HEADERS = 64

#: Clamp range for every Retry-After value we emit: always positive
#: (a zero tells clients to hammer us) and never absurd.
_RETRY_AFTER_MIN_S = 0.001
_RETRY_AFTER_MAX_S = 3600.0


def format_retry_after(seconds: object) -> str:
    """*seconds* as a ``Retry-After`` header value, clamped sane.

    Whatever upstream hands us -- negative, zero, ``inf``, ``nan`` or
    garbage -- the emitted value is positive and finite, because a
    malformed backoff hint turns a polite client into a battering ram.
    """
    try:
        value = float(seconds)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        value = _RETRY_AFTER_MIN_S
    if not math.isfinite(value):
        value = _RETRY_AFTER_MAX_S
    value = min(max(value, _RETRY_AFTER_MIN_S), _RETRY_AFTER_MAX_S)
    return f"{value:.3f}"

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class _HttpError(Exception):
    """Routing-level failure carrying its HTTP status.

    ``recoverable=True`` means the parser stayed synchronised with the
    byte stream (the offending request was fully consumed), so the
    keep-alive connection survives and pipelined successors still get
    answers; ``False`` means we cannot trust our position and the
    connection closes after the error response.
    """

    def __init__(self, status: int, message: str,
                 headers: Sequence[Tuple[str, str]] = (),
                 recoverable: bool = False):
        super().__init__(message)
        self.status = status
        self.headers = tuple(headers)
        self.recoverable = recoverable


class _HttpRequest:
    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive",
                 "request_id", "peername")

    def __init__(self, method: str, path: str, headers: Dict[str, str],
                 body: bytes, keep_alive: bool):
        self.method = method
        self.path, _, self.query = path.partition("?")
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive
        self.request_id: Optional[str] = None
        self.peername: Optional[tuple] = None

    def wants_prometheus(self) -> bool:
        """Content negotiation: does the client prefer text exposition?

        ``Accept: text/plain`` (what Prometheus scrapers and ``curl -H``
        send) or ``?format=prometheus`` selects the text format; the
        default stays the JSON snapshot ``sealpaa obs`` consumes.
        """
        if "format=prometheus" in self.query:
            return True
        accept = self.headers.get("accept", "")
        return "text/plain" in accept or "openmetrics" in accept


async def _read_request(reader: asyncio.StreamReader) -> Optional[_HttpRequest]:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, "too many headers")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _HttpError(400, f"bad Content-Length: {length_text!r}") from None
    if length > MAX_BODY_BYTES:
        # Read-and-discard the oversized body (bounded) so the stream
        # stays synchronised and pipelined requests behind it survive.
        recoverable = length <= _MAX_DRAIN_BYTES
        if recoverable:
            remaining = length
            while remaining > 0:
                chunk = await reader.read(min(remaining, 1 << 16))
                if not chunk:
                    recoverable = False
                    break
                remaining -= len(chunk)
        raise _HttpError(413, f"body over {MAX_BODY_BYTES} bytes",
                         recoverable=recoverable)
    body = await reader.readexactly(length) if length else b""
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and version.strip().endswith("1.1")
    return _HttpRequest(method.upper(), path, headers, body, keep_alive)


class _RawText:
    """A pre-rendered non-JSON response body with its content type."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str):
        self.text = text
        self.content_type = content_type


def _encode_response(
    status: int,
    doc: object,
    keep_alive: bool,
    extra_headers: Sequence[Tuple[str, str]] = (),
) -> bytes:
    if isinstance(doc, _RawText):
        payload = doc.text.encode("utf-8")
        content_type = doc.content_type
    else:
        payload = (json.dumps(doc) + "\n").encode()
        content_type = "application/json"
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload


def _error_doc(status: int, message: str) -> Dict[str, object]:
    return {"error": {"code": status, "message": message}}


class AnalysisServer:
    """The HTTP server around one :class:`AnalysisService`."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.service = AnalysisService(self.config)
        self.admission = AdmissionController(
            rate_rps=self.config.rate_limit_rps,
            burst=self.config.rate_limit_burst,
        )
        self.access_log: Optional[AccessLog] = (
            AccessLog(self.config.access_log,
                      max_bytes=self.config.access_log_max_bytes,
                      backups=self.config.access_log_backups)
            if self.config.access_log else None
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._port: Optional[int] = None
        self._admin_port: Optional[int] = None
        self._metrics_were_enabled = False
        # Background-thread hosting state (sync start()/stop()).
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread_stop: Optional[asyncio.Event] = None
        self._thread_error: Optional[BaseException] = None
        self._ready = threading.Event()

    # -- addresses ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after start)."""
        if self._port is None:
            raise RuntimeError("server has not started")
        return self._port

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    @property
    def admin_port(self) -> int:
        """The loopback admin port (after :meth:`start_admin_async`)."""
        if self._admin_port is None:
            raise RuntimeError("admin listener has not started")
        return self._admin_port

    # -- event-loop lifecycle ---------------------------------------------

    async def start_async(self, sock: Optional[socket.socket] = None,
                          reuse_port: bool = False) -> None:
        """Bind the listening socket and start serving (non-blocking).

        *sock* serves on an already-bound listening socket (the
        supervisor's inherited-FD fallback); *reuse_port* binds with
        ``SO_REUSEPORT`` so sibling worker processes can share one
        address and let the kernel balance accepts between them.
        """
        self._metrics_were_enabled = _metrics.is_enabled()
        if not self._metrics_were_enabled:
            _metrics.enable()
        await self.service.start()
        if sock is not None:
            self._server = await asyncio.start_server(
                self._client_connected, sock=sock
            )
        elif reuse_port:
            self._server = await asyncio.start_server(
                self._client_connected, self.config.host, self.config.port,
                reuse_port=True,
            )
        else:
            self._server = await asyncio.start_server(
                self._client_connected, self.config.host, self.config.port
            )
        self._port = self._server.sockets[0].getsockname()[1]
        log_event(_logger, "serve.listen", host=self.config.host,
                  port=self._port)

    async def start_admin_async(self) -> int:
        """Open a private loopback listener serving the same routes.

        Under the supervisor every worker shares one public port, so
        "scrape *this* worker's /metrics" needs a per-process address;
        the supervisor aggregates across these.  Returns the port.
        """
        self._admin_server = await asyncio.start_server(
            self._client_connected, "127.0.0.1", 0
        )
        self._admin_port = self._admin_server.sockets[0].getsockname()[1]
        return self._admin_port

    async def stop_async(self) -> None:
        """Graceful drain: close the listener, finish the queue, stop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
            self._admin_server = None
        await self.service.drain()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        if not self._metrics_were_enabled:
            _metrics.disable()

    # -- background-thread lifecycle (tests, docs, benchmarks) -------------

    def start(self, ready_timeout_s: float = 10.0) -> str:
        """Run the server on a daemon thread; returns the base URL.

        The synchronous twin of ``start_async`` for callers without an
        event loop (doctests, benchmarks, notebooks).  Pair with
        :meth:`stop`.
        """
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._ready.clear()
        self._thread_error = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._thread_body()),
            name="sealpaa-serve", daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(ready_timeout_s):
            raise RuntimeError("server did not start within "
                               f"{ready_timeout_s}s")
        if self._thread_error is not None:
            self._thread = None
            raise RuntimeError(
                f"server failed to start: {self._thread_error}"
            ) from self._thread_error
        return self.base_url

    async def _thread_body(self) -> None:
        self._thread_loop = asyncio.get_running_loop()
        self._thread_stop = asyncio.Event()
        try:
            await self.start_async()
        except BaseException as exc:  # surfaced to start() in the caller
            self._thread_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._thread_stop.wait()
        await self.stop_async()

    def stop(self, timeout_s: float = 30.0) -> None:
        """Drain and stop a :meth:`start`-ed server (idempotent)."""
        thread, loop, stop = self._thread, self._thread_loop, self._thread_stop
        self._thread = self._thread_loop = self._thread_stop = None
        if thread is None or loop is None or stop is None:
            return
        loop.call_soon_threadsafe(stop.set)
        thread.join(timeout_s)
        if thread.is_alive():
            raise RuntimeError(f"server did not stop within {timeout_s}s")

    # -- connection handling ----------------------------------------------

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        peername = writer.get_extra_info("peername")
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _HttpError as exc:
                    writer.write(_encode_response(
                        exc.status, _error_doc(exc.status, str(exc)),
                        keep_alive=exc.recoverable,
                        extra_headers=exc.headers,
                    ))
                    await writer.drain()
                    if exc.recoverable:
                        continue
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                request.peername = peername
                response = await self._respond(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive or self.service.draining:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request: _HttpRequest) -> bytes:
        # Correlation: honour an inbound X-Request-Id (so a gateway's ID
        # follows the request through spans and the access log), else
        # mint one; either way it is echoed on the response.
        request.request_id = (request.headers.get("x-request-id")
                              or new_request_id())
        route = f"{request.method} {request.path}"
        endpoint = {
            "POST /v1/analyze": ("analyze", self._handle_analyze),
            "POST /v1/analyze_batch": ("analyze_batch",
                                       self._handle_analyze_batch),
            "GET /healthz": ("healthz", self._handle_healthz),
            "GET /metrics": ("metrics", self._handle_metrics),
        }.get(route)
        if endpoint is None:
            known_paths = ("/v1/analyze", "/v1/analyze_batch",
                           "/healthz", "/metrics")
            status = 405 if request.path in known_paths else 404
            self._log_access(request, status, 0.0)
            return _encode_response(
                status, _error_doc(status, f"no route {route}"),
                request.keep_alive,
                extra_headers=[("X-Request-Id", request.request_id)],
            )
        name, handler = endpoint
        if _metrics.is_enabled():
            _metrics.inc(f"serve.http.{name}.requests")
        started = asyncio.get_running_loop().time()
        try:
            with use_request_id(request.request_id), \
                    _metrics.timed(f"serve.http.{name}.seconds"):
                status, doc, headers = await handler(request)
        except _HttpError as exc:
            status, doc, headers = exc.status, _error_doc(exc.status,
                                                          str(exc)), exc.headers
        except Exception as exc:  # never kill the connection loop
            log_event(_logger, "serve.http.error", endpoint=name,
                      error=repr(exc))
            status, doc, headers = 500, _error_doc(500, "internal error"), ()
        if _metrics.is_enabled():
            _metrics.inc(f"serve.http.status.{status}")
        elapsed = asyncio.get_running_loop().time() - started
        self._log_access(request, status, elapsed)
        headers = list(headers) + [("X-Request-Id", request.request_id)]
        return _encode_response(status, doc, request.keep_alive, headers)

    def _log_access(self, request: _HttpRequest, status: int,
                    elapsed_s: float) -> None:
        if self.access_log is None:
            return
        try:
            self.access_log.emit(
                "serve.request",
                request_id=request.request_id,
                method=request.method,
                path=request.path,
                status=status,
                duration_ms=round(elapsed_s * 1000, 3),
            )
        except OSError as exc:  # a full disk must not kill the server
            log_event(_logger, "serve.accesslog.error", error=repr(exc))

    # -- endpoint handlers -------------------------------------------------

    def _parse_body(self, request: _HttpRequest) -> object:
        try:
            return json.loads(request.body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc

    async def _submit_doc(self, doc: object,
                          admission_key: Optional[str] = None
                          ) -> Dict[str, object]:
        if admission_key is not None:
            retry_after = self.admission.check(admission_key)
            if retry_after is not None:
                raise _HttpError(
                    429, "client rate limit exceeded; retry after "
                         f"{format_retry_after(retry_after)}s",
                    headers=[("Retry-After",
                              format_retry_after(retry_after))],
                    recoverable=True,
                )
        analysis = parse_analysis_doc(doc)
        deadline = parse_deadline(doc, self.config.default_deadline_s)
        result = await self.service.submit(analysis, deadline)
        return result_to_doc(result)

    def _admission_key(self, request: _HttpRequest) -> Optional[str]:
        if not self.admission.enabled:
            return None
        return client_key(request.headers, request.peername)

    async def _handle_analyze(self, request: _HttpRequest):
        doc = self._parse_body(request)
        try:
            return 200, await self._submit_doc(
                doc, self._admission_key(request)), ()
        except RequestParseError as exc:
            raise _HttpError(400, str(exc)) from exc
        except OverloadedError as exc:
            raise _HttpError(
                429, str(exc),
                headers=[("Retry-After",
                          format_retry_after(exc.retry_after_s))],
            ) from exc
        except BreakerOpenError as exc:
            raise _HttpError(
                503, str(exc),
                headers=[("Retry-After",
                          format_retry_after(exc.retry_after_s))],
            ) from exc
        except DeadlineError as exc:
            raise _HttpError(504, str(exc)) from exc
        except ClosingError as exc:
            raise _HttpError(503, str(exc)) from exc

    async def _handle_analyze_batch(self, request: _HttpRequest):
        doc = self._parse_body(request)
        if not isinstance(doc, dict) or not isinstance(doc.get("requests"),
                                                       list):
            raise _HttpError(400, 'body must be {"requests": [...]}')
        items: List[object] = doc["requests"]
        if not items:
            raise _HttpError(400, '"requests" must not be empty')
        if len(items) > self.config.queue_limit:
            raise _HttpError(
                413, f"batch of {len(items)} exceeds the queue limit "
                     f"({self.config.queue_limit})",
            )
        admission_key = self._admission_key(request)
        outcomes = await asyncio.gather(
            *(self._submit_doc(item, admission_key) for item in items),
            return_exceptions=True,
        )
        results: List[Dict[str, object]] = []
        refused = 0
        for outcome in outcomes:
            if isinstance(outcome, dict):
                results.append(outcome)
            elif isinstance(outcome, RequestParseError):
                results.append(_error_doc(400, str(outcome)))
            elif isinstance(outcome, OverloadedError):
                refused += 1
                results.append(_error_doc(429, str(outcome)))
            elif isinstance(outcome, _HttpError):
                # Per-item admission refusal (each item costs a token).
                refused += 1
                results.append(_error_doc(outcome.status, str(outcome)))
            elif isinstance(outcome, BreakerOpenError):
                refused += 1
                results.append(_error_doc(503, str(outcome)))
            elif isinstance(outcome, DeadlineError):
                results.append(_error_doc(504, str(outcome)))
            elif isinstance(outcome, ClosingError):
                results.append(_error_doc(503, str(outcome)))
            elif isinstance(outcome, BaseException):
                raise outcome
        if refused == len(items):
            # Nothing was accepted: surface pure refusal as a 429 so
            # naive clients back off, with the same Retry-After hint.
            return 429, {"results": results}, (
                ("Retry-After",
                 format_retry_after(self.config.retry_after_s)),
            )
        return 200, {"results": results}, ()

    async def _handle_healthz(self, request: _HttpRequest):
        draining = self.service.draining
        stats = self.service.stats()
        slo = evaluate_slo(
            _metrics.get_registry().snapshot(), self.config.slo,
            shed_rate=stats.get("recent_shed_rate"),
        )
        if draining:
            status = "draining"
        else:
            # Degraded is still alive: the process serves, so /healthz
            # answers 200 and the verdict carries the nuance (liveness
            # probes keep passing; alerting reads the slo block).
            status = slo["status"]
        doc = {
            "status": status,
            "queue_depth": stats["queue_depth"],
            "max_batch": self.config.max_batch,
            "slo": slo,
        }
        return (503 if draining else 200), doc, ()

    async def _handle_metrics(self, request: _HttpRequest):
        if "format=state" in request.query:
            # Mergeable wire form: exact histogram/timer state the
            # supervisor folds across workers via merge_state().
            doc = {
                "state": _metrics.get_registry().export_state(),
                "service": self.service.stats(),
            }
            return 200, doc, ()
        doc = _metrics.get_registry().snapshot()
        doc["service"] = self.service.stats()
        if request.wants_prometheus():
            text = render_prometheus(doc)
            return 200, _RawText(text, _PROM_CONTENT_TYPE), ()
        return 200, doc, ()


async def _serve_until_signal(config: ServeConfig) -> None:
    server = AnalysisServer(config)
    await server.start_async()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    handled = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            handled.append(signum)
        except (NotImplementedError, RuntimeError):
            pass
    print(f"serving on {server.base_url}  "
          f"(max_batch={config.max_batch}, "
          f"window={config.batch_window_s * 1000:.1f}ms, "
          f"queue={config.queue_limit}"
          + (f", cache={config.cache_dir}" if config.cache_dir else "")
          + "); SIGTERM drains gracefully", flush=True)
    try:
        await stop.wait()
    finally:
        for signum in handled:
            loop.remove_signal_handler(signum)
        print("draining...", flush=True)
        await server.stop_async()
        print("stopped", flush=True)


def run_server(config: Optional[ServeConfig] = None) -> None:
    """Blocking entry point of ``sealpaa serve``: serve until SIGTERM/
    SIGINT, then drain gracefully."""
    asyncio.run(_serve_until_signal(config or ServeConfig()))
