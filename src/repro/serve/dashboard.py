"""``sealpaa dashboard`` -- a stdlib-curses live view over ``/metrics``.

Polls a running ``sealpaa serve`` instance's JSON ``/metrics`` endpoint
(and ``/healthz`` for the SLO verdict) every ``interval`` seconds and
renders the operator signals in one terminal screen:

* throughput (served / batches, requests-per-second since the last
  poll) and shed counters;
* queue depth, batch occupancy (mean and last), worker pool gauges;
* result-cache tiers (memory/disk hits, hit rate);
* latency quantiles (p50/p95/p99) of the request and batch timers;
* the ``/healthz`` SLO verdict with per-check pass/fail.

The rendering is split from the terminal loop: :func:`render_lines`
turns two snapshots into plain text lines (unit-testable, reused by
``--once`` for non-TTY terminals and CI), while :func:`run_dashboard`
owns the curses screen, keyboard handling (``q`` quits) and polling.
Only the Python standard library is used -- the dashboard must work on
the barest operator box.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Mapping, Optional, Tuple


def fetch_json(url: str, timeout_s: float = 2.0) -> Mapping[str, object]:
    """GET *url* and parse the JSON body (stdlib urllib)."""
    request = urllib.request.Request(
        url, headers={"Accept": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))


def poll(base_url: str, timeout_s: float = 2.0) -> Dict[str, object]:
    """One dashboard sample: ``/metrics`` plus the ``/healthz`` verdict.

    A 503 from ``/healthz`` (draining) still carries a JSON body; other
    failures surface as an ``error`` entry so the screen can show a
    disconnected state instead of crashing.
    """
    sample: Dict[str, object] = {"ts": time.time()}
    try:
        sample["metrics"] = fetch_json(base_url + "/metrics", timeout_s)
    except (urllib.error.URLError, OSError, ValueError) as exc:
        sample["error"] = str(exc)
        return sample
    try:
        sample["health"] = fetch_json(base_url + "/healthz", timeout_s)
    except urllib.error.HTTPError as exc:
        try:
            sample["health"] = json.loads(exc.read().decode("utf-8"))
        except ValueError:
            sample["health"] = {"status": f"http {exc.code}"}
    except (urllib.error.URLError, OSError, ValueError) as exc:
        sample["health"] = {"status": f"unreachable: {exc}"}
    return sample


def _fmt_ms(seconds: object) -> str:
    return f"{float(seconds) * 1000:8.2f}ms"


def _fmt_rate(value: Optional[float]) -> str:
    return "   --" if value is None else f"{value:5.1%}"


def _timer_line(name: str, stats: Mapping[str, object]) -> str:
    return (f"  {name:<34s} n={int(stats.get('count') or 0):<8d}"
            f" p50={_fmt_ms(stats.get('p50_s', 0.0))}"
            f" p95={_fmt_ms(stats.get('p95_s', 0.0))}"
            f" p99={_fmt_ms(stats.get('p99_s', 0.0))}")


def render_lines(
    sample: Mapping[str, object],
    previous: Optional[Mapping[str, object]] = None,
    base_url: str = "",
) -> List[str]:
    """Turn one poll *sample* (and the *previous* one, for rates) into
    the dashboard's text lines."""
    stamp = time.strftime("%H:%M:%S",
                          time.localtime(float(sample.get("ts", 0.0))))
    lines = [f"sealpaa dashboard  {base_url}  {stamp}"]
    if "error" in sample:
        lines.append("")
        lines.append(f"  UNREACHABLE: {sample['error']}")
        lines.append("")
        lines.append("  (is `sealpaa serve` running at this address?)")
        return lines

    metrics: Mapping[str, object] = sample.get("metrics") or {}
    service: Mapping[str, object] = metrics.get("service") or {}
    gauges: Mapping[str, object] = metrics.get("gauges") or {}
    timers: Mapping[str, Mapping[str, object]] = metrics.get("timers") or {}
    histograms: Mapping[str, Mapping[str, object]] = (
        metrics.get("histograms") or {})
    health: Mapping[str, object] = sample.get("health") or {}

    served = int(service.get("served") or 0)
    rps = None
    if previous is not None and "metrics" in previous:
        prev_service = previous["metrics"].get("service") or {}  # type: ignore[union-attr]
        dt = float(sample.get("ts", 0.0)) - float(previous.get("ts", 0.0))
        if dt > 0:
            rps = (served - int(prev_service.get("served") or 0)) / dt
    occupancy = histograms.get("serve.batch_occupancy") or {}

    throughput = f"{rps:7.1f}" if rps is not None else "     --"
    lines.append("")
    lines.append(
        f"  health: {health.get('status', '?'):<10s}"
        f"  throughput: {throughput} req/s"
    )
    lines.append(
        f"  served: {served:<10d} batches: "
        f"{int(service.get('batches') or 0):<8d}"
        f" mean batch: {float(service.get('mean_batch_size') or 0.0):6.2f}"
        f" last occupancy: {float(occupancy.get('max') or 0.0):4.0f}"
    )
    shed_rate = service.get("recent_shed_rate")
    lines.append(
        f"  queue depth: {int(service.get('queue_depth') or 0):<6d}"
        f" shed: {int(service.get('shed') or 0):<8d}"
        f" recent shed rate: "
        f"{_fmt_rate(float(shed_rate) if shed_rate is not None else None)}"
        + ("   DRAINING" if service.get("draining") else "")
    )
    supervisor: Mapping[str, object] = metrics.get("supervisor") or {}
    if supervisor:
        # Pointed at a supervisor status port: one line of fleet state.
        lines.append(
            f"  supervisor: {int(supervisor.get('workers_ready') or 0)}"
            f"/{int(supervisor.get('workers_target') or 0)} workers ready"
            f"  restarts: {int(supervisor.get('restarts_used') or 0)}"
            f"/{int(supervisor.get('restart_budget') or 0)}"
            f"  mode: {supervisor.get('mode', '?')}"
            f"  [{str(supervisor.get('state', '?')).upper()}]"
        )
    workers = gauges.get("engine.parallel.workers")
    if workers:
        lines.append(
            f"  workers: {int(float(workers)):<4d} pool occupancy: "
            f"{float(gauges.get('engine.parallel.occupancy') or 0.0):5.1%}"
        )

    for cache_name, title in (("result_cache", "result cache"),
                              ("segment_cache", "segment cache")):
        cache: Mapping[str, object] = service.get(cache_name) or {}
        if not cache:
            continue
        lines.append("")
        lines.append(f"  {title}")
        for tier in ("memory", "disk"):
            tier_doc: Mapping[str, object] = cache.get(tier) or {}
            if not tier_doc:
                continue
            hits = int(tier_doc.get("hits") or 0)
            misses = int(tier_doc.get("misses") or 0)
            rate = hits / (hits + misses) if hits + misses else None
            lines.append(
                f"    {tier:<8s} hits={hits:<10d} misses={misses:<10d}"
                f" hit rate={_fmt_rate(rate)}"
            )

    latency_timers = [
        name for name in timers
        if name.startswith("serve.") or name.startswith("engine.")
    ]
    if latency_timers:
        lines.append("")
        lines.append("  latency (rolling window)")
        for name in sorted(latency_timers):
            lines.append(_timer_line(name, timers[name]))

    checks = (health.get("slo") or {}).get("checks")  # type: ignore[union-attr]
    if checks:
        lines.append("")
        lines.append("  SLO")
        for check in checks:
            status = str(check.get("status"))
            if status in ("disabled", "no_data"):
                detail = f"({status})"
            else:
                detail = (f"{float(check.get('observed', 0.0)):.4g}"
                          f" vs {float(check.get('threshold', 0.0)):.4g}"
                          f"  [{status.upper()}]")
            lines.append(f"    {str(check.get('name')):<18s} {detail}")

    lines.append("")
    lines.append("  q quits; polls every refresh interval")
    return lines


def render_once(base_url: str, timeout_s: float = 2.0) -> str:
    """One non-interactive sample rendered as plain text (``--once``)."""
    sample = poll(base_url, timeout_s)
    return "\n".join(render_lines(sample, base_url=base_url))


def run_dashboard(
    base_url: str,
    interval_s: float = 1.0,
    iterations: Optional[int] = None,
) -> int:
    """The interactive curses loop; returns a process exit code.

    *iterations* bounds the number of polls (used by tests and smoke
    scripts); ``None`` runs until ``q`` or Ctrl-C.  Falls back with a
    helpful message when the terminal cannot host curses.
    """
    try:
        import curses
    except ImportError:  # pragma: no cover - always present on CPython/unix
        print("curses is unavailable; use `sealpaa dashboard --once`")
        return 2

    def loop(screen: "curses._CursesWindow") -> int:
        curses.curs_set(0)
        screen.nodelay(True)
        screen.timeout(int(interval_s * 1000))
        previous: Optional[Mapping[str, object]] = None
        count = 0
        while iterations is None or count < iterations:
            sample = poll(base_url)
            lines = render_lines(sample, previous, base_url=base_url)
            previous = sample
            count += 1
            screen.erase()
            rows, cols = screen.getmaxyx()
            for y, line in enumerate(lines[: rows - 1]):
                screen.addnstr(y, 0, line, cols - 1)
            screen.refresh()
            key = screen.getch()  # doubles as the poll-interval sleep
            if key in (ord("q"), ord("Q")):
                break
        return 0

    try:
        return curses.wrapper(loop)
    except curses.error:
        print("terminal too small or not curses-capable; "
              "use `sealpaa dashboard --once`")
        return 2
