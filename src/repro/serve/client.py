"""A production-shaped client for the analysis service.

``urllib.request.urlopen`` in a loop is fine for a demo and wrong for an
operator: no backoff (retries hammer an overloaded server), no jitter
(every client retries in lockstep), no deadline (a wedged server hangs
the caller forever), a fresh TCP connection per request, and no respect
for the ``Retry-After`` the server went to some trouble to compute.
:class:`AnalysisClient` is the client the serving layer's failure
semantics were designed against:

* **capped exponential backoff with full jitter** -- attempt *k* sleeps
  ``uniform(0, min(backoff_max_s, backoff_base_s * 2**k))``, so a
  thousand clients bounced by one worker crash do not return as one
  synchronised thundering herd;
* **Retry-After honoured** -- a server hint (429 admission/shedding,
  503 open breaker) becomes the floor of the next sleep;
* **idempotent retries keyed by request fingerprint** -- every attempt
  of one logical request carries the same ``X-Request-Id`` (a SHA-256
  of method, path and canonical body), so server logs and traces show
  one logical request with N attempts, not N unrelated requests.
  Analysis is a pure function of the request document, which is what
  makes blind retry safe in the first place;
* **two-level deadlines** -- ``attempt_timeout_s`` bounds each socket
  operation, ``total_deadline_s`` bounds the whole retry dance; the
  client never sleeps past the total deadline;
* **connection reuse** -- one keep-alive connection per client,
  transparently re-established when the server (or a worker crash)
  drops it.

One client instance serves one thread; give each worker thread its own
(the chaos soak does exactly that).
"""

from __future__ import annotations

import hashlib
import http.client
import json
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from ..core.exceptions import ReproError

#: HTTP statuses that mean "try again later" rather than "you are wrong".
RETRY_STATUSES = (429, 503, 504)

#: Hard ceiling on a single backoff sleep, whatever Retry-After says.
MAX_SLEEP_S = 30.0


class ClientError(ReproError):
    """Base class of every failure :class:`AnalysisClient` raises."""


class ServerStatusError(ClientError):
    """The server answered with a non-retryable error status."""

    def __init__(self, status: int, message: str,
                 doc: Optional[dict] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.doc = doc or {}


class RetryBudgetError(ClientError):
    """Attempts or the total deadline ran out before a success."""

    def __init__(self, message: str, attempts: int,
                 last_status: Optional[int] = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_status = last_status


def request_fingerprint(method: str, path: str, doc: object) -> str:
    """Stable identity of one logical request (all retries share it)."""
    canonical = json.dumps(
        {"method": method, "path": path, "body": doc},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header, or ``None`` if unusable."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    if not 0 < seconds < float("inf"):
        return None
    return seconds


class AnalysisClient:
    """Retrying, deadline-aware, connection-reusing service client."""

    def __init__(
        self,
        base_url: str,
        total_deadline_s: float = 30.0,
        attempt_timeout_s: float = 10.0,
        max_attempts: int = 8,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        retry_statuses: Sequence[int] = RETRY_STATUSES,
        api_key: Optional[str] = None,
        rng: Optional[random.Random] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if total_deadline_s <= 0 or attempt_timeout_s <= 0:
            raise ValueError("deadlines must be positive")
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"base_url must be http://host:port, "
                             f"got {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.total_deadline_s = total_deadline_s
        self.attempt_timeout_s = attempt_timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.retry_statuses = frozenset(retry_statuses)
        self.api_key = api_key
        self._rng = rng or random.Random()
        self._clock = clock
        self._sleep = sleep
        self._conn: Optional[http.client.HTTPConnection] = None
        self.requests_sent = 0
        self.retries = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "AnalysisClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API --------------------------------------------------------

    def analyze(self, doc: Dict[str, object],
                total_deadline_s: Optional[float] = None
                ) -> Dict[str, object]:
        """One ``/v1/analyze`` question, retried to completion."""
        return self._request_json("POST", "/v1/analyze", doc,
                                  total_deadline_s)

    def analyze_batch(self, docs: List[Dict[str, object]],
                      total_deadline_s: Optional[float] = None
                      ) -> List[Dict[str, object]]:
        """One ``/v1/analyze_batch`` round-trip; returns the items."""
        answer = self._request_json("POST", "/v1/analyze_batch",
                                    {"requests": list(docs)},
                                    total_deadline_s)
        return list(answer.get("results") or [])

    def healthz(self) -> Tuple[int, Dict[str, object]]:
        """One un-retried health probe: ``(status, document)``.

        A 503 here is an *observation* (draining / given up), not a
        failure, so no status is raised; network-level failures still
        raise :class:`ClientError`.
        """
        status, doc, _ = self._one_attempt("GET", "/healthz", None,
                                           self.attempt_timeout_s, None)
        return status, doc if isinstance(doc, dict) else {}

    def metrics(self) -> Dict[str, object]:
        """One un-retried ``/metrics`` snapshot scrape."""
        status, doc, _ = self._one_attempt("GET", "/metrics", None,
                                           self.attempt_timeout_s, None)
        if status != 200 or not isinstance(doc, dict):
            raise ServerStatusError(status, "metrics scrape failed",
                                    doc if isinstance(doc, dict) else None)
        return doc

    # -- retry engine ------------------------------------------------------

    def _request_json(self, method: str, path: str, doc: object,
                      total_deadline_s: Optional[float]) -> dict:
        budget = (total_deadline_s if total_deadline_s is not None
                  else self.total_deadline_s)
        deadline_at = self._clock() + budget
        request_id = "cli-" + request_fingerprint(method, path, doc)[:24]
        last_status: Optional[int] = None
        last_error = "no attempt was made"
        attempts_made = 0
        for attempt in range(self.max_attempts):
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                break
            if attempt:
                self.retries += 1
            attempts_made += 1
            timeout = min(self.attempt_timeout_s, remaining)
            retry_after: Optional[float] = None
            try:
                status, answer, retry_after = self._one_attempt(
                    method, path, doc, timeout, request_id)
            except ClientError as exc:
                # Network-level failure: connection refused (worker
                # restarting), reset mid-flight (worker SIGKILLed),
                # timeout.  All retryable for an idempotent request.
                last_status, last_error = None, str(exc)
            else:
                if status < 300:
                    if not isinstance(answer, dict):
                        raise ServerStatusError(
                            status, f"expected a JSON object, "
                                    f"got {type(answer).__name__}")
                    return answer
                message = _error_message(answer)
                if status not in self.retry_statuses:
                    raise ServerStatusError(status, message,
                                            answer if isinstance(answer, dict)
                                            else None)
                last_status, last_error = status, message
            delay = self._backoff_delay(attempt, retry_after)
            remaining = deadline_at - self._clock()
            if remaining <= 0 or attempt == self.max_attempts - 1:
                break
            self._sleep(min(delay, remaining))
        raise RetryBudgetError(
            f"request failed after {attempts_made} attempt(s) "
            f"within {budget:.3f}s: {last_error}",
            attempts=attempts_made, last_status=last_status,
        )

    def _backoff_delay(self, attempt: int,
                       retry_after: Optional[float]) -> float:
        cap = min(self.backoff_max_s, self.backoff_base_s * (2 ** attempt))
        delay = self._rng.uniform(0.0, cap)
        if retry_after is not None:
            # The server's hint is a floor, not a schedule: the jitter
            # on top keeps simultaneous retriers spread out.
            delay = max(delay, retry_after)
        return min(delay, MAX_SLEEP_S)

    # -- transport ---------------------------------------------------------

    def _one_attempt(self, method: str, path: str, doc: object,
                     timeout: float, request_id: Optional[str]
                     ) -> Tuple[int, object, Optional[float]]:
        body = (json.dumps(doc).encode()
                if method == "POST" else None)
        headers = {"Content-Type": "application/json"}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        conn = self._conn
        if conn is None:
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=timeout)
        else:
            conn.timeout = timeout
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
        self.requests_sent += 1
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            conn.close()
            self._conn = None
            raise ClientError(f"transport failure: {exc!r}") from exc
        self._conn = conn
        if response.will_close:
            self.close()
        retry_after = parse_retry_after(response.getheader("Retry-After"))
        try:
            answer = json.loads(raw.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            answer = None
        return response.status, answer, retry_after


def _error_message(answer: object) -> str:
    if isinstance(answer, dict):
        error = answer.get("error")
        if isinstance(error, dict) and error.get("message"):
            return str(error["message"])
    return "server error"
