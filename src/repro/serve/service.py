"""Protocol-agnostic batching core of the analysis service.

:class:`AnalysisService` owns the micro-batching pipeline the HTTP layer
(:mod:`repro.serve.http`) feeds:

* ``submit()`` enqueues one normalised
  :class:`~repro.engine.request.AnalysisRequest` and awaits its answer;
* a single dispatcher task drains the queue in micro-batches -- up to
  ``max_batch`` requests, waiting at most ``batch_window_s`` for
  companions -- and hands each batch to :func:`repro.engine.run_batch`,
  so N concurrent clients share one vectorised chunk instead of N
  scalar runs;
* the queue is bounded (``queue_limit``); a full queue sheds the new
  request immediately with :class:`OverloadedError` (HTTP 429 upstream)
  instead of building unbounded latency;
* per-request deadlines become one deadline-only
  :class:`~repro.runtime.budget.RunBudget` per batch (the tightest
  waiting deadline), reusing the engines' cooperative cancellation, and
  requests that expire while queued fail with :class:`DeadlineError`
  without costing any engine time;
* ``drain()`` implements graceful shutdown: stop accepting, finish what
  is queued, give up after a grace period.

Engine dispatch is additionally wrapped in a
:class:`~repro.runtime.breaker.CircuitBreaker` (``breaker_failures``
consecutive dispatch failures open it; 503 + ``Retry-After`` upstream
while open) and a failed *multi-request* batch is isolated: each member
re-runs alone, so one poisoned request costs only its own client a 500
instead of failing every batch-mate.

Obs metrics: ``serve.enqueued`` / ``serve.shed`` / ``serve.expired`` /
``serve.batches`` / ``serve.batched_requests`` /
``serve.batch_isolated`` counters, the ``serve.queue_depth`` and
``serve.batch_size`` gauges, the ``serve.batch_seconds`` timer around
each engine dispatch, and the ``serve.breaker.*`` family from the
circuit breaker.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Dict, List, Optional

from .. import engine
from ..core.exceptions import AnalysisError, ReproError
from ..engine.request import AnalysisRequest, AnalysisResult
from ..obs import metrics as _metrics
from ..obs.correlate import current_request_id, use_request_id
from ..obs.log import get_logger, log_event
from ..obs.slo import RollingRatio
from ..runtime import chaos as _chaos
from ..runtime.breaker import CircuitBreaker
from ..runtime.budget import RunBudget
from .config import ServeConfig

_logger = get_logger("serve.service")

#: Upper bound accepted for a client-supplied ``deadline_s``.
MAX_DEADLINE_S = 3600.0


class OverloadedError(ReproError):
    """The bounded request queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"request queue is full; retry after {retry_after_s:.3f}s"
        )
        self.retry_after_s = retry_after_s


class DeadlineError(ReproError):
    """The request's deadline expired before an answer was produced."""


class ClosingError(ReproError):
    """The service is draining and accepts no new work."""


class RequestParseError(ReproError):
    """The request document could not be turned into an AnalysisRequest."""


def parse_analysis_doc(doc: object) -> AnalysisRequest:
    """Normalise one ``/v1/analyze`` JSON document.

    Accepted shapes (exactly one chain spelling):

    * ``{"cell": "LPAA 1", "width": 8, ...}`` -- uniform chain;
    * ``{"cells": ["LPAA 7", "LPAA 7", "LPAA 1"], ...}`` -- per-stage;
    * ``{"spec": "LPAA7:4, LPAA1:4", ...}`` -- hybrid spec string;
    * ``{"adder": "loa:16:8", ...}`` -- a named zoo adder config
      (:mod:`repro.core.adder_zoo`); always adds with carry-in 0.

    ``p_a`` / ``p_b`` are a scalar or per-stage list (default 0.5),
    ``p_cin`` a scalar (default 0.5).  ``kind`` switches the question
    from plain P(error) (the default, ``"chain"``) to one of the
    error-magnitude kinds (``"error_distribution"`` / ``"med"`` /
    ``"mred"`` / ``"wce"``); the answer document then carries the
    matching ``med``/``wce``/... fields.  Anything malformed raises
    :class:`RequestParseError` (HTTP 400) *before* the request is
    queued, so bad input never costs engine time.
    """
    from ..engine.request import DISTRIBUTION_KINDS, KIND_CHAIN

    if not isinstance(doc, dict):
        raise RequestParseError(
            f"request body must be a JSON object, got {type(doc).__name__}"
        )
    unknown = set(doc) - {"cell", "cells", "spec", "adder", "width",
                          "p_a", "p_b", "p_cin", "deadline_s", "kind"}
    if unknown:
        raise RequestParseError(
            f"unknown request fields: {', '.join(sorted(map(str, unknown)))}"
        )
    kind = doc.get("kind", KIND_CHAIN)
    if kind != KIND_CHAIN and kind not in DISTRIBUTION_KINDS:
        raise RequestParseError(
            f"unknown kind {kind!r}; known: {KIND_CHAIN}, "
            f"{', '.join(DISTRIBUTION_KINDS)}"
        )
    spellings = [name for name in ("cell", "cells", "spec", "adder")
                 if doc.get(name)]
    if len(spellings) != 1:
        raise RequestParseError(
            'exactly one of "cell", "cells", "spec" or "adder" is required'
        )
    spelling = spellings[0]
    if spelling == "adder":
        if float(doc.get("p_cin", 0.0) or 0.0) != 0.0:
            raise RequestParseError(
                "named adders add with carry-in 0; leave p_cin unset"
            )
        try:
            return AnalysisRequest.zoo(
                str(doc["adder"]),
                p_a=doc.get("p_a", 0.5),
                p_b=doc.get("p_b", 0.5),
                kind=kind,
            )
        except ReproError as exc:
            raise RequestParseError(str(exc)) from exc
        except (TypeError, ValueError) as exc:
            raise RequestParseError(f"malformed request: {exc}") from exc
    width = doc.get("width")
    if spelling == "cell":
        if width is None:
            raise RequestParseError('"cell" requires an integer "width"')
        chain, chain_width = doc["cell"], int(width)
    elif spelling == "cells":
        cells = doc["cells"]
        if not isinstance(cells, list) or not cells:
            raise RequestParseError('"cells" must be a non-empty list')
        chain, chain_width = list(cells), None
    else:
        from ..core.hybrid import HybridChain

        try:
            chain, chain_width = HybridChain.from_spec(str(doc["spec"])), None
        except ReproError as exc:
            raise RequestParseError(f"bad chain spec: {exc}") from exc
    try:
        if kind != KIND_CHAIN:
            return AnalysisRequest.distribution(
                chain, chain_width,
                p_a=doc.get("p_a", 0.5),
                p_b=doc.get("p_b", 0.5),
                p_cin=doc.get("p_cin", 0.5),
                kind=kind,
            )
        return AnalysisRequest.chain(
            chain, chain_width,
            p_a=doc.get("p_a", 0.5),
            p_b=doc.get("p_b", 0.5),
            p_cin=doc.get("p_cin", 0.5),
        )
    except ReproError as exc:
        raise RequestParseError(str(exc)) from exc
    except (TypeError, ValueError) as exc:
        raise RequestParseError(f"malformed request: {exc}") from exc


def parse_deadline(doc: object, default_s: Optional[float]) -> Optional[float]:
    """Client ``deadline_s`` (bounded), falling back to the configured one."""
    deadline = doc.get("deadline_s") if isinstance(doc, dict) else None
    if deadline is None:
        return default_s
    try:
        deadline = float(deadline)
    except (TypeError, ValueError):
        raise RequestParseError(
            f"deadline_s must be a number, got {deadline!r}"
        ) from None
    if not 0.0 < deadline <= MAX_DEADLINE_S:
        raise RequestParseError(
            f"deadline_s must be in (0, {MAX_DEADLINE_S:.0f}], got {deadline}"
        )
    return deadline


def result_to_doc(result: AnalysisResult) -> Dict[str, object]:
    """The JSON answer document for one finished analysis.

    Plain P(error) answers keep their original seven-field shape;
    error-magnitude answers additionally carry ``kind``, the populated
    metric fields (``med``/``nmed``/``mse``/``wce``/``mred``/``bias``),
    and -- for ``error_distribution`` questions -- the full
    ``distribution`` PMF as ``[[delta, probability], ...]``.
    """
    from ..engine.request import KIND_CHAIN

    doc: Dict[str, object] = {
        "p_error": result.p_error,
        "p_success": result.p_success,
        "engine": result.engine,
        "exact": result.exact,
        "width": result.width,
        "cells": list(result.cell_names),
        "is_upper_bound": result.is_upper_bound,
    }
    if result.kind != KIND_CHAIN:
        doc["kind"] = result.kind
        for name in ("med", "nmed", "mse", "wce", "mred", "bias"):
            value = getattr(result, name)
            if value is not None:
                doc[name] = value
        if result.distribution is not None:
            doc["distribution"] = [
                [delta, prob] for delta, prob in result.distribution
            ]
        if result.interval is not None:
            doc["interval"] = list(result.interval)
        if result.samples is not None:
            doc["samples"] = result.samples
    return doc


class _Pending:
    """One queued request: the future its client awaits plus its deadline."""

    __slots__ = ("request", "future", "deadline_at", "request_id")

    def __init__(self, request: AnalysisRequest,
                 future: "asyncio.Future[AnalysisResult]",
                 deadline_at: Optional[float],
                 request_id: Optional[str] = None):
        self.request = request
        self.future = future
        self.deadline_at = deadline_at
        self.request_id = request_id

    def remaining(self, now: float) -> Optional[float]:
        if self.deadline_at is None:
            return None
        return self.deadline_at - now


class AnalysisService:
    """Coalesces concurrent analysis requests into engine micro-batches."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue(
            maxsize=self.config.queue_limit
        )
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._closing = False
        self._started = False
        self._batches = 0
        self._served = 0
        self._shed = 0
        # Rolling window of admission outcomes (True = shed) feeding
        # the /healthz shed-rate SLO -- cumulative counters cannot tell
        # "shed a lot an hour ago" from "shedding right now".
        self._shed_window = RollingRatio()
        self._isolated = 0
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            reset_timeout_s=self.config.breaker_reset_s,
            half_open_max=self.config.breaker_half_open_max,
            metric_prefix="serve.breaker",
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Mount the result cache and start the dispatcher task."""
        if self._started:
            return
        if self.config.cache_dir is not None:
            engine.configure_result_cache(
                self.config.cache_dir,
                memory_entries=self.config.memory_cache_entries,
                max_disk_entries=self.config.max_disk_entries,
            )
        prefilled = 0
        if self.config.segment_cache_dir is not None:
            # Warm-start: segments persisted by earlier processes serve
            # the first requests after a restart at memory-tier speed.
            segments = engine.configure_segment_cache(
                self.config.segment_cache_dir,
                max_disk_entries=self.config.max_disk_entries,
            )
            prefilled = segments.prefill()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )
        self._started = True
        log_event(_logger, "serve.start",
                  max_batch=self.config.max_batch,
                  queue_limit=self.config.queue_limit,
                  cache_dir=self.config.cache_dir,
                  segment_cache_dir=self.config.segment_cache_dir,
                  segments_prefilled=prefilled)

    @property
    def draining(self) -> bool:
        return self._closing

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish the queue, stop.

        Waits up to ``drain_grace_s`` for queued work to finish; whatever
        is still pending afterwards fails with :class:`ClosingError`.
        """
        self._closing = True
        if self._dispatcher is None:
            return
        try:
            await asyncio.wait_for(self._queue.join(),
                                   timeout=self.config.drain_grace_s)
        except asyncio.TimeoutError:
            log_event(_logger, "serve.drain.timeout",
                      pending=self._queue.qsize())
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        while not self._queue.empty():
            pending = self._queue.get_nowait()
            self._queue.task_done()
            if not pending.future.done():
                pending.future.set_exception(
                    ClosingError("service shut down before this request ran")
                )
        log_event(_logger, "serve.drain.done",
                  served=self._served, batches=self._batches)

    # -- request path ------------------------------------------------------

    async def submit(
        self,
        request: AnalysisRequest,
        deadline_s: Optional[float] = None,
    ) -> AnalysisResult:
        """Queue one request and await its engine answer.

        Raises :class:`ClosingError` while draining,
        :class:`~repro.runtime.breaker.BreakerOpenError` while the
        engine circuit breaker is open (HTTP 503 upstream),
        :class:`OverloadedError` when the bounded queue is full and
        :class:`DeadlineError` when *deadline_s* elapses first.
        """
        if self._closing:
            raise ClosingError("service is draining; no new work accepted")
        if not self._started:
            raise AnalysisError("AnalysisService.start() has not run")
        self.breaker.check()
        loop = asyncio.get_running_loop()
        deadline_at = (loop.time() + deadline_s
                       if deadline_s is not None else None)
        pending = _Pending(request, loop.create_future(), deadline_at,
                           request_id=current_request_id())
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self._shed += 1
            self._shed_window.record(True)
            if _metrics.is_enabled():
                _metrics.inc("serve.shed")
            raise OverloadedError(self.config.retry_after_s) from None
        self._shed_window.record(False)
        if _metrics.is_enabled():
            _metrics.inc("serve.enqueued")
            _metrics.set_gauge("serve.queue_depth", self._queue.qsize())
        if deadline_s is None:
            return await pending.future
        try:
            return await asyncio.wait_for(
                asyncio.shield(pending.future), timeout=deadline_s
            )
        except asyncio.TimeoutError:
            pending.future.cancel()
            raise DeadlineError(
                f"no answer within the {deadline_s:.3f}s deadline"
            ) from None

    # -- dispatcher --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            if self.config.max_batch > 1 and self.config.batch_window_s > 0:
                window_ends = loop.time() + self.config.batch_window_s
                while len(batch) < self.config.max_batch:
                    timeout = window_ends - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(
                            self._queue.get(), timeout=timeout))
                    except asyncio.TimeoutError:
                        break
            else:
                while (len(batch) < self.config.max_batch
                       and not self._queue.empty()):
                    batch.append(self._queue.get_nowait())
            if _metrics.is_enabled():
                _metrics.set_gauge("serve.queue_depth", self._queue.qsize())
            try:
                await self._run_batch(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _run_batch(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[_Pending] = []
        expired = 0
        for pending in batch:
            if pending.future.done():
                continue  # client went away (deadline fired in submit)
            remaining = pending.remaining(now)
            if remaining is not None and remaining <= 0:
                expired += 1
                pending.future.set_exception(DeadlineError(
                    "deadline expired while queued"
                ))
                continue
            live.append(pending)
        if expired and _metrics.is_enabled():
            _metrics.inc("serve.expired", expired)
        if not live:
            return
        deadlines = [p.remaining(now) for p in live]
        tightest = min((d for d in deadlines if d is not None), default=None)
        budget = RunBudget.for_deadline(tightest)
        requests = [p.request for p in live]
        # One correlation ID represents the whole micro-batch in engine
        # spans and worker trace lanes: the (only) member's ID for a
        # solo batch, else the first member's ID tagged with the count.
        member_ids = [p.request_id for p in live if p.request_id]
        if not member_ids:
            batch_id = None
        elif len(live) == 1:
            batch_id = member_ids[0]
        else:
            batch_id = f"{member_ids[0]}+{len(live) - 1}"
        run = functools.partial(
            engine.run_batch, requests, budget,
            parallelism=self.config.parallelism,
        )

        def runner():
            # Contextvars do not propagate into executor threads; the
            # correlation ID must be re-scoped inside the callable.
            with use_request_id(batch_id):
                _chaos.engine_call_check("serve.batch")
                return run()

        try:
            with _metrics.timed("serve.batch_seconds"):
                results = await loop.run_in_executor(None, runner)
        except Exception as exc:  # engine bug: fail the batch, not the server
            self.breaker.record_failure()
            log_event(_logger, "serve.batch.failed",
                      size=len(live), error=repr(exc))
            if len(live) > 1:
                await self._isolate_batch(live)
            else:
                for pending in live:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            return
        if any(result is not None for result in results):
            self.breaker.record_success()
        else:
            # Every member blew its deadline inside the engine -- from
            # the callers' seats that is indistinguishable from a wedged
            # dependency, so it counts against the breaker too.
            self.breaker.record_failure()
        self._batches += 1
        if _metrics.is_enabled():
            _metrics.inc("serve.batches")
            _metrics.inc("serve.batched_requests", len(live))
            _metrics.set_gauge("serve.batch_size", len(live))
            # Distribution of batch occupancy, not just the last value:
            # the dashboard's coalescing-health signal.
            _metrics.observe_histogram("serve.batch_occupancy", len(live))
        for pending, result in zip(live, results):
            if pending.future.done():
                continue
            if result is None:
                pending.future.set_exception(DeadlineError(
                    "engine budget exhausted before this request ran"
                ))
            else:
                self._served += 1
                pending.future.set_result(result)

    async def _isolate_batch(self, live: List[_Pending]) -> None:
        """Re-run each member of a failed multi-request batch alone.

        One poisoned request must cost exactly one client its request;
        batch-mates that happened to share the micro-batch get their
        answers from a solo re-dispatch.  Each re-run records its own
        breaker outcome, so a genuinely sick engine still accumulates a
        failure streak while a single bad request does not.
        """
        loop = asyncio.get_running_loop()
        self._isolated += 1
        if _metrics.is_enabled():
            _metrics.inc("serve.batch_isolated")
        log_event(_logger, "serve.batch.isolated", size=len(live))
        for pending in live:
            if pending.future.done():
                continue
            remaining = pending.remaining(loop.time())
            if remaining is not None and remaining <= 0:
                pending.future.set_exception(DeadlineError(
                    "deadline expired during batch isolation"
                ))
                continue
            run_solo = functools.partial(
                engine.run_batch, [pending.request],
                RunBudget.for_deadline(remaining),
                parallelism=self.config.parallelism,
            )
            request_id = pending.request_id

            def runner():
                with use_request_id(request_id):
                    _chaos.engine_call_check("serve.isolate")
                    return run_solo()

            try:
                results = await loop.run_in_executor(None, runner)
            except Exception as exc:
                self.breaker.record_failure()
                if not pending.future.done():
                    pending.future.set_exception(exc)
                continue
            self.breaker.record_success()
            if pending.future.done():
                continue
            if results[0] is None:
                pending.future.set_exception(DeadlineError(
                    "engine budget exhausted before this request ran"
                ))
            else:
                self._served += 1
                pending.future.set_result(results[0])

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-ready service statistics for ``/metrics`` and tests."""
        doc: Dict[str, object] = {
            "served": self._served,
            "batches": self._batches,
            "shed": self._shed,
            "isolated": self._isolated,
            "recent_shed_rate": self._shed_window.rate(),
            "queue_depth": self._queue.qsize(),
            "draining": self._closing,
            "mean_batch_size": (self._served / self._batches
                                if self._batches else 0.0),
            "breaker": {
                "enabled": self.breaker.enabled,
                "state": self.breaker.state,
                "opened_total": self.breaker.opened_total,
            },
        }
        cache = engine.get_result_cache()
        if cache is not None:
            doc["result_cache"] = cache.stats()
        segments = engine.get_segment_cache()
        if segments is not None:
            doc["segment_cache"] = segments.stats()
        return doc
