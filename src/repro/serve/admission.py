"""Per-client admission control: refuse a hot client, not the service.

Queue-full shedding (:class:`~repro.serve.service.OverloadedError`) is
indiscriminate -- when one client floods the queue, *everybody* gets
429s.  Admission control moves the refusal to the front door and makes
it per-client: each client key (the ``X-API-Key`` header when present,
else the peer IP) gets a token bucket refilled at ``rate_rps`` with
capacity ``burst``; a request finding the bucket empty is refused with
429 + ``Retry-After`` *before* it touches the queue, so a misbehaving
client throttles only itself.

The two refusals stay distinguishable in telemetry:
``serve.admission.rejected`` counts per-client refusals,
``serve.shed`` (the service counter) counts queue-full shedding.

Bucket state is bounded: at most ``max_clients`` keys are tracked in an
LRU; evicting a stale key merely grants that client a fresh burst,
which is the safe failure direction.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from ..obs import metrics as _metrics

#: Header consulted for the client key before falling back to peer IP.
API_KEY_HEADER = "x-api-key"

#: Default cap on simultaneously tracked client buckets.
DEFAULT_MAX_CLIENTS = 4096

#: Floor for the Retry-After hint handed to a refused client.
MIN_RETRY_AFTER_S = 0.001


def client_key(headers, peername) -> str:
    """The admission identity of one request.

    *headers* is a lower-cased header mapping; *peername* is the
    transport's peer address tuple (or ``None`` on exotic transports).
    An explicit API key always wins -- it survives NAT and proxies.
    """
    api_key = headers.get(API_KEY_HEADER, "").strip()
    if api_key:
        return f"key:{api_key}"
    if isinstance(peername, (tuple, list)) and peername:
        return f"ip:{peername[0]}"
    return "ip:unknown"


class TokenBucket:
    """Classic leaky token bucket with lazy refill (no timers)."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def try_take(self, now: float) -> Tuple[bool, float]:
        """``(admitted, retry_after_s)`` for one request at *now*."""
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        deficit = 1.0 - self.tokens
        return False, max(deficit / self.rate, MIN_RETRY_AFTER_S)


class AdmissionController:
    """LRU of per-client token buckets, shared by every connection.

    ``rate_rps=None`` disables admission entirely (every ``check``
    admits and records nothing) -- the default, preserving PR-5
    behaviour.  *burst* defaults to ``max(1, rate_rps)``: a client may
    briefly send one second's allowance at once, which forgives bursty
    but well-behaved callers without raising the sustained rate.
    """

    def __init__(
        self,
        rate_rps: Optional[float] = None,
        burst: Optional[float] = None,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        metric_prefix: str = "serve.admission",
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate_rps is not None and rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        if burst is not None and burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate_rps = rate_rps
        self.burst = (burst if burst is not None
                      else max(1.0, rate_rps or 1.0))
        self.max_clients = max_clients
        self.metric_prefix = metric_prefix
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._buckets = OrderedDict()  # type: OrderedDict[str, TokenBucket]
        self._admitted = 0
        self._rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate_rps is not None

    def check(self, key: str) -> Optional[float]:
        """Admit one request for *key*.

        Returns ``None`` when admitted, else the positive
        ``retry_after_s`` to surface as ``Retry-After`` on the 429.
        """
        if not self.enabled:
            return None
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.rate_rps, self.burst, now)
                self._buckets[key] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(key)
            admitted, retry_after = bucket.try_take(now)
            if admitted:
                self._admitted += 1
            else:
                self._rejected += 1
            tracked = len(self._buckets)
        if _metrics.is_enabled():
            outcome = "admitted" if admitted else "rejected"
            _metrics.inc(f"{self.metric_prefix}.{outcome}")
            _metrics.set_gauge(f"{self.metric_prefix}.clients", tracked)
        return None if admitted else retry_after

    def stats(self) -> dict:
        """Point-in-time admission statistics (JSON-ready)."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "clients": len(self._buckets),
            }
