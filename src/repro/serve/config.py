"""Operator-facing configuration for the analysis service.

Every batching, shedding and caching knob the operator guide
(``docs/serving.md``) documents lives in one frozen dataclass, validated
eagerly, so a bad flag fails at start-up instead of under load.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.exceptions import AnalysisError
from ..engine.diskcache import DEFAULT_MEMORY_ENTRIES
from ..obs.accesslog import (
    DEFAULT_BACKUPS as DEFAULT_ACCESS_LOG_BACKUPS,
    DEFAULT_MAX_BYTES as DEFAULT_ACCESS_LOG_MAX_BYTES,
)
from ..obs.slo import SloPolicy


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.AnalysisServer` instance.

    *Batching*: an incoming request waits at most ``batch_window_s`` for
    companions; up to ``max_batch`` requests are coalesced into one
    vectorised :func:`repro.engine.run_batch` dispatch.  ``max_batch=1``
    disables coalescing (every request runs alone -- the baseline the
    throughput benchmark compares against).

    *Load shedding*: at most ``queue_limit`` requests may be waiting; a
    request arriving at a full queue is refused immediately with HTTP
    429 and a ``Retry-After`` hint of ``retry_after_s`` seconds.

    *Deadlines*: ``default_deadline_s`` bounds each request that does
    not carry its own ``deadline_s``; the dispatcher derives a
    deadline-only :class:`~repro.runtime.budget.RunBudget` per batch
    from the tightest waiting request.

    *Caching*: ``cache_dir`` mounts the persistent two-tier result store
    (:mod:`repro.engine.diskcache`) so answers survive restarts and are
    shared across server processes on one host; ``segment_cache_dir``
    mounts the segment tier (:mod:`repro.engine.segcache`) -- exact
    chain-prefix transfer matrices, prefilled from disk on boot so the
    first requests after a restart already hit warm segments.

    *Shutdown*: on SIGTERM the server stops accepting connections,
    finishes everything already queued, and force-closes whatever is
    still open after ``drain_grace_s`` seconds.

    *Telemetry*: ``access_log`` enables the structured JSONL request
    log (one record per request, correlation ID included) rotated at
    ``access_log_max_bytes`` keeping ``access_log_backups``
    generations; ``slo`` carries the rolling-window thresholds
    ``/healthz`` evaluates (see :class:`repro.obs.slo.SloPolicy`).

    *Robustness* (PR 7): ``breaker_failures`` consecutive engine
    failures open a circuit breaker around engine dispatch (503 +
    ``Retry-After`` while open; 0 disables), cooling down for
    ``breaker_reset_s`` and letting ``breaker_half_open_max`` probes
    through half-open.  ``rate_limit_rps`` arms per-client token-bucket
    admission control (429 before queueing, keyed on API key / peer IP;
    ``None`` disables) with burst capacity ``rate_limit_burst``
    (``None`` = one second's allowance).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 64
    batch_window_s: float = 0.005
    queue_limit: int = 1024
    default_deadline_s: Optional[float] = None
    retry_after_s: float = 0.05
    drain_grace_s: float = 5.0
    parallelism: object = "off"
    cache_dir: Optional[str] = None
    memory_cache_entries: int = DEFAULT_MEMORY_ENTRIES
    max_disk_entries: Optional[int] = None
    segment_cache_dir: Optional[str] = None
    access_log: Optional[str] = None
    access_log_max_bytes: int = DEFAULT_ACCESS_LOG_MAX_BYTES
    access_log_backups: int = DEFAULT_ACCESS_LOG_BACKUPS
    slo: SloPolicy = SloPolicy()
    breaker_failures: int = 0
    breaker_reset_s: float = 5.0
    breaker_half_open_max: int = 1
    rate_limit_rps: Optional[float] = None
    rate_limit_burst: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise AnalysisError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.queue_limit < 1:
            raise AnalysisError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.batch_window_s < 0:
            raise AnalysisError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        for name in ("default_deadline_s", "retry_after_s", "drain_grace_s"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise AnalysisError(f"{name} must be >= 0, got {value}")
        if not 0 <= self.port <= 65535:
            raise AnalysisError(f"port out of range: {self.port}")
        if self.access_log_max_bytes < 1:
            raise AnalysisError(
                "access_log_max_bytes must be >= 1, got "
                f"{self.access_log_max_bytes}"
            )
        if self.access_log_backups < 0:
            raise AnalysisError(
                f"access_log_backups must be >= 0, got "
                f"{self.access_log_backups}"
            )
        if self.breaker_failures < 0:
            raise AnalysisError(
                f"breaker_failures must be >= 0, got {self.breaker_failures}"
            )
        if self.breaker_reset_s <= 0:
            raise AnalysisError(
                f"breaker_reset_s must be positive, got {self.breaker_reset_s}"
            )
        if self.breaker_half_open_max < 1:
            raise AnalysisError(
                "breaker_half_open_max must be >= 1, got "
                f"{self.breaker_half_open_max}"
            )
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise AnalysisError(
                f"rate_limit_rps must be positive, got {self.rate_limit_rps}"
            )
        if self.rate_limit_burst is not None and self.rate_limit_burst < 1:
            raise AnalysisError(
                f"rate_limit_burst must be >= 1, got {self.rate_limit_burst}"
            )


def config_to_doc(config: ServeConfig) -> Dict[str, object]:
    """*config* as a JSON-safe document (the supervisor→worker wire form).

    Only non-default fields are emitted, so documents stay readable and
    a worker running a slightly newer build with *new* knobs still
    accepts a document from an older supervisor.
    """
    defaults = ServeConfig()
    doc: Dict[str, object] = {}
    for field in dataclasses.fields(ServeConfig):
        value = getattr(config, field.name)
        if value == getattr(defaults, field.name):
            continue
        if field.name == "slo":
            doc[field.name] = dataclasses.asdict(value)
        else:
            doc[field.name] = value
    return doc


def config_from_doc(doc: Dict[str, object]) -> ServeConfig:
    """Rebuild a :class:`ServeConfig` from :func:`config_to_doc` output."""
    known = {field.name for field in dataclasses.fields(ServeConfig)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise AnalysisError(f"unknown serve config fields: {unknown}")
    kwargs = dict(doc)
    if "slo" in kwargs:
        kwargs["slo"] = SloPolicy(**kwargs["slo"])  # type: ignore[arg-type]
    return ServeConfig(**kwargs)  # type: ignore[arg-type]
