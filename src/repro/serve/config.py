"""Operator-facing configuration for the analysis service.

Every batching, shedding and caching knob the operator guide
(``docs/serving.md``) documents lives in one frozen dataclass, validated
eagerly, so a bad flag fails at start-up instead of under load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.exceptions import AnalysisError
from ..engine.diskcache import DEFAULT_MEMORY_ENTRIES
from ..obs.accesslog import (
    DEFAULT_BACKUPS as DEFAULT_ACCESS_LOG_BACKUPS,
    DEFAULT_MAX_BYTES as DEFAULT_ACCESS_LOG_MAX_BYTES,
)
from ..obs.slo import SloPolicy


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.AnalysisServer` instance.

    *Batching*: an incoming request waits at most ``batch_window_s`` for
    companions; up to ``max_batch`` requests are coalesced into one
    vectorised :func:`repro.engine.run_batch` dispatch.  ``max_batch=1``
    disables coalescing (every request runs alone -- the baseline the
    throughput benchmark compares against).

    *Load shedding*: at most ``queue_limit`` requests may be waiting; a
    request arriving at a full queue is refused immediately with HTTP
    429 and a ``Retry-After`` hint of ``retry_after_s`` seconds.

    *Deadlines*: ``default_deadline_s`` bounds each request that does
    not carry its own ``deadline_s``; the dispatcher derives a
    deadline-only :class:`~repro.runtime.budget.RunBudget` per batch
    from the tightest waiting request.

    *Caching*: ``cache_dir`` mounts the persistent two-tier result store
    (:mod:`repro.engine.diskcache`) so answers survive restarts and are
    shared across server processes on one host.

    *Shutdown*: on SIGTERM the server stops accepting connections,
    finishes everything already queued, and force-closes whatever is
    still open after ``drain_grace_s`` seconds.

    *Telemetry*: ``access_log`` enables the structured JSONL request
    log (one record per request, correlation ID included) rotated at
    ``access_log_max_bytes`` keeping ``access_log_backups``
    generations; ``slo`` carries the rolling-window thresholds
    ``/healthz`` evaluates (see :class:`repro.obs.slo.SloPolicy`).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 64
    batch_window_s: float = 0.005
    queue_limit: int = 1024
    default_deadline_s: Optional[float] = None
    retry_after_s: float = 0.05
    drain_grace_s: float = 5.0
    parallelism: object = "off"
    cache_dir: Optional[str] = None
    memory_cache_entries: int = DEFAULT_MEMORY_ENTRIES
    max_disk_entries: Optional[int] = None
    access_log: Optional[str] = None
    access_log_max_bytes: int = DEFAULT_ACCESS_LOG_MAX_BYTES
    access_log_backups: int = DEFAULT_ACCESS_LOG_BACKUPS
    slo: SloPolicy = SloPolicy()

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise AnalysisError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.queue_limit < 1:
            raise AnalysisError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.batch_window_s < 0:
            raise AnalysisError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        for name in ("default_deadline_s", "retry_after_s", "drain_grace_s"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise AnalysisError(f"{name} must be >= 0, got {value}")
        if not 0 <= self.port <= 65535:
            raise AnalysisError(f"port out of range: {self.port}")
        if self.access_log_max_bytes < 1:
            raise AnalysisError(
                "access_log_max_bytes must be >= 1, got "
                f"{self.access_log_max_bytes}"
            )
        if self.access_log_backups < 0:
            raise AnalysisError(
                f"access_log_backups must be >= 0, got "
                f"{self.access_log_backups}"
            )
