"""Algorithmic Noise Tolerance (ANT) around approximate adders.

Paper §2.1 lists ANT (Hegde & Shanbhag, ref [9]) among the architectures
that tolerate arithmetic error: a *main* block that is fast/cheap but
error-prone runs next to a *reduced-precision replica* that is exact but
truncated; when the two disagree by more than a threshold, the replica's
estimate replaces the main output.

Here the main block is any of this library's approximate adder chains
and the replica is an exact adder on the operands with their low
``truncation_bits`` dropped.  The decisive property -- which plain LPAAs
lack -- is a **hard worst-case error bound**:

* replica path: ``|replica - exact| <= 2*(2^k - 1) + 1`` (pure
  truncation, ``k = truncation_bits``);
* main path: accepted only when ``|main - replica| <= threshold``, so
  ``|main - exact| <= threshold + 2*(2^k - 1) + 1``.

:meth:`AntAdder.worst_case_error_bound` returns that bound and the tests
verify it exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .core.exceptions import AnalysisError, ChainLengthError
from .core.metrics import QualityMetrics, metrics_from_samples
from .core.recursive import CellSpec, resolve_chain
from .simulation.functional import ripple_add, ripple_add_array


@dataclass(frozen=True)
class AntResult:
    """One ANT addition outcome."""

    value: int
    used_replica: bool
    main_value: int
    replica_value: int


class AntAdder:
    """An ANT-protected approximate adder.

    Parameters
    ----------
    width:
        Operand width N of the main adder.
    main_cell:
        The approximate chain of the main block (any cell spec or
        per-stage list).
    truncation_bits:
        ``k``: the replica adds ``a >> k`` and ``b >> k`` exactly and
        scales back, so it is a cheap (N-k)-bit exact adder.
    threshold:
        Disagreement level above which the replica output is used.
        Defaults to ``2^(k+1)`` -- just above the replica's own maximum
        truncation error, so a healthy main block is never overridden
        spuriously by more than the inherent estimate fuzz.
    """

    def __init__(
        self,
        width: int,
        main_cell: Union[CellSpec, Sequence[CellSpec]],
        truncation_bits: int,
        threshold: Optional[int] = None,
    ):
        if width < 1:
            raise ChainLengthError(f"width must be >= 1, got {width}", width)
        if not 0 <= truncation_bits <= width:
            raise AnalysisError(
                f"truncation_bits must be in [0, {width}], got "
                f"{truncation_bits}"
            )
        self._width = width
        self._cells = resolve_chain(main_cell, width)
        self._k = truncation_bits
        self._threshold = (
            threshold if threshold is not None else 1 << (truncation_bits + 1)
        )
        if self._threshold < 0:
            raise AnalysisError(f"threshold must be >= 0, got {threshold}")

    @property
    def width(self) -> int:
        """Main adder width."""
        return self._width

    @property
    def truncation_bits(self) -> int:
        """Replica truncation ``k``."""
        return self._k

    @property
    def threshold(self) -> int:
        """Main/replica disagreement threshold."""
        return self._threshold

    def replica_error_bound(self) -> int:
        """Max |replica - exact|: ``2*(2^k - 1) + 1`` (two truncated
        operands plus the dropped carry-in)."""
        return 2 * ((1 << self._k) - 1) + 1

    def worst_case_error_bound(self) -> int:
        """Hard bound on |output - exact| for any input."""
        return self._threshold + self.replica_error_bound()

    # -- functional ------------------------------------------------------------------

    def _replica(self, a: int, b: int) -> int:
        return (((a >> self._k) + (b >> self._k)) << self._k)

    def add(self, a: int, b: int, cin: int = 0) -> AntResult:
        """One protected addition."""
        main = ripple_add(self._cells, a, b, cin, self._width)
        replica = self._replica(a, b)
        use_replica = abs(main - replica) > self._threshold
        return AntResult(
            value=replica if use_replica else main,
            used_replica=use_replica,
            main_value=main,
            replica_value=replica,
        )

    def add_array(
        self,
        a: np.ndarray,
        b: np.ndarray,
        cin: Union[int, np.ndarray] = 0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`add`: returns ``(values, used_replica)``."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        main = ripple_add_array(self._cells, a, b, cin, self._width)
        replica = ((a >> self._k) + (b >> self._k)) << self._k
        use_replica = np.abs(main - replica) > self._threshold
        return np.where(use_replica, replica, main), use_replica


def ant_quality_experiment(
    width: int,
    main_cell: Union[CellSpec, Sequence[CellSpec]],
    truncation_bits: int,
    p: float = 0.5,
    samples: int = 200_000,
    seed: Optional[int] = None,
    threshold: Optional[int] = None,
) -> Tuple[QualityMetrics, QualityMetrics, float]:
    """Compare the raw main adder against its ANT-protected version.

    Returns ``(main_metrics, ant_metrics, replica_usage_rate)`` over
    random operands whose bits are 1 with probability *p*.
    """
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"p must be in [0, 1], got {p}")
    adder = AntAdder(width, main_cell, truncation_bits, threshold=threshold)
    rng = np.random.default_rng(seed)
    a = np.zeros(samples, dtype=np.int64)
    b = np.zeros(samples, dtype=np.int64)
    for i in range(width):
        a |= (rng.random(samples) < p).astype(np.int64) << i
        b |= (rng.random(samples) < p).astype(np.int64) << i
    exact = a + b
    main = ripple_add_array(adder._cells, a, b, 0, width)
    protected, used = adder.add_array(a, b)
    return (
        metrics_from_samples(main, exact, width),
        metrics_from_samples(protected, exact, width),
        float(used.mean()),
    )
