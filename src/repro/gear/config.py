"""GeAr adder configuration algebra (paper §2.2, ref [17]).

A GeAr(N, R, P) adder splits an N-bit addition into ``k`` overlapping
L-bit sub-adders with ``L = R + P``: each sub-adder computes its window
``[i*R, i*R + L - 1]`` independently with carry-in 0; the low ``P`` bits
of the window are *prediction* bits (they approximate the incoming
carry), the high ``R`` bits contribute to the result.  Sub-adder 0
contributes all of its ``L`` bits.  Valid configurations satisfy
``k = (N - L) / R + 1`` with integral ``k`` -- exactly the constraint in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.exceptions import GeArConfigError


@dataclass(frozen=True)
class SubAdder:
    """One GeAr sub-adder window."""

    index: int
    low: int          # lowest operand bit of the window
    high: int         # highest operand bit (inclusive)
    result_low: int   # lowest bit this sub-adder contributes to the result

    @property
    def width(self) -> int:
        """Window width L (or less is impossible -- always L)."""
        return self.high - self.low + 1

    @property
    def prediction_bits(self) -> Tuple[int, int]:
        """Half-open operand-bit range ``[low, result_low)`` used only
        for carry prediction (empty for sub-adder 0)."""
        return (self.low, self.result_low)


@dataclass(frozen=True)
class GeArConfig:
    """A validated GeAr(N, R, P) configuration.

    Parameters follow the paper: *n* total operand bits, *r* result bits
    per sub-adder, *p* overlapping prediction bits.

    >>> GeArConfig(8, 2, 2).num_subadders
    3
    """

    n: int
    r: int
    p: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise GeArConfigError(f"N must be >= 1, got {self.n}")
        if self.r < 1:
            raise GeArConfigError(f"R must be >= 1, got {self.r}")
        if self.p < 0:
            raise GeArConfigError(f"P must be >= 0, got {self.p}")
        if self.l > self.n:
            raise GeArConfigError(
                f"sub-adder length L=R+P={self.l} exceeds N={self.n}"
            )
        if (self.n - self.l) % self.r != 0:
            raise GeArConfigError(
                f"GeAr({self.n},{self.r},{self.p}): (N - L) = "
                f"{self.n - self.l} is not a multiple of R = {self.r}; "
                "k = (N - L)/R + 1 must be integral"
            )

    @property
    def l(self) -> int:
        """Sub-adder length ``L = R + P``."""
        return self.r + self.p

    @property
    def num_subadders(self) -> int:
        """``k = (N - L)/R + 1`` (paper §2.2)."""
        return (self.n - self.l) // self.r + 1

    @property
    def is_exact(self) -> bool:
        """A single sub-adder covers everything: no approximation."""
        return self.num_subadders == 1

    def subadders(self) -> List[SubAdder]:
        """All sub-adder windows, LSB-first."""
        subs = []
        for i in range(self.num_subadders):
            low = i * self.r
            subs.append(
                SubAdder(
                    index=i,
                    low=low,
                    high=low + self.l - 1,
                    result_low=low if i == 0 else low + self.p,
                )
            )
        return subs

    def error_checkpoints(self) -> List[int]:
        """Bit positions where a sub-adder's prediction may fail.

        Sub-adder ``i >= 1`` produces a wrong result iff the true carry
        into bit ``i*R`` is 1 *and* all its ``P`` prediction bit pairs
        propagate; that condition is testable at position ``i*R + P``
        (see :mod:`repro.gear.analysis`).  Returns those positions.
        """
        return [
            sub.low + self.p for sub in self.subadders() if sub.index >= 1
        ]

    def describe(self) -> str:
        """Short human-readable form, e.g. ``'GeAr(N=8, R=2, P=2), k=4'``."""
        return (
            f"GeAr(N={self.n}, R={self.r}, P={self.p}), "
            f"k={self.num_subadders}, L={self.l}"
        )

    @classmethod
    def valid_configs(cls, n: int) -> List["GeArConfig"]:
        """Every valid (R, P) combination for an N-bit GeAr adder."""
        configs = []
        for r in range(1, n + 1):
            for p in range(0, n - r + 1):
                try:
                    configs.append(cls(n, r, p))
                except GeArConfigError:
                    continue
        return configs
