"""Named low-latency adders as GeAr configurations.

The GeAr paper (ref [17]) positions GeAr as the generic model that
"captures all of the prominent previously proposed LLAAs"; the DAC'17
paper inherits that claim (§2.2).  This module provides the two mappings
that follow directly from the architectures' definitions, so the
library's exact GeAr analysis covers those named adders too:

* **ACA-I** (Almost Correct Adder, Verma et al. -- paper ref [19]):
  every sum bit is computed from a sliding window of the previous ``L``
  bit positions, i.e. one new result bit per window: ``GeAr(N, R=1,
  P=L-1)``.
* **ETAII** (Error-Tolerant Adder type II, Zhu et al.): the word is cut
  into ``X``-bit blocks and each block's carry-in is *generated* (not
  propagated) from only the previous block: ``GeAr(N, R=X, P=X)``.

Both require the usual GeAr divisibility constraint to tile the word;
the constructors validate it and raise otherwise.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.exceptions import GeArConfigError
from .config import GeArConfig


def aca_i(n: int, window: int) -> GeArConfig:
    """ACA-I(N, L): sliding L-bit windows, one result bit each.

    >>> aca_i(16, 4).describe()
    'GeAr(N=16, R=1, P=3), k=13, L=4'
    """
    if window < 1:
        raise GeArConfigError(f"ACA-I window must be >= 1, got {window}")
    if window > n:
        raise GeArConfigError(
            f"ACA-I window {window} exceeds the word width {n}"
        )
    return GeArConfig(n, 1, window - 1)


def etaii(n: int, block: int) -> GeArConfig:
    """ETAII(N, X): X-bit blocks with carry speculated from one block.

    >>> etaii(16, 4).describe()
    'GeAr(N=16, R=4, P=4), k=3, L=8'
    """
    if block < 1:
        raise GeArConfigError(f"ETAII block must be >= 1, got {block}")
    if 2 * block > n:
        raise GeArConfigError(
            f"ETAII needs at least two {block}-bit blocks in {n} bits"
        )
    if n % block != 0:
        raise GeArConfigError(
            f"ETAII blocks of {block} bits do not tile {n} bits"
        )
    return GeArConfig(n, block, block)


def accurate_rca(n: int) -> GeArConfig:
    """The degenerate single-window configuration: an exact N-bit adder."""
    return GeArConfig(n, n, 0)


def named_variants(n: int) -> Dict[str, GeArConfig]:
    """A comparison set of named LLAA instances at width *n*.

    Includes every ACA-I window and ETAII block size that fits, plus the
    exact adder, keyed by conventional names like ``"ACA-I(16,4)"``.
    """
    variants: Dict[str, GeArConfig] = {f"RCA({n})": accurate_rca(n)}
    for window in range(2, n):
        try:
            variants[f"ACA-I({n},{window})"] = aca_i(n, window)
        except GeArConfigError:
            continue
    for block in range(1, n // 2 + 1):
        try:
            variants[f"ETAII({n},{block})"] = etaii(n, block)
        except GeArConfigError:
            continue
    return variants


def variant_comparison(n: int) -> List[Dict[str, object]]:
    """Error/latency rows for every named variant at width *n*.

    Delay uses the unit-gate ripple model of a sub-adder chain (length
    L), matching :func:`repro.circuits.timing.gear_delay_model`.
    """
    from ..circuits.timing import gear_delay_model
    from .. import engine as _engine

    rows = []
    for name, config in named_variants(n).items():
        request = _engine.AnalysisRequest.for_gear(config)
        rows.append(
            {
                "name": name,
                "config": config.describe(),
                "l": config.l,
                "subadders": config.num_subadders,
                "delay": gear_delay_model(config),
                "p_error": _engine.run(request).p_error,
            }
        )
    rows.sort(key=lambda r: (r["p_error"], r["delay"]))
    return rows
