"""Statistical error analysis of GeAr adders.

The paper (§1.1) claims its recursion philosophy -- propagate exactly
the state you need, never expand inclusion-exclusion -- also covers
low-latency adders.  This module realises that for GeAr:

**Error event.** Sub-adder ``i >= 1`` produces a wrong contribution iff
the true carry into its window base ``i*R`` is 1 *and* all ``P`` of its
prediction bit pairs propagate (``a_j xor b_j = 1``); only then does the
missing carry survive the prediction window and corrupt the first result
bit.  Since a propagating position hands its carry through unchanged,
the condition is equivalent to: *at checkpoint position ``i*R + P`` the
running propagate-run length is >= P and the current true carry is 1*.

**Linear DP** (:func:`gear_error_probability`).  Track the joint
distribution of ``(true carry, propagate-run length capped at P)`` one
bit at a time -- ``2*(P+1)`` states -- and at each checkpoint discard
the mass where the event fires.  The survivor mass is ``P(no sub-adder
errs)`` = probability the GeAr output is exact.  O(N*P) time, exact for
arbitrary per-bit input probabilities.

**Baselines.**  :func:`gear_inclusion_exclusion` evaluates the same
probability the traditional way (paper ref [12]): all ``2^(k-1) - 1``
joint error-event terms, each via a constrained DP.
:func:`gear_monte_carlo` samples the functional model.  All three agree
(tests pin it); only their costs differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._compat import warn_deprecated
from ..core.exceptions import AnalysisError
from ..core.probability import float_probability_vector
from ..core.types import Probability
from .config import GeArConfig
from .functional import gear_add_array

#: IE over more than this many sub-adder events is refused.
MAX_IE_SUBADDERS = 20

# DP state: (carry, run) -> probability, with run capped at config.p.


def _normalise_probs(
    config: GeArConfig,
    p_a: Union[Probability, Sequence[Probability]],
    p_b: Union[Probability, Sequence[Probability]],
) -> Tuple[List[float], List[float]]:
    pa = float_probability_vector(p_a, config.n, "p_a")
    pb = float_probability_vector(p_b, config.n, "p_b")
    return pa, pb


def _advance_bit(
    state: Dict[Tuple[int, int], float],
    p_a: float,
    p_b: float,
    run_cap: int,
) -> Dict[Tuple[int, int], float]:
    """One DP step over the four (a, b) combinations of the current bit."""
    nxt: Dict[Tuple[int, int], float] = {}
    for (carry, run), mass in state.items():
        if mass == 0.0:
            continue
        for a in (0, 1):
            wa = p_a if a else 1.0 - p_a
            if wa == 0.0:
                continue
            for b in (0, 1):
                wb = p_b if b else 1.0 - p_b
                w = wa * wb
                if w == 0.0:
                    continue
                total = a + b + carry
                new_carry = total >> 1
                if a ^ b:  # propagate position: run grows
                    new_run = min(run + 1, run_cap)
                else:
                    new_run = 0
                key = (new_carry, new_run)
                nxt[key] = nxt.get(key, 0.0) + mass * w
    return nxt


def _checkpoint_filter(
    state: Dict[Tuple[int, int], float],
    run_cap: int,
    require_event: bool,
) -> Dict[Tuple[int, int], float]:
    """Split the DP mass at a sub-adder checkpoint.

    ``require_event=False`` keeps only no-error mass (carry 0, or run
    shorter than P); ``require_event=True`` keeps only the event mass.
    """
    out: Dict[Tuple[int, int], float] = {}
    for (carry, run), mass in state.items():
        fired = carry == 1 and run >= run_cap
        if fired == require_event:
            out[(carry, run)] = out.get((carry, run), 0.0) + mass
    return out


def gear_success_probability(
    config: GeArConfig,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> float:
    """Exact ``P(GeAr output == a + b)`` in O(N * P) time."""
    pa, pb = _normalise_probs(config, p_a, p_b)
    checkpoints = set(config.error_checkpoints())
    run_cap = config.p
    state: Dict[Tuple[int, int], float] = {(0, 0): 1.0}
    for j in range(config.n):
        if j in checkpoints:
            state = _checkpoint_filter(state, run_cap, require_event=False)
        state = _advance_bit(state, pa[j], pb[j], run_cap)
    # A checkpoint can sit at position N exactly when P = L - R spans to
    # the top of the last window... it cannot: checkpoints are
    # i*R + P <= (k-1)R + P = N - R < N.  All filtered already.
    return sum(state.values())


def gear_error_probability(
    config: GeArConfig,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> float:
    """``1 - gear_success_probability(...)``.

    .. deprecated::
        Use ``repro.engine.run(AnalysisRequest.for_gear(config, ...))``
        (engine ``"gear-dp"``) instead.
    """
    warn_deprecated("gear.analysis.gear_error_probability",
                    'repro.engine.run(AnalysisRequest.for_gear(...))')
    return 1.0 - gear_success_probability(config, p_a, p_b)


def gear_subadder_error_probabilities(
    config: GeArConfig,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> List[float]:
    """Marginal ``P(E_i)`` for each sub-adder ``i >= 1``.

    Each marginal is one DP pass that filters for the event at exactly
    one checkpoint and marginalises everywhere else.
    """
    pa, pb = _normalise_probs(config, p_a, p_b)
    run_cap = config.p
    marginals = []
    for checkpoint in config.error_checkpoints():
        state: Dict[Tuple[int, int], float] = {(0, 0): 1.0}
        for j in range(checkpoint):
            state = _advance_bit(state, pa[j], pb[j], run_cap)
        fired = _checkpoint_filter(state, run_cap, require_event=True)
        marginals.append(sum(fired.values()))
    return marginals


@dataclass(frozen=True)
class GeArIEReport:
    """Inclusion-exclusion result with term accounting."""

    p_error: float
    terms_evaluated: int
    num_subadders: int


def _joint_event_probability(
    config: GeArConfig,
    checkpoints: Sequence[int],
    subset: frozenset,
    pa: Sequence[float],
    pb: Sequence[float],
) -> float:
    """``P(AND of the chosen sub-adder error events)`` by constrained DP."""
    run_cap = config.p
    state: Dict[Tuple[int, int], float] = {(0, 0): 1.0}
    checkpoint_set = {cp: (idx in subset) for idx, cp in enumerate(checkpoints)}
    last_required = max(
        (cp for idx, cp in enumerate(checkpoints) if idx in subset), default=0
    )
    for j in range(last_required + 1):
        if j in checkpoint_set and checkpoint_set[j]:
            state = _checkpoint_filter(state, run_cap, require_event=True)
        if j == last_required:
            break
        state = _advance_bit(state, pa[j], pb[j], run_cap)
    return sum(state.values())


def gear_inclusion_exclusion(
    config: GeArConfig,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> GeArIEReport:
    """The traditional IE analysis of GeAr (paper ref [12] style).

    Expands ``P(U E_i)`` over all non-empty subsets of the ``k - 1``
    error events.  Exponential in ``k``; numerically identical to
    :func:`gear_error_probability`.
    """
    events = config.error_checkpoints()
    k = len(events)
    if k > MAX_IE_SUBADDERS:
        raise AnalysisError(
            f"IE over {k} sub-adder events needs 2^{k} - 1 terms; "
            "use gear_error_probability instead"
        )
    pa, pb = _normalise_probs(config, p_a, p_b)
    p_union = 0.0
    terms = 0
    for size in range(1, k + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in combinations(range(k), size):
            terms += 1
            p_union += sign * _joint_event_probability(
                config, events, frozenset(subset), pa, pb
            )
    return GeArIEReport(
        p_error=min(max(p_union, 0.0), 1.0),
        terms_evaluated=terms,
        num_subadders=config.num_subadders,
    )


def gear_monte_carlo(
    config: GeArConfig,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    samples: int = 1_000_000,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo estimate of the GeAr error probability."""
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    pa, pb = _normalise_probs(config, p_a, p_b)
    rng = np.random.default_rng(seed)
    a = np.zeros(samples, dtype=np.int64)
    b = np.zeros(samples, dtype=np.int64)
    for i in range(config.n):
        a |= (rng.random(samples) < pa[i]).astype(np.int64) << i
        b |= (rng.random(samples) < pb[i]).astype(np.int64) << i
    wrong = gear_add_array(config, a, b) != (a + b)
    return float(wrong.mean())


def gear_exhaustive(config: GeArConfig) -> Tuple[int, int]:
    """Exhaustive equiprobable error count: ``(errors, total)``.

    Total is ``2^(2N)`` (GeAr has no external carry-in).
    """
    if config.n > 12:
        raise AnalysisError(
            f"exhaustive GeAr check at N={config.n} would visit "
            f"2^{2 * config.n} cases"
        )
    values = np.arange(1 << config.n, dtype=np.int64)
    a, b = np.meshgrid(values, values, indexing="ij")
    a, b = a.ravel(), b.ravel()
    errors = int((gear_add_array(config, a, b) != (a + b)).sum())
    return errors, a.size
