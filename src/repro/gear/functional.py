"""Functional (bit-true) model of the GeAr adder.

Each sub-adder performs an exact addition of its L-bit window with
carry-in 0; the result is assembled from sub-adder 0's full window plus
the top R bits of every later sub-adder, and the final carry comes from
the last sub-adder (paper Fig. 2).
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import GeArConfigError
from .config import GeArConfig


def _mask(width: int) -> int:
    return (1 << width) - 1


def gear_add(config: GeArConfig, a: int, b: int) -> int:
    """Add two N-bit operands through a GeAr adder.

    Returns the (N+1)-bit result (N sum bits + the last sub-adder's
    carry-out at bit N).  Matches ``a + b`` whenever no sub-adder
    mispredicts its carry-in.

    >>> cfg = GeArConfig(4, 2, 0)
    >>> gear_add(cfg, 0b0101, 0b0001)      # no carry crosses the split
    6
    """
    if a < 0 or b < 0 or a >= 1 << config.n or b >= 1 << config.n:
        raise GeArConfigError(
            f"operands must be in [0, 2^{config.n}), got {a}, {b}"
        )
    result = 0
    carry_out = 0
    window_mask = _mask(config.l)
    for sub in config.subadders():
        wa = (a >> sub.low) & window_mask
        wb = (b >> sub.low) & window_mask
        window_sum = wa + wb  # exact L-bit addition, carry-in 0
        keep_from = sub.result_low - sub.low
        kept = (window_sum >> keep_from) & _mask(sub.width - keep_from)
        result |= kept << sub.result_low
        carry_out = (window_sum >> config.l) & 1
    return result | (carry_out << config.n)


def gear_add_array(
    config: GeArConfig,
    a: np.ndarray,
    b: np.ndarray,
) -> np.ndarray:
    """Vectorised :func:`gear_add` over NumPy operand arrays."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise GeArConfigError(
            f"operand arrays must share a shape, got {a.shape} vs {b.shape}"
        )
    if (a < 0).any() or (b < 0).any() or (a >= 1 << config.n).any() or (
        b >= 1 << config.n
    ).any():
        raise GeArConfigError(f"operands must be in [0, 2^{config.n})")
    result = np.zeros_like(a)
    carry_out = np.zeros_like(a)
    window_mask = _mask(config.l)
    for sub in config.subadders():
        wa = (a >> sub.low) & window_mask
        wb = (b >> sub.low) & window_mask
        window_sum = wa + wb
        keep_from = sub.result_low - sub.low
        kept = (window_sum >> keep_from) & _mask(sub.width - keep_from)
        result |= kept << sub.result_low
        carry_out = (window_sum >> config.l) & 1
    return result | (carry_out << config.n)


def gear_error_positions(config: GeArConfig, a: int, b: int) -> list:
    """Indices of sub-adders whose contribution differs from the exact sum.

    Useful for error-correction studies (the paper's ref [11] corrects
    exactly these blocks).
    """
    exact = a + b
    approx = gear_add(config, a, b)
    wrong = []
    for sub in config.subadders():
        width = sub.width - (sub.result_low - sub.low)
        if sub.index == config.num_subadders - 1:
            width += 1  # include the final carry in the last block
        mask = _mask(width)
        if ((approx >> sub.result_low) & mask) != ((exact >> sub.result_low) & mask):
            wrong.append(sub.index)
    return wrong
