"""Error detection and configurable correction for GeAr adders.

The paper notes (§1, ref [11] -- Mazahir et al., DAC 2016) that GeAr's
errors "can be detected as well as corrected".  Detection is cheap
because a sub-adder's output block depends only on its own window: block
``i`` is wrong **iff** the true carry into its window base is 1 and all
its prediction bit pairs propagate.  Correction then increments the
block (adding ``2^(i*R+P)`` worth of the missed carry); correcting every
flagged block recovers the exact sum.

A *correction budget* makes the unit accuracy-configurable, as in [11]:
with at most ``budget`` corrections applied (LSB-first), the output is
exact iff at most ``budget`` sub-adders erred.  That residual error
probability is computed **analytically** by extending the linear carry/
propagate-run DP of :mod:`repro.gear.analysis` with an error counter --
still linear in N.

* :func:`detect_errors` -- flag mispredicted sub-adders from the inputs;
* :func:`gear_add_corrected` -- functional model with a budget;
* :func:`corrected_error_probability` -- exact residual
  ``P(more than budget sub-adders err)``;
* :func:`error_count_distribution` -- exact PMF of the number of
  erroneous sub-adders (also yields the expected correction count).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.exceptions import AnalysisError, GeArConfigError
from ..core.types import Probability, validate_probability_vector
from .analysis import _advance_bit  # shared DP step (module-internal API)
from .config import GeArConfig
from .functional import gear_add


def detect_errors(config: GeArConfig, a: int, b: int) -> List[int]:
    """Indices of sub-adders whose carry prediction fails for (a, b).

    Uses the hardware-realisable condition (true carry into the window
    base AND full propagate across the prediction bits), which the tests
    prove equivalent to comparing output blocks against the exact sum.
    """
    if a < 0 or b < 0 or a >= 1 << config.n or b >= 1 << config.n:
        raise GeArConfigError(
            f"operands must be in [0, 2^{config.n}), got {a}, {b}"
        )
    flagged = []
    for sub in config.subadders():
        if sub.index == 0:
            continue
        base = sub.low
        mask = (1 << base) - 1
        true_carry = ((a & mask) + (b & mask)) >> base
        if not true_carry:
            continue
        all_propagate = True
        for j in range(base, base + config.p):
            if ((a >> j) & 1) == ((b >> j) & 1):
                all_propagate = False
                break
        if all_propagate:
            flagged.append(sub.index)
    return flagged


def gear_add_corrected(
    config: GeArConfig,
    a: int,
    b: int,
    budget: Optional[int] = None,
) -> Tuple[int, int]:
    """GeAr addition with up to *budget* block corrections (LSB-first).

    Returns ``(result, corrections_applied)``.  ``budget=None`` corrects
    every flagged block, making the result exactly ``a + b``.

    Each correction adds the missed carry at the block's first result
    bit; because detection is exact, the corrected blocks (and the final
    carry, when the last block is corrected) match the exact sum.
    """
    if budget is not None and budget < 0:
        raise AnalysisError(f"budget must be >= 0, got {budget}")
    flagged = detect_errors(config, a, b)
    to_fix = flagged if budget is None else flagged[:budget]
    result = gear_add(config, a, b)
    exact = a + b
    subs = config.subadders()
    for index in to_fix:
        sub = subs[index]
        width = sub.high - sub.result_low + 1
        if index == config.num_subadders - 1:
            width += 1  # the final carry belongs to the last block
        mask = ((1 << width) - 1) << sub.result_low
        result = (result & ~mask) | (exact & mask)
    return result, len(to_fix)


def error_count_distribution(
    config: GeArConfig,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    max_count: Optional[int] = None,
) -> List[float]:
    """Exact PMF of the number of mispredicted sub-adders.

    Extends the linear (carry, propagate-run) DP with a saturating error
    counter.  Entry ``i`` of the returned list is ``P(#errors = i)``;
    the last entry aggregates ``>= len - 1`` when *max_count* truncates.
    """
    pa = [float(p) for p in validate_probability_vector(p_a, config.n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, config.n, "p_b")]
    k_events = config.num_subadders - 1
    cap = k_events if max_count is None else min(max_count, k_events)
    run_cap = config.p
    checkpoints = set(config.error_checkpoints())

    # state: (carry, run, count) -> mass; count saturates at cap (+1 bin
    # when truncated so the tail stays separate).
    bins = cap + 1
    state: Dict[Tuple[int, int, int], float] = {(0, 0, 0): 1.0}
    for j in range(config.n):
        if j in checkpoints:
            bumped: Dict[Tuple[int, int, int], float] = {}
            for (carry, run, count), mass in state.items():
                fired = carry == 1 and run >= run_cap
                new_count = min(count + 1, bins - 1) if fired else count
                key = (carry, run, new_count)
                bumped[key] = bumped.get(key, 0.0) + mass
            state = bumped
        # advance one bit for every count bin independently
        advanced: Dict[Tuple[int, int, int], float] = {}
        by_count: Dict[int, Dict[Tuple[int, int], float]] = {}
        for (carry, run, count), mass in state.items():
            by_count.setdefault(count, {})[(carry, run)] = (
                by_count.setdefault(count, {}).get((carry, run), 0.0) + mass
            )
        for count, sub_state in by_count.items():
            stepped = _advance_bit(sub_state, pa[j], pb[j], run_cap)
            for (carry, run), mass in stepped.items():
                key = (carry, run, count)
                advanced[key] = advanced.get(key, 0.0) + mass
        state = advanced

    pmf = [0.0] * bins
    for (_, _, count), mass in state.items():
        pmf[count] += mass
    return pmf


def expected_corrections(
    config: GeArConfig,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> float:
    """Expected number of erroneous sub-adders (corrections needed for
    an exact result)."""
    pmf = error_count_distribution(config, p_a, p_b)
    return sum(i * p for i, p in enumerate(pmf))


def corrected_error_probability(
    config: GeArConfig,
    budget: int,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> float:
    """Exact residual error probability with a correction *budget*.

    The output is wrong iff more than *budget* sub-adders mispredict
    (any uncorrected erroneous block corrupts its result bits), so this
    is the upper tail of :func:`error_count_distribution`.
    """
    if budget < 0:
        raise AnalysisError(f"budget must be >= 0, got {budget}")
    pmf = error_count_distribution(config, p_a, p_b)
    return float(sum(pmf[budget + 1:]))
