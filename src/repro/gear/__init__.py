"""GeAr low-latency approximate adder: model and error analysis.

The paper's §2.2 substrate (ref [17]) plus the analysis its §1.1 claims:
an exact linear-time error probability without inclusion-exclusion,
alongside the traditional IE baseline and Monte-Carlo validation.
"""

from .analysis import (
    MAX_IE_SUBADDERS,
    GeArIEReport,
    gear_error_probability,
    gear_exhaustive,
    gear_inclusion_exclusion,
    gear_monte_carlo,
    gear_subadder_error_probabilities,
    gear_success_probability,
)
from .config import GeArConfig, SubAdder
from .correction import (
    corrected_error_probability,
    detect_errors,
    error_count_distribution,
    expected_corrections,
    gear_add_corrected,
)
from .functional import gear_add, gear_add_array, gear_error_positions
from .variants import (
    aca_i,
    accurate_rca,
    etaii,
    named_variants,
    variant_comparison,
)

__all__ = [
    "GeArConfig",
    "SubAdder",
    "gear_add",
    "gear_add_array",
    "gear_error_positions",
    "gear_success_probability",
    "gear_error_probability",
    "gear_subadder_error_probabilities",
    "gear_inclusion_exclusion",
    "gear_monte_carlo",
    "gear_exhaustive",
    "GeArIEReport",
    "MAX_IE_SUBADDERS",
    "detect_errors",
    "gear_add_corrected",
    "error_count_distribution",
    "expected_corrections",
    "corrected_error_probability",
    "aca_i",
    "etaii",
    "accurate_rca",
    "named_variants",
    "variant_comparison",
]
