"""Command-line interface: ``sealpaa`` (or ``python -m repro``).

Mirrors the paper's open-source-library goal: every headline analysis is
one command away.

Sub-commands
------------
analyze   error probability of one chain at one probability point
sweep     error-vs-width curves for several cells (Fig. 5 style)
compare   analytical vs exhaustive vs Monte-Carlo cross-validation
simulate  budget-routed simulation (exhaustive -> Monte-Carlo fallback)
distribution  error-magnitude metrics (ED / MED / MRED / WCE) with
          their own exact-DP -> truncated-DP -> Monte-Carlo ladder
gear      GeAr(N, R, P) error analysis (DP + IE + MC)
hybrid    optimal hybrid chain search
power     calibrated power/area estimates (Table 2 style)
cells     list registered cells and their truth tables
obs       pretty-print saved metrics/trace/manifest files
serve     HTTP/JSON analysis service with micro-batching and a
          persistent result cache (see docs/serving.md)

Resilience
----------
Long-running subcommands (``compare``, ``simulate``, ``hybrid``) accept
``--deadline SECONDS`` (stop cleanly with a partial result flagged
truncated), ``--checkpoint PATH`` + ``--resume`` (crash-safe periodic
snapshots; a resumed Monte-Carlo run is bit-identical to an
uninterrupted one), and ``analyze`` accepts ``--validate`` (cross-check
the recursion against a budgeted simulation).  Ctrl-C flushes the
latest checkpoint and exits with status 130.

Observability
-------------
Every subcommand accepts ``--verbose`` (provenance header + structured
progress logs on stderr), ``--metrics-out PATH`` (JSON metrics snapshot
of the run) and ``--trace PATH`` (Chrome ``trace_event`` file loadable
in ``chrome://tracing`` / Perfetto).  On ``analyze``, a bare ``--trace``
keeps its historical meaning (print the per-stage Table-4-style trace);
give it a path to write the span trace instead.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Optional, Sequence

from . import __version__, engine, obs
from .core.adders import registry
from .core.hybrid import HybridChain
from .core.masking import chain_is_exact
from .core.stages import format_trace_table, trace_chain
from .reporting import ascii_table


def _probability(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"probability out of [0,1]: {text}")
    return value


def _prob_list(text: str) -> object:
    """Scalar probability or comma-separated per-bit list."""
    if "," in text:
        return [_probability(chunk) for chunk in text.split(",") if chunk]
    return _probability(text)


def _jobs(text: str) -> object:
    """``--jobs`` value: ``auto``, ``off``, or a worker count."""
    if text in ("auto", "off"):
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"jobs must be 'auto', 'off' or an integer, got {text!r}"
        ) from None


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_jobs, default="off", metavar="N",
        help="worker processes for sharded execution: a count, 'auto' "
             "(one per CPU), or 'off' (default; serial)",
    )


def _budget_from_args(args):
    """Build a :class:`repro.runtime.RunBudget` from CLI flags (or None)."""
    deadline = getattr(args, "deadline", None)
    max_samples = getattr(args, "max_samples", None)
    max_cases = getattr(args, "max_cases", None)
    if deadline is None and max_samples is None and max_cases is None:
        return None
    from .runtime import RunBudget

    return RunBudget(deadline_s=deadline, max_samples=max_samples,
                     max_cases=max_cases)


def _chain_from_args(args) -> HybridChain:
    if getattr(args, "cells_file", None):
        from .io import load_cell_library

        load_cell_library(args.cells_file)
    if getattr(args, "spec", None):
        return HybridChain.from_spec(args.spec)
    if args.cell is None or args.width is None:
        raise SystemExit("either --spec or both --cell and --width required")
    return HybridChain.uniform(args.cell, args.width)


def _cmd_analyze(args) -> int:
    if getattr(args, "adder", None):
        return _analyze_adder(args)
    chain = _chain_from_args(args)
    if args.trace:
        result = trace_chain(list(chain.cells), None, args.pa, args.pb, args.pcin)
        print(format_trace_table(result))
    else:
        result = engine.run(chain, None, args.pa, args.pb, args.pcin)
    print(f"chain      : {chain.describe()}")
    print(f"P(Succ)    : {float(result.p_success):.6f}")
    print(f"P(Error)   : {float(result.p_error):.6f}")
    if not chain_is_exact(list(chain.cells)):
        print("note       : this chain can mask internal errors; the value")
        print("             above is an upper bound on the true P(Error).")
    if getattr(args, "validate", False):
        from .runtime import validate_against_simulation

        report = validate_against_simulation(
            list(chain.cells), None, args.pa, args.pb, args.pcin,
            analytical=float(result.p_error),
            budget=_budget_from_args(args),
        )
        lo, hi = report.interval
        print(f"validated  : simulation {report.estimate:.6f} "
              f"in [{lo:.6f}, {hi:.6f}] ({report.samples} samples"
              f"{', truncated' if report.truncated else ''})")
    return 0


def _analyze_adder(args) -> int:
    """``analyze --adder loa:16:8``: a named zoo config instead of a
    cell chain."""
    from .core.adder_zoo import parse_adder

    if args.trace:
        raise SystemExit("--trace applies to cell chains; named adders "
                         "have no per-stage trace")
    adder = parse_adder(args.adder)
    request = engine.AnalysisRequest.zoo(adder, p_a=args.pa, p_b=args.pb)
    result = engine.run(request=request, budget=_budget_from_args(args))
    print(f"adder      : {adder.describe()}")
    print(f"engine     : {result.engine}")
    print(f"P(Succ)    : {float(result.p_success):.6f}")
    print(f"P(Error)   : {float(result.p_error):.6f}")
    if getattr(args, "validate", False):
        sim = "zoo-mc" if request.block is not None else "montecarlo"
        mc = engine.run(request=request, engine=sim,
                        budget=_budget_from_args(args))
        line = f"validated  : simulation {float(mc.p_error):.6f}"
        if mc.interval is not None:
            lo, hi = mc.interval
            line += f" in [{lo:.6f}, {hi:.6f}]"
        if mc.samples:
            line += f" ({mc.samples} samples)"
        print(line)
    return 0


def _cmd_sweep(args) -> int:
    cells = args.cells or registry.names()
    rows = []
    for name in cells:
        curve = engine.error_curves(name, args.max_width, args.p, args.pcin)
        rows.append([name, *[float(v) for v in curve]])
    headers = ["Cell", *[f"N={n}" for n in range(1, args.max_width + 1)]]
    print(ascii_table(headers, rows, digits=args.digits,
                      title=f"P(Error) vs width at p = {args.p}"))
    return 0


def _cmd_compare(args) -> int:
    chain = _chain_from_args(args)
    request = engine.AnalysisRequest.chain(
        chain, None, args.pa, args.pb, args.pcin
    )
    analytical = engine.run(request).p_error
    rows = [["analytical (recursion)", float(analytical)]]
    exhaustive = engine.REGISTRY.get("exhaustive")
    if exhaustive.accepts(request):
        rows.append([
            "exhaustive (weighted enumeration)",
            engine.run(request, engine="exhaustive").p_error,
        ])
    mc = engine.run(
        request, engine="montecarlo",
        samples=args.samples, seed=args.seed,
        budget=_budget_from_args(args),
        checkpoint_path=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
    )
    label = f"monte-carlo ({mc.samples} samples)"
    if mc.truncated:
        label += f" [truncated: {mc.stop_reason}]"
    rows.append([label, mc.p_error])
    print(ascii_table(["Method", "P(Error)"], rows, digits=6,
                      title=chain.describe()))
    return 0


def _cmd_simulate(args) -> int:
    """Budget-routed simulation: the strongest engine the budget affords."""
    chain = _chain_from_args(args)
    result = engine.run(
        chain, None, args.pa, args.pb, args.pcin, simulate=True,
        budget=_budget_from_args(args), samples=args.samples,
        seed=args.seed, checkpoint_path=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
        jobs=getattr(args, "jobs", None),
    )
    print(f"chain      : {chain.describe()}")
    print(f"engine     : {result.engine}  ({result.reason})")
    if result.degraded_from is not None:
        print(f"degraded   : from {result.degraded_from}")
    print(f"P(Error)   : {result.p_error:.6f}")
    unit = "samples" if result.engine == "montecarlo" else "cases"
    print(f"{unit:<11}: {getattr(result, unit)}")
    if result.truncated:
        print(f"truncated  : yes ({result.stop_reason})")
    if getattr(args, "save", None):
        from .io import save_result

        save_result(result.raw, args.save)
        print(f"saved      : {args.save}")
    return 0


def _cmd_distribution(args) -> int:
    """Error-magnitude analysis: how wrong, not just how often."""
    if getattr(args, "adder", None):
        from .core.adder_zoo import parse_adder

        adder = parse_adder(args.adder)
        request = engine.AnalysisRequest.zoo(
            adder, p_a=args.pa, p_b=args.pb, kind=args.kind
        )
        described = f"adder      : {adder.describe()}"
    else:
        chain = _chain_from_args(args)
        request = engine.AnalysisRequest.distribution(
            chain, None, args.pa, args.pb, args.pcin, kind=args.kind,
        )
        described = f"chain      : {chain.describe()}"
    result = engine.run(
        request=request, engine=args.engine,
        budget=_budget_from_args(args),
        samples=args.samples, seed=args.seed,
    )
    print(described)
    print(f"kind       : {result.kind}")
    line = f"engine     : {result.engine}"
    if result.reason:
        line += f"  ({result.reason})"
    print(line)
    if result.degraded_from is not None:
        print(f"degraded   : from {result.degraded_from}")
    print(f"exact      : {'yes' if result.exact else 'no (estimate)'}")
    rows = [["ER (P(Error))", f"{result.p_error:.6f}"]]
    labels = (("med", "MED  E[|D|]"), ("nmed", "NMED"),
              ("mse", "MSE  E[D^2]"), ("wce", "WCE  max|D|"),
              ("mred", "MRED"), ("bias", "bias E[D]"))
    for name, label in labels:
        value = getattr(result, name)
        if value is None:
            continue
        if name == "wce":
            rows.append([label, f"{int(value)}"])
        else:
            rows.append([label, f"{float(value):.6g}"])
    print(ascii_table(["Metric", "Value"], rows))
    if result.interval is not None:
        lo, hi = result.interval
        print(f"95% interval: [{lo:.6g}, {hi:.6g}] "
              f"({result.samples} samples)")
    if result.distribution is not None:
        top = sorted(result.distribution, key=lambda dp: -dp[1])
        top = top[: args.top]
        print(ascii_table(
            ["Delta", "Probability"],
            [[str(d), f"{p:.6g}"] for d, p in sorted(top)],
            title=f"top {len(top)} of {len(result.distribution)} "
                  "support points",
        ))
    return 0


def _cmd_zoo(args) -> int:
    """The adder-family zoo: catalog, quality table, Pareto filter."""
    from .core.adder_zoo import ZOO_FAMILIES, parse_adder, zoo_cost

    if args.families:
        rows = [[f.key, f.grammar, f.representation, f.source]
                for f in sorted(ZOO_FAMILIES.values(),
                                key=lambda f: f.key)]
        print(ascii_table(
            ["Family", "Config grammar", "Served as", "Source"],
            rows, title="adder-family zoo",
        ))
        return 0

    def fmt(value, digits=6):
        return "-" if value is None else f"{float(value):.{digits}g}"

    from .explore import sweep_zoo_space, zoo_pareto_front

    if args.adder:
        adder = parse_adder(args.adder)
        meta = ZOO_FAMILIES[adder.family]
        cost = zoo_cost(adder)
        (point,) = sweep_zoo_space(adder.n, adders=[adder], p=args.p,
                                   budget=_budget_from_args(args))
        print(f"adder      : {adder.describe()}")
        print(f"grammar    : {meta.grammar}")
        print(f"source     : {meta.source}")
        print(f"served as  : {meta.representation} "
              f"(engine {point.engine})")
        print(f"delay      : {cost.delay_units:g} unit-gate levels")
        print(f"area       : {cost.area_units:g} unit gates")
        print(f"P(Error)   : {point.p_error:.6f}")
        print(f"MED        : {fmt(point.med)}")
        print(f"WCE        : {fmt(point.wce)}")
        print(f"MRED       : {fmt(point.mred)}")
        return 0

    points = sweep_zoo_space(args.width, p=args.p,
                             budget=_budget_from_args(args))
    title = f"zoo at N={args.width}, p={args.p}"
    if args.pareto:
        points = zoo_pareto_front(points, tuple(args.objectives))
        title += f" (Pareto: {', '.join(args.objectives)})"
    rows = [[p.adder, p.representation, f"{p.p_error:.6f}",
             fmt(p.med), fmt(p.wce), fmt(p.mred),
             f"{p.delay_units:g}", f"{p.area_units:g}", p.engine]
            for p in points]
    print(ascii_table(
        ["Adder", "Repr", "ER", "MED", "WCE", "MRED",
         "Delay", "Area", "Engine"],
        rows, title=title,
    ))
    return 0


def _cmd_gear(args) -> int:
    from .gear.analysis import gear_subadder_error_probabilities
    from .gear.config import GeArConfig

    config = GeArConfig(args.n, args.r, args.p)
    print(config.describe())
    request = engine.AnalysisRequest.for_gear(config, args.pa, args.pb)
    dp = engine.run(request, engine="gear-dp").p_error
    print(f"P(Error) [linear DP]     : {dp:.6f}")
    if config.num_subadders - 1 <= 20:
        ie = engine.run(request, engine="gear-ie").raw
        print(
            f"P(Error) [inclusion-exc] : {ie.p_error:.6f} "
            f"({ie.terms_evaluated} terms)"
        )
    if args.samples:
        mc = engine.run(request, engine="gear-mc",
                        samples=args.samples, seed=args.seed).p_error
        print(f"P(Error) [monte-carlo]   : {mc:.6f}")
    marginals = gear_subadder_error_probabilities(config, args.pa, args.pb)
    for i, marginal in enumerate(marginals, start=1):
        print(f"  P(sub-adder {i} errs)   : {marginal:.6f}")
    return 0


def _cmd_hybrid(args) -> int:
    from .explore.hybrid_search import greedy_hybrid, optimal_hybrid

    cells = args.cells or [f"LPAA {i}" for i in range(1, 8)]
    result = optimal_hybrid(cells, args.width, args.pa, args.pb, args.pcin,
                            power_weight=args.power_weight,
                            budget=_budget_from_args(args))
    if result.truncated:
        print(f"note          : deadline hit ({result.stop_reason}); "
              "showing the greedy fallback chain")
    print(f"optimal chain : {result.chain.describe()}")
    print(f"P(Error)      : {result.p_error:.6f}  (exact={result.exact})")
    if result.power_nw is not None:
        print(f"power (model) : {result.power_nw:.1f} nW")
    if args.show_greedy:
        greedy = greedy_hybrid(cells, args.width, args.pa, args.pb, args.pcin)
        print(f"greedy chain  : {greedy.chain.describe()} "
              f"(P(Error) = {greedy.p_error:.6f})")
    return 0


def _cmd_power(args) -> int:
    from .circuits.power import PowerModel

    model = PowerModel()
    chain = _chain_from_args(args)
    rows = []
    for name in sorted({cell.name for cell in chain.cells}):
        cost = model.cell_cost(name, args.p)
        rows.append([
            cost.name, cost.area_ge, cost.published_area_ge,
            cost.power_nw, cost.published_power_nw,
        ])
    print(ascii_table(
        ["Cell", "Area GE (model)", "Area GE (paper)",
         "Power nW (model)", "Power nW (paper)"],
        rows, digits=2,
    ))
    print(f"chain area  : {model.chain_area_ge(list(chain.cells)):.2f} GE")
    print(
        "chain power : "
        f"{model.chain_power_nw(list(chain.cells), None, args.p, args.p):.1f} nW"
    )
    return 0


def _cmd_export(args) -> int:
    from .circuits.power import PowerModel
    from .explore.design_space import sweep_design_space
    from .io import export_design_points

    model = PowerModel() if args.power else None
    points = sweep_design_space(
        args.cells or registry.names(),
        args.widths,
        args.probabilities,
        power_model=model,
        parallelism=getattr(args, "jobs", "off"),
    )
    manifest = obs.build_manifest(
        "design-space-export",
        cells=[str(c) for c in (args.cells or registry.names())],
        widths=[int(w) for w in args.widths],
        probabilities=[float(p) for p in args.probabilities],
        power=bool(args.power),
    )
    export_design_points(points, args.output, fmt=args.format,
                         manifest=manifest)
    print(f"wrote {len(points)} design points to {args.output}")
    return 0


def _cmd_table(args) -> int:
    """Reproduce a paper table on stdout (subset of the bench suite)."""
    from .core.adders import PAPER_LPAAS
    from .core.matrices import derive_matrices

    table_id = args.id
    if table_id == "4":
        result = trace_chain(
            "LPAA 1", width=4, p_a=[0.9, 0.5, 0.4, 0.8],
            p_b=[0.8, 0.7, 0.6, 0.9], p_cin=0.5,
        )
        print(format_trace_table(result))
    elif table_id == "5":
        rows = []
        for cell in PAPER_LPAAS:
            mkl = derive_matrices(cell)
            fmt = lambda m: "[" + ",".join(map(str, m)) + "]"
            rows.append([cell.name, fmt(mkl.m), fmt(mkl.k), fmt(mkl.l)])
        print(ascii_table(["LPAA", "M", "K", "L"], rows))
    elif table_id == "3":
        from .baselines.operation_counter import table3_row

        rows = [
            [k, *table3_row(k).values()] for k in (4, 8, 12, 16, 20, 24, 28, 32)
        ]
        print(ascii_table(
            ["Stages", "Terms", "Mults", "Adds", "Memory"], rows
        ))
    elif table_id == "7":
        rows = []
        for width in (2, 4, 6, 8, 10, 12):
            rows.append([
                width,
                *[
                    engine.run(cell, width, 0.1, 0.1, 0.1).p_error
                    for cell in PAPER_LPAAS
                ],
            ])
        print(ascii_table(
            ["N", *[c.name for c in PAPER_LPAAS]], rows, digits=5
        ))
    else:
        raise SystemExit(
            f"table {table_id!r} not supported here (use the benchmark "
            "suite for the full set); supported: 3, 4, 5, 7"
        )
    return 0


def _cmd_symbolic(args) -> int:
    from .core.symbolic import symbolic_error_probability

    chain = _chain_from_args(args)
    poly = symbolic_error_probability(list(chain.cells), None, mode=args.mode)
    print(f"chain      : {chain.describe()}")
    print(f"P(Error)   = {poly.to_string()}")
    print(f"degree {poly.degree()}, {len(poly.terms)} terms, "
          f"variables {poly.variables()}")
    return 0


def _cmd_timing(args) -> int:
    from .circuits.timing import cell_delay, ripple_delay
    from .gear.variants import variant_comparison

    if args.llaa:
        rows = [
            [r["name"], r["l"], r["subadders"], r["delay"], r["p_error"]]
            for r in variant_comparison(args.width)
        ]
        print(ascii_table(
            ["adder", "L", "k", "delay", "P(Error)"], rows, digits=4,
            title=f"named LLAA variants at N = {args.width}",
        ))
        return 0
    chain = _chain_from_args(args)
    rows = []
    for name in sorted({cell.name for cell in chain.cells}):
        delays = cell_delay(name)
        rows.append([name, delays["sum"], delays["cout"],
                     delays["cin_to_cout"]])
    print(ascii_table(
        ["cell", "sum delay", "cout delay", "carry increment"],
        rows, digits=2,
    ))
    print(f"chain critical path: "
          f"{ripple_delay(list(chain.cells)):.1f} unit gates")
    return 0


def _cmd_faults(args) -> int:
    from .circuits.faults import fault_detectability

    impacts = fault_detectability(
        args.cell, width=args.width, p_a=args.pa, p_b=args.pb,
        p_cin=args.pcin,
    )
    rows = [
        [fi.fault.describe(), fi.p_error_faulty, fi.delta]
        for fi in impacts[:args.top]
    ]
    print(ascii_table(
        ["fault", "P(Error) faulty", "delta"], rows, digits=4,
        title=f"top {args.top} stuck-at faults of {args.cell} in a "
              f"{args.width}-bit chain "
              f"(healthy P(E) = {impacts[0].p_error_healthy:.4f})",
    ))
    silent = [fi for fi in impacts if fi.statistically_silent]
    if silent:
        print(f"{len(silent)} fault(s) are statistically silent at this "
              "input distribution.")
    return 0


def _cmd_ant(args) -> int:
    from .ant import AntAdder, ant_quality_experiment

    adder = AntAdder(args.width, args.cell, args.truncation,
                     threshold=args.threshold)
    main, ant, usage = ant_quality_experiment(
        args.width, args.cell, args.truncation, p=args.p,
        samples=args.samples, seed=args.seed, threshold=args.threshold,
    )
    print(ascii_table(
        ["datapath", "ER", "MED", "MSE", "WCE"],
        [
            [f"raw {args.cell} x{args.width}", main.error_rate, main.med,
             main.mse, main.wce],
            [f"ANT(k={args.truncation})", ant.error_rate, ant.med,
             ant.mse, ant.wce],
        ],
        digits=4,
    ))
    print(f"replica usage     : {usage:.2%}")
    print(f"hard WCE bound    : {adder.worst_case_error_bound()}")
    return 0


def _cmd_serve(args) -> int:
    """Run the batching HTTP/JSON analysis service until SIGTERM."""
    from .obs.slo import SloPolicy
    from .serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1000.0,
        queue_limit=args.queue_limit,
        default_deadline_s=args.default_deadline,
        drain_grace_s=args.drain_grace,
        parallelism=getattr(args, "jobs", "off"),
        cache_dir=args.cache_dir,
        max_disk_entries=args.max_disk_entries,
        segment_cache_dir=args.segment_cache_dir,
        access_log=args.access_log,
        breaker_failures=args.breaker_failures,
        breaker_reset_s=args.breaker_reset,
        rate_limit_rps=(None if args.rate_limit is None
                        or args.rate_limit <= 0 else args.rate_limit),
        rate_limit_burst=args.rate_burst,
        slo=SloPolicy(
            # A negative flag value disables that objective.
            max_p50_s=None if args.slo_p50 < 0 else args.slo_p50,
            max_p99_s=None if args.slo_p99 < 0 else args.slo_p99,
            max_shed_rate=(None if args.slo_shed_rate < 0
                           else args.slo_shed_rate),
            min_cache_hit_rate=(
                None if args.slo_cache_hit_rate is None
                or args.slo_cache_hit_rate < 0
                else args.slo_cache_hit_rate),
        ),
    )
    overrides = {}
    if args.memory_cache_entries is not None:
        overrides["memory_cache_entries"] = args.memory_cache_entries
    if args.access_log_max_bytes is not None:
        overrides["access_log_max_bytes"] = args.access_log_max_bytes
    if args.access_log_backups is not None:
        overrides["access_log_backups"] = args.access_log_backups
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    if args.workers > 1:
        from .serve import SupervisorConfig, run_supervisor

        sup = SupervisorConfig(
            workers=args.workers,
            restart_budget=args.restart_budget,
            heartbeat_timeout_s=args.heartbeat_timeout,
            status_port=args.status_port,
        )
        return run_supervisor(config, sup)
    run_server(config)
    return 0


def _cmd_dashboard(args) -> int:
    """Live curses console over a running server's ``/metrics``."""
    from .serve.dashboard import render_once, run_dashboard

    base_url = args.url.rstrip("/")
    if not base_url.startswith(("http://", "https://")):
        base_url = "http://" + base_url
    if args.once:
        print(render_once(base_url))
        return 0
    return run_dashboard(base_url, interval_s=args.interval,
                         iterations=args.iterations)


def _cmd_cells(args) -> int:
    rows = []
    for cell in registry:
        rows.append([
            cell.name,
            cell.num_error_cases(),
            "".join(str(s) for s, _ in cell.rows),
            "".join(str(c) for _, c in cell.rows),
        ])
    print(ascii_table(
        ["Cell", "Error cases", "Sum row (000..111)", "Cout row"],
        rows,
    ))
    return 0


def _print_metrics_snapshot(data) -> None:
    counters = data.get("counters") or {}
    gauges = data.get("gauges") or {}
    timers = data.get("timers") or {}
    histograms = data.get("histograms") or {}
    service = data.get("service") or {}
    printed = False

    def gap():
        nonlocal printed
        if printed:
            print()
        printed = True

    if counters:
        gap()
        print(ascii_table(
            ["Counter", "Value"], sorted(counters.items()),
        ))
    if gauges:
        gap()
        print(ascii_table(
            ["Gauge", "Value"], sorted(gauges.items()),
        ))
    if timers:
        gap()
        rows = [
            [name, s.get("count"), s.get("total_s"), s.get("mean_s"),
             s.get("p50_s"), s.get("p95_s"), s.get("p99_s"),
             s.get("max_s")]
            for name, s in sorted(timers.items())
        ]
        print(ascii_table(
            ["Timer", "count", "total s", "mean s", "p50 s", "p95 s",
             "p99 s", "max s"],
            rows, digits=6,
        ))
    if histograms:
        gap()
        rows = [
            [name, s.get("count"), s.get("min"), s.get("mean"),
             s.get("p50"), s.get("p95"), s.get("p99"), s.get("max")]
            for name, s in sorted(histograms.items())
        ]
        print(ascii_table(
            ["Histogram", "count", "min", "mean", "p50", "p95", "p99",
             "max"],
            rows, digits=6,
        ))
    if service:
        gap()
        rows = [
            [key, value] for key, value in sorted(service.items())
            if not isinstance(value, dict)
        ]
        for cache_name in ("result_cache", "segment_cache"):
            for tier, tier_doc in sorted(
                (service.get(cache_name) or {}).items()
            ):
                if isinstance(tier_doc, dict):
                    for key, value in sorted(tier_doc.items()):
                        rows.append([f"{cache_name}.{tier}.{key}", value])
        print(ascii_table(["Service", "Value"], rows, digits=6,
                          title="serve stats"))
    # A serving snapshot carries enough signal to judge the default SLO
    # offline -- same evaluation the live /healthz endpoint runs.
    if service or "serve.http.analyze.seconds" in timers:
        from .obs.slo import SloPolicy, evaluate_slo

        slo = evaluate_slo(data, SloPolicy(),
                           shed_rate=service.get("recent_shed_rate"))
        gap()
        rows = [
            [c["name"], c["status"],
             "" if c.get("observed") is None else c["observed"],
             "" if c.get("threshold") is None else c["threshold"]]
            for c in slo["checks"]
        ]
        print(ascii_table(
            ["SLO check", "status", "observed", "threshold"], rows,
            digits=6, title=f"SLO: {slo['status']}",
        ))
    if not printed:
        print("snapshot contains no metrics (was collection enabled?)")


def _print_trace_summary(data) -> None:
    if "traceEvents" in data:  # Chrome trace_event export
        events = data["traceEvents"]
        rows = [
            [e.get("name"), e.get("ts", 0) / 1e6, e.get("dur", 0) / 1e6]
            for e in events
        ]
        print(ascii_table(["Span", "start s", "duration s"], rows,
                          digits=6,
                          title=f"{len(events)} trace events"))
        return

    def walk(spans, depth):
        for span in spans:
            yield ["  " * depth + span["name"], span.get("start_s"),
                   span.get("duration_s")]
            yield from walk(span.get("children", []), depth + 1)

    rows = list(walk(data.get("spans", []), 0))
    print(ascii_table(["Span", "start s", "duration s"], rows, digits=6,
                      title=f"{len(rows)} spans"))


def _print_manifest(data) -> None:
    rows = [
        [key, ", ".join(map(str, value)) if isinstance(value, list)
         else value]
        for key, value in data.items()
        if key not in ("format", "params")
    ]
    for key, value in sorted((data.get("params") or {}).items()):
        rows.append([f"params.{key}", str(value)])
    print(ascii_table(["Field", "Value"], rows, title="run manifest"))


def _cmd_obs(args) -> int:
    """Pretty-print a saved observability document.

    Accepts anything the suite writes: ``--metrics-out`` snapshots,
    ``--trace`` Chrome/span traces, manifest sidecars and
    ``repro.io.save_result`` documents.
    """
    import json

    try:
        with open(args.file) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.file}: {exc.strerror}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{args.file}: not valid JSON ({exc})")
    if not isinstance(data, dict):
        raise SystemExit(f"{args.file}: not an observability document")
    fmt = data.get("format")
    if fmt == obs.METRICS_FORMAT:
        _print_metrics_snapshot(data)
    elif fmt == obs.TRACE_FORMAT or "traceEvents" in data:
        _print_trace_summary(data)
    elif fmt == obs.MANIFEST_FORMAT:
        _print_manifest(data)
    elif fmt == "sealpaa-result-v1":
        rows = [
            [key, value] for key, value in data.items()
            if key not in ("format", "manifest")
        ]
        print(ascii_table(["Field", "Value"], rows, digits=6,
                          title=f"saved result ({data.get('type')})"))
        if data.get("manifest"):
            print()
            _print_manifest(data["manifest"])
    else:
        raise SystemExit(
            f"{args.file}: unrecognised document format {fmt!r}"
        )
    return 0


def _add_obs_arguments(
    parser: argparse.ArgumentParser, stage_trace: bool = False
) -> None:
    """Attach the shared observability flag set to a subcommand.

    ``stage_trace=True`` (the ``analyze`` command) keeps the historical
    bare ``--trace`` behaviour -- print the per-stage table -- while a
    ``--trace PATH`` value writes a Chrome trace-event file.
    """
    group = parser.add_argument_group("observability")
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="provenance header + structured progress logs on stderr "
             "(-vv for debug)",
    )
    group.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a JSON metrics snapshot (counters/timers) of this run",
    )
    if stage_trace:
        group.add_argument(
            "--trace", nargs="?", const=True, default=None, metavar="PATH",
            help="no value: print the per-stage Table-4-style trace; "
                 "with PATH: write a Chrome trace-event file instead",
        )
    else:
        group.add_argument(
            "--trace", dest="trace_out", metavar="PATH", default=None,
            help="write a Chrome trace-event file of this run to PATH",
        )


def _add_runtime_arguments(
    parser: argparse.ArgumentParser,
    checkpoint: bool = True,
    validate: bool = False,
    caps: bool = False,
) -> None:
    """Attach the shared resilience flag set to a subcommand."""
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; the run stops cleanly at the deadline "
             "and partial results are flagged truncated",
    )
    if caps:
        group.add_argument(
            "--max-samples", type=int, default=None, metavar="N",
            help="budget cap on Monte-Carlo samples drawn this run",
        )
        group.add_argument(
            "--max-cases", type=int, default=None, metavar="N",
            help="budget cap on exhaustive cases enumerated this run",
        )
    if checkpoint:
        group.add_argument(
            "--checkpoint", metavar="PATH", default=None,
            help="write crash-safe progress checkpoints to PATH",
        )
        group.add_argument(
            "--resume", action="store_true",
            help="resume from --checkpoint PATH (Monte-Carlo resume is "
                 "bit-identical to an uninterrupted run)",
        )
    if validate:
        group.add_argument(
            "--validate", action="store_true",
            help="cross-check the analytical value against a budgeted "
                 "simulation (Wilson interval); mismatch exits non-zero",
        )


def _add_point_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pa", type=_prob_list, default=0.5,
                        help="P(A_i = 1): scalar or comma list (default 0.5)")
    parser.add_argument("--pb", type=_prob_list, default=0.5,
                        help="P(B_i = 1): scalar or comma list (default 0.5)")
    parser.add_argument("--pcin", type=_probability, default=0.5,
                        help="P(C_in = 1) (default 0.5)")


def _add_chain_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cell", help='cell name, e.g. "LPAA 1"')
    parser.add_argument("--width", type=int, help="number of stages N")
    parser.add_argument("--spec",
                        help='hybrid spec, e.g. "LPAA7:4, LPAA1:4"')
    parser.add_argument("--cells-file",
                        help="JSON cell library to load first "
                             "(see repro.io)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sealpaa",
        description="Statistical error analysis for low-power approximate "
                    "adders (DAC'17 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=obs.provenance_line())
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="error probability of one chain")
    _add_chain_arguments(p)
    p.add_argument("--adder",
                   help='named zoo config instead of a chain, e.g. '
                        '"loa:16:8" or "axppa-ks:8:2" (see "sealpaa '
                        'zoo --families"); adds with carry-in 0')
    _add_point_arguments(p)
    _add_runtime_arguments(p, checkpoint=False, validate=True)
    _add_obs_arguments(p, stage_trace=True)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("sweep", help="error-vs-width curves (Fig. 5 style)")
    p.add_argument("--cells", nargs="*", help="cells (default: all)")
    p.add_argument("--max-width", type=int, default=12)
    p.add_argument("--p", type=_probability, default=0.5,
                   help="input one-probability for all bits")
    p.add_argument("--pcin", type=_probability, default=0.5)
    p.add_argument("--digits", type=int, default=4)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("compare",
                       help="analytical vs exhaustive vs Monte-Carlo")
    _add_chain_arguments(p)
    _add_point_arguments(p)
    p.add_argument("--samples", type=int, default=1_000_000)
    p.add_argument("--seed", type=int, default=0)
    _add_runtime_arguments(p)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "simulate",
        help="budget-routed simulation (exhaustive -> Monte-Carlo fallback)",
    )
    _add_chain_arguments(p)
    _add_point_arguments(p)
    p.add_argument("--samples", type=int, default=None,
                   help="Monte-Carlo samples if the router falls back "
                        "(default: the paper's 1e6)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", metavar="PATH", default=None,
                   help="write the result (with manifest) as JSON")
    _add_runtime_arguments(p, caps=True)
    _add_jobs_argument(p)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "distribution",
        help="error-magnitude analysis: ED / MED / MRED / WCE",
        description="Analyse how wrong the chain's sum is, not just how "
                    "often: the error-value law D = approx - exact and "
                    "its summary metrics, routed through the exact DP, "
                    "the truncated-support DP, or Monte-Carlo.",
    )
    _add_chain_arguments(p)
    p.add_argument("--adder",
                   help='named zoo config instead of a chain, e.g. '
                        '"aca1:8:4" (see "sealpaa zoo --families"); '
                        'adds with carry-in 0')
    _add_point_arguments(p)
    p.add_argument(
        "--kind", default="med",
        choices=["error_distribution", "med", "mred", "wce"],
        help="which view of the error law to compute (default med)",
    )
    p.add_argument(
        "--engine", default=None,
        help="force a backend: distribution-dp, "
             "distribution-dp-truncated, distribution-exhaustive, "
             "distribution-mc, or for --adder blocks zoo-dp, "
             "zoo-dp-truncated, zoo-exhaustive, zoo-mc "
             "(default: routed)",
    )
    p.add_argument("--samples", type=int, default=None,
                   help="Monte-Carlo sample count (backend default "
                        "200000)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=10,
                   help="support points printed for error_distribution "
                        "(default 10)")
    _add_runtime_arguments(p, checkpoint=False)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_distribution)

    p = sub.add_parser(
        "zoo",
        help="the approximate-adder zoo: catalog, quality table, Pareto",
        description="Browse the adder-family zoo: list the families and "
                    "their config grammar, describe one named config, or "
                    "sweep the reference catalog at a width across "
                    "ER/MED/WCE/MRED plus abstract delay/area, optionally "
                    "keeping only the Pareto-optimal rows.",
    )
    p.add_argument("--families", action="store_true",
                   help="list the adder families and their config grammar")
    p.add_argument("--adder",
                   help='describe one config, e.g. "gda:8:2:2"')
    p.add_argument("--width", type=int, default=8,
                   help="sweep the reference catalog at this width "
                        "(default 8)")
    p.add_argument("--p", type=_probability, default=0.5,
                   help="input one-probability for every bit (default 0.5)")
    p.add_argument("--pareto", action="store_true",
                   help="keep only the non-dominated rows")
    p.add_argument("--objectives", nargs="+",
                   default=["error", "delay", "area"],
                   choices=["error", "med", "wce", "mred", "delay", "area"],
                   help="Pareto objectives (default: error delay area)")
    _add_runtime_arguments(p, checkpoint=False)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_zoo)

    p = sub.add_parser("gear", help="GeAr(N, R, P) error analysis")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--r", type=int, required=True)
    p.add_argument("--p", dest="p", type=int, required=True)
    p.add_argument("--pa", type=_prob_list, default=0.5)
    p.add_argument("--pb", type=_prob_list, default=0.5)
    p.add_argument("--samples", type=int, default=0,
                   help="Monte-Carlo samples (0 = skip)")
    p.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_gear)

    p = sub.add_parser("hybrid", help="optimal hybrid chain search")
    p.add_argument("--width", type=int, required=True)
    p.add_argument("--cells", nargs="*",
                   help="candidate cells (default: LPAA 1..7)")
    _add_point_arguments(p)
    p.add_argument("--power-weight", type=float, default=0.0,
                   help="objective = P(Succ) - weight * power_nW")
    p.add_argument("--show-greedy", action="store_true")
    _add_runtime_arguments(p, checkpoint=False)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_hybrid)

    p = sub.add_parser("power", help="power/area estimates (Table 2 style)")
    _add_chain_arguments(p)
    p.add_argument("--p", type=_probability, default=0.5)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser("cells", help="list registered cells")
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_cells)

    p = sub.add_parser("export", help="sweep the design space to CSV/JSON")
    p.add_argument("--cells", nargs="*", help="cells (default: all)")
    p.add_argument("--widths", nargs="+", type=int, default=[4, 8, 12])
    p.add_argument("--probabilities", nargs="+", type=_probability,
                   default=[0.1, 0.5, 0.9])
    p.add_argument("--power", action="store_true",
                   help="attach power/area estimates (slower)")
    p.add_argument("--format", default="", help="csv or json "
                   "(default: from the file suffix)")
    p.add_argument("-o", "--output", required=True,
                   help="output file path")
    _add_jobs_argument(p)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("table", help="reproduce a paper table (3/4/5/7)")
    p.add_argument("id", help="paper table number")
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("symbolic",
                       help="closed-form P(Error) expression of a chain")
    _add_chain_arguments(p)
    p.add_argument("--mode", choices=["uniform", "per-bit"],
                   default="uniform")
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_symbolic)

    p = sub.add_parser("timing", help="cell/chain delays, LLAA comparison")
    _add_chain_arguments(p)
    p.add_argument("--llaa", action="store_true",
                   help="compare named LLAA variants instead")
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_timing)

    p = sub.add_parser("faults",
                       help="statistical stuck-at fault grading of a cell")
    p.add_argument("--cell", required=True)
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--top", type=int, default=10)
    _add_point_arguments(p)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser("ant", help="ANT protection quality experiment")
    p.add_argument("--cell", required=True, help="main-block cell")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--truncation", type=int, default=3,
                   help="replica truncation bits k")
    p.add_argument("--threshold", type=int, default=None)
    p.add_argument("--p", type=_probability, default=0.5)
    p.add_argument("--samples", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_ant)

    p = sub.add_parser(
        "serve",
        help="HTTP/JSON analysis service with micro-batching and a "
             "persistent result cache",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port; 0 picks a free one (default 8080)")
    p.add_argument("--max-batch", type=int, default=64, metavar="N",
                   help="largest engine micro-batch (1 disables "
                        "coalescing; default 64)")
    p.add_argument("--batch-window-ms", type=float, default=5.0,
                   metavar="MS",
                   help="how long a request waits for companions "
                        "(default 5 ms)")
    p.add_argument("--queue-limit", type=int, default=1024, metavar="N",
                   help="bounded queue size; beyond it requests are shed "
                        "with 429 (default 1024)")
    p.add_argument("--default-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="deadline applied to requests without their own "
                        "deadline_s (default: none)")
    p.add_argument("--drain-grace", type=float, default=5.0,
                   metavar="SECONDS",
                   help="SIGTERM drain grace before pending work is "
                        "failed (default 5)")
    p.add_argument("--cache-dir", metavar="PATH", default=None,
                   help="mount the persistent on-disk result cache at "
                        "PATH (shared across processes and restarts)")
    p.add_argument("--segment-cache-dir", metavar="PATH", default=None,
                   help="mount the segment transfer-matrix cache at PATH "
                        "and prefill its memory tier from disk on boot "
                        "(exact O(log N) chain analysis, prefix-shared)")
    fleet = p.add_argument_group("multi-worker supervision")
    fleet.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run N supervised worker processes sharing this port "
             "(SO_REUSEPORT), with crash detection and restarts "
             "(default 1: single in-process server)")
    fleet.add_argument(
        "--restart-budget", type=int, default=8, metavar="N",
        help="total worker restarts before the supervisor gives up "
             "and exits nonzero (default 8)")
    fleet.add_argument(
        "--heartbeat-timeout", type=float, default=10.0,
        metavar="SECONDS",
        help="a worker silent this long is declared hung and "
             "restarted (default 10)")
    fleet.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="supervisor status/merged-metrics port "
             "(default: serve port + 1)")
    robust = p.add_argument_group("admission control and circuit breaker")
    robust.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-client token-bucket admission limit in requests/s, "
             "keyed by X-API-Key or peer address; over-limit requests "
             "get 429 + Retry-After before queueing (default: off)")
    robust.add_argument(
        "--rate-burst", type=float, default=None, metavar="N",
        help="token-bucket burst capacity (default: max(1, RPS))")
    robust.add_argument(
        "--breaker-failures", type=int, default=0, metavar="N",
        help="open the engine circuit breaker after N consecutive "
             "batch failures; open = fast 503 + Retry-After until a "
             "half-open probe succeeds (default 0: disabled)")
    robust.add_argument(
        "--breaker-reset", type=float, default=5.0, metavar="SECONDS",
        help="how long the breaker stays open before probing "
             "(default 5)")
    p.add_argument("--memory-cache-entries", type=int, metavar="N",
                   default=None,
                   help="in-memory result LRU size above the disk tier")
    p.add_argument("--max-disk-entries", type=int, metavar="N",
                   default=None,
                   help="cap on on-disk cache entries; oldest are "
                        "evicted (default: unbounded)")
    telemetry = p.add_argument_group("telemetry")
    telemetry.add_argument(
        "--access-log", metavar="PATH", default=None,
        help="append a JSONL access log (one line per request, "
             "request_id correlated) with size-based rotation")
    telemetry.add_argument(
        "--access-log-max-bytes", type=int, metavar="N", default=None,
        help="rotate the access log past N bytes (default 8 MiB)")
    telemetry.add_argument(
        "--access-log-backups", type=int, metavar="N", default=None,
        help="rotated access-log files to keep (default 3)")
    telemetry.add_argument(
        "--slo-p50", type=float, metavar="SECONDS", default=1.0,
        help="degrade /healthz when rolling p50 latency exceeds this "
             "(default 1.0; negative disables)")
    telemetry.add_argument(
        "--slo-p99", type=float, metavar="SECONDS", default=5.0,
        help="degrade /healthz when rolling p99 latency exceeds this "
             "(default 5.0; negative disables)")
    telemetry.add_argument(
        "--slo-shed-rate", type=float, metavar="RATIO", default=0.5,
        help="degrade /healthz when the recent shed rate exceeds this "
             "(default 0.5; negative disables)")
    telemetry.add_argument(
        "--slo-cache-hit-rate", type=float, metavar="RATIO", default=None,
        help="degrade /healthz when the result-cache hit rate falls "
             "below this (default: disabled)")
    _add_jobs_argument(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "dashboard",
        help="live terminal console over a running `sealpaa serve` "
             "(/metrics + /healthz)",
    )
    p.add_argument("url", nargs="?", default="http://127.0.0.1:8080",
                   help="server base URL (default http://127.0.0.1:8080)")
    p.add_argument("--interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="poll/refresh interval (default 1 s)")
    p.add_argument("--once", action="store_true",
                   help="print one plain-text sample and exit (no curses; "
                        "for pipes and CI)")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="stop after N refreshes (default: run until q)")
    p.set_defaults(func=_cmd_dashboard)

    p = sub.add_parser(
        "obs",
        help="pretty-print a saved metrics/trace/manifest/result file",
    )
    p.add_argument("file", help="JSON document written by --metrics-out, "
                   "--trace or repro.io")
    p.set_defaults(func=_cmd_obs)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .core.exceptions import ReproError

    args = build_parser().parse_args(argv)
    verbose = getattr(args, "verbose", 0)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    if isinstance(getattr(args, "trace", None), str):
        # ``analyze --trace PATH``: a span-trace request, not the legacy
        # bare flag that prints the per-stage table.
        trace_out = args.trace
        args.trace = None

    # Fail fast on unwritable snapshot paths -- losing a metrics file
    # *after* a long Monte-Carlo run would waste the whole run.
    import os

    for out_path in (metrics_out, trace_out):
        if out_path:
            parent = os.path.dirname(os.path.abspath(out_path)) or "."
            if not os.path.isdir(parent):
                print(f"error: output directory does not exist: {parent}",
                      file=sys.stderr)
                return 2

    obs.configure_logging(verbose)
    metrics_registry = None
    tracer = None
    status = 0
    with contextlib.ExitStack() as stack:
        if metrics_out or verbose:
            metrics_registry = obs.MetricsRegistry()
            stack.enter_context(obs.use_registry(metrics_registry))
            if not obs.is_enabled():
                obs.enable()
                stack.callback(obs.disable)
        if trace_out:
            tracer = obs.Tracer()
            stack.enter_context(obs.use_tracer(tracer))
        if verbose:
            print(f"# {obs.provenance_line()}", file=sys.stderr)
        try:
            status = args.func(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            # The engines flush their latest checkpoint before letting
            # the interrupt propagate, so the run is resumable.
            message = "interrupted"
            checkpoint = getattr(args, "checkpoint", None)
            if checkpoint:
                message += (f"; progress saved to {checkpoint} "
                            "(add --resume to continue)")
            print(message, file=sys.stderr)
            return 130
    if metrics_out and metrics_registry is not None:
        obs.snapshot_to_json(metrics_out, metrics_registry)
    if trace_out and tracer is not None:
        tracer.write_chrome(trace_out)
    return status


if __name__ == "__main__":
    sys.exit(main())
