"""Zoo engines: backends for windowed-block adder requests.

Chain-shaped zoo members (LOA and friends) are ordinary hybrid cell
chains -- every existing engine serves them.  The block/prefix members
(ACA, ETA, GDA, GeAr-style overlaps, truncated prefix graphs) carry a
:class:`~repro.core.adder_zoo.WindowedAdderSpec` in ``request.block``
and are served here, by a mirror of the distribution-engine family
built on the monotone-carry-cut DP of :mod:`repro.core.adder_zoo`:

* ``zoo-dp`` -- exact: linear-time ``P(error)`` and WCE at *any*
  width, the full error PMF to :data:`ZOO_EXACT_MAX_WIDTH` bits, the
  joint ``(D, exact)`` DP for MRED to :data:`ZOO_MRED_EXACT_MAX_WIDTH`
  bits.  Deterministic, so the persistent result cache replays it.
* ``zoo-dp-truncated`` -- the same PMF DP with deltas kept at
  :data:`~repro.engine.distribution.QUANT_BITS` significant bits
  (mass-preserving merge): bounded support at any width, ``P(error)``
  still exact, magnitude metrics flagged ``exact=False``.  MRED is not
  served (no mass-preserving joint truncation); WCE delegates to the
  always-exact interval DP.
* ``zoo-exhaustive`` -- the oracle: weighted enumeration of every
  operand pair through the bit-true functional model, width-guarded.
* ``zoo-mc`` -- seeded operand sampling through
  :func:`~repro.core.adder_zoo.windowed_add_array`, with the same
  interval conventions as ``distribution-mc``.

Engine selection goes through
:func:`repro.runtime.router.plan_zoo_engine`, the block twin of the
distribution ladder.  Registration happens in
:func:`repro.engine.backends.register_builtin_engines` like every other
family.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.adder_zoo import (
    WindowedAdderSpec,
    windowed_add_array,
    windowed_error_moments,
    windowed_error_pmf,
    windowed_error_probability,
    windowed_exhaustive_quality,
    windowed_joint_error_pmf,
    windowed_worst_case_error,
)
from ..core.exceptions import AnalysisError
from ..core.magnitude import relative_error_from_joint
from ..core.metrics import metrics_from_pmf, metrics_from_samples
from .distribution import (
    MC_DEFAULT_SAMPLES,
    MC_MAX_SUPPORT,
    _mean_interval,
    _quantize,
    _wilson_interval,
)
from .registry import (
    FAMILY_ANALYTICAL,
    FAMILY_SIMULATION,
    REGISTRY,
    EngineInfo,
)
from .request import (
    DISTRIBUTION_KINDS,
    KIND_CHAIN,
    KIND_ERROR_DISTRIBUTION,
    KIND_MRED,
    KIND_WCE,
    AnalysisRequest,
    AnalysisResult,
)

#: Exact full-PMF guard for block requests; matches the enumeration
#: oracle's width so every exact answer stays oracle-checkable.
ZOO_EXACT_MAX_WIDTH = 16

#: Exact joint ``(delta, exact)`` guard for block MRED.
ZOO_MRED_EXACT_MAX_WIDTH = 12

#: Truncated-support rung guard; past this Monte-Carlo answers faster.
ZOO_TRUNCATED_MAX_WIDTH = 32

#: ``zoo-mc`` width guard: operands must fit signed 64-bit lanes.
ZOO_MC_MAX_WIDTH = 62

#: Request kinds the zoo family serves.
ZOO_KINDS = (KIND_CHAIN,) + DISTRIBUTION_KINDS


def zoo_exact_width_limit(kind: str) -> Optional[int]:
    """Widest block request ``zoo-dp`` serves exactly for *kind*
    (``None`` = any width: ER and WCE run linear-time DPs)."""
    if kind in (KIND_CHAIN, KIND_WCE):
        return None
    if kind == KIND_MRED:
        return ZOO_MRED_EXACT_MAX_WIDTH
    return ZOO_EXACT_MAX_WIDTH


def _block(request: AnalysisRequest) -> WindowedAdderSpec:
    spec = request.block
    if not isinstance(spec, WindowedAdderSpec):
        raise AnalysisError(
            "zoo engines serve block requests only; build one with "
            "AnalysisRequest.zoo('aca1:16:4', ...)"
        )
    return spec


def _zoo_result(
    request: AnalysisRequest,
    engine: str,
    exact: bool,
    p_error: float,
    **fields: object,
) -> AnalysisResult:
    p_error = min(1.0, max(0.0, float(p_error)))
    return AnalysisResult(
        p_error=p_error,
        p_success=1.0 - p_error,
        engine=engine,
        exact=exact,
        width=request.width,
        kind=request.kind,
        cell_names=request.cell_names,
        **fields,  # type: ignore[arg-type]
    )


def _pmf_fields(
    pmf: Dict[int, float], request: AnalysisRequest
) -> Tuple[Dict[str, object], float]:
    """(MED/NMED/MSE/WCE/bias fields, error rate) from a delta law."""
    quality = metrics_from_pmf(pmf, request.width)
    fields: Dict[str, object] = {
        "med": quality.med,
        "nmed": quality.nmed,
        "mse": quality.mse,
        "wce": quality.wce,
        "bias": float(sum(d * p for d, p in pmf.items())),
    }
    if request.kind == KIND_ERROR_DISTRIBUTION:
        fields["distribution"] = tuple(sorted(pmf.items()))
    return fields, quality.error_rate


def run_zoo_dp(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """Exact monotone-carry-cut DP over the request's windowed spec.

    Raises :class:`~repro.core.exceptions.SupportLimitError` when the
    kind's DP support outgrows its guard; the router rungs exist so
    un-forced callers never see that.
    """
    spec = _block(request)
    pa, pb = request.p_a, request.p_b
    if request.kind == KIND_CHAIN:
        return _zoo_result(
            request, "zoo-dp", True,
            windowed_error_probability(spec, pa, pb),
        )
    if request.kind == KIND_WCE:
        moments = windowed_error_moments(spec, pa, pb)
        worst = windowed_worst_case_error(spec, pa, pb)
        return _zoo_result(
            request, "zoo-dp", True,
            windowed_error_probability(spec, pa, pb),
            wce=worst.wce, mse=moments.second_moment, bias=moments.mean,
        )
    if request.kind == KIND_MRED:
        joint = windowed_joint_error_pmf(spec, pa, pb)
        pmf: Dict[int, float] = {}
        for (delta, _value), prob in joint.items():
            pmf[delta] = pmf.get(delta, 0.0) + prob
        fields, error_rate = _pmf_fields(pmf, request)
        fields["mred"] = relative_error_from_joint(joint)
        return _zoo_result(request, "zoo-dp", True, error_rate, **fields)
    pmf = windowed_error_pmf(spec, pa, pb)
    fields, error_rate = _pmf_fields(pmf, request)
    return _zoo_result(request, "zoo-dp", True, error_rate, **fields)


def run_zoo_dp_truncated(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """Truncated-support cut DP: bounded support at any width.

    Same contract as ``distribution-dp-truncated``: nearby deltas merge
    (mass never drops), so ``p_error`` stays exact while magnitude
    metrics carry a bounded relative drift (``exact=False``).
    """
    if request.kind == KIND_MRED:
        raise AnalysisError(
            "zoo-dp-truncated cannot answer 'mred' (the joint "
            "(delta, exact) support has no mass-preserving truncation); "
            "use zoo-mc"
        )
    if request.kind in (KIND_CHAIN, KIND_WCE):
        # Linear-time exact DPs at any width; truncation only hurts.
        return run_zoo_dp(request, **options)
    spec = _block(request)
    pmf = windowed_error_pmf(spec, request.p_a, request.p_b,
                             quantize=_quantize)
    fields, error_rate = _pmf_fields(pmf, request)
    return _zoo_result(request, "zoo-dp-truncated", False, error_rate,
                       **fields)


def run_zoo_exhaustive(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """The oracle: weighted enumeration of every operand pair through
    the bit-true functional model."""
    spec = _block(request)
    report = windowed_exhaustive_quality(spec, request.p_a, request.p_b)
    error_rate = sum(p for d, p in report.pmf.items() if d != 0)
    if request.kind == KIND_CHAIN:
        return _zoo_result(request, "zoo-exhaustive", True, error_rate,
                           cases=report.cases)
    fields, error_rate = _pmf_fields(report.pmf, request)
    fields["bias"] = report.bias
    if request.kind == KIND_MRED:
        fields["mred"] = report.mred
    return _zoo_result(request, "zoo-exhaustive", True, error_rate,
                       cases=report.cases, **fields)


def _sample_operands(
    probs: Tuple[float, ...], samples: int, rng: np.random.Generator
) -> np.ndarray:
    values = np.zeros(samples, dtype=np.int64)
    for i, p in enumerate(probs):
        values |= (rng.random(samples) < p).astype(np.int64) << i
    return values


def run_zoo_mc(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """Seeded operand sampling through the functional model.

    ``interval`` follows ``distribution-mc``'s conventions: Wilson on
    the error rate for ``chain``/``error_distribution``, a normal
    approximation on the MED/MRED sample mean, nothing for WCE (the
    observed maximum is only a lower bound; ``exact=False`` says so).
    """
    spec = _block(request)
    samples = int(options.get("samples") or MC_DEFAULT_SAMPLES)  # type: ignore[arg-type]
    rng = np.random.default_rng(int(options.get("seed", 0)))  # type: ignore[arg-type]
    a = _sample_operands(request.p_a, samples, rng)
    b = _sample_operands(request.p_b, samples, rng)
    approx = windowed_add_array(spec, a, b)
    exact_sums = a + b
    delta = approx - exact_sums
    error_rate = float((delta != 0).mean())
    if request.kind == KIND_CHAIN:
        return _zoo_result(
            request, "zoo-mc", False, error_rate,
            samples=samples,
            interval=_wilson_interval(error_rate, samples),
        )
    quality = metrics_from_samples(approx, exact_sums, request.width)
    abs_delta = np.abs(delta).astype(np.float64)
    interval: Optional[Tuple[float, float]]
    if request.kind == KIND_MRED:
        interval = _mean_interval(abs_delta / np.maximum(exact_sums, 1))
    elif request.kind == KIND_ERROR_DISTRIBUTION:
        interval = _wilson_interval(quality.error_rate, samples)
    elif request.kind == KIND_WCE:
        interval = None
    else:
        interval = _mean_interval(abs_delta)
    fields: Dict[str, object] = {
        "med": quality.med,
        "nmed": quality.nmed,
        "mse": quality.mse,
        "wce": quality.wce,
        "mred": quality.mred,
        "bias": float(delta.mean()),
        "samples": samples,
        "interval": interval,
    }
    if request.kind == KIND_ERROR_DISTRIBUTION:
        uniques, counts = np.unique(delta, return_counts=True)
        if uniques.size <= MC_MAX_SUPPORT:
            fields["distribution"] = tuple(
                (int(d), float(c) / samples)
                for d, c in zip(uniques, counts)
            )
    return _zoo_result(request, "zoo-mc", False, quality.error_rate,
                       **fields)


def register_zoo_engines() -> None:
    """Register the four zoo engines (idempotent)."""
    if "zoo-dp" in REGISTRY:
        return
    REGISTRY.register(EngineInfo(
        name="zoo-dp", family=FAMILY_ANALYTICAL,
        request_kinds=ZOO_KINDS, exact=True, deterministic=True,
        run=run_zoo_dp, parallel_safe=True, supports_block=True,
        cost_estimate=lambda width, samples=None: (
            8.0 * width * min(2.0 ** width, 4.0e6)),
        description="exact monotone-carry-cut DP over windowed block "
                    "adders: ER, error PMF, joint MRED, interval WCE",
    ))
    REGISTRY.register(EngineInfo(
        name="zoo-dp-truncated", family=FAMILY_ANALYTICAL,
        request_kinds=ZOO_KINDS, exact=False, deterministic=True,
        run=run_zoo_dp_truncated, parallel_safe=True, supports_block=True,
        cost_estimate=lambda width, samples=None: 3000.0 * width * width,
        description="cut DP with mass-preserving delta quantisation "
                    "(bounded support at any width)",
    ))
    REGISTRY.register(EngineInfo(
        name="zoo-exhaustive", family=FAMILY_SIMULATION,
        request_kinds=ZOO_KINDS, exact=True, deterministic=True,
        run=run_zoo_exhaustive, parallel_safe=True, supports_block=True,
        max_width=ZOO_EXACT_MAX_WIDTH,
        cost_estimate=lambda width, samples=None: 2.0 ** (2 * width + 1),
        description="weighted enumeration oracle through the bit-true "
                    "windowed functional model",
    ))
    REGISTRY.register(EngineInfo(
        name="zoo-mc", family=FAMILY_SIMULATION,
        request_kinds=ZOO_KINDS, exact=False,
        run=run_zoo_mc, parallel_safe=True, supports_block=True,
        max_width=ZOO_MC_MAX_WIDTH, default_samples=MC_DEFAULT_SAMPLES,
        cost_estimate=lambda width, samples=None: float(
            samples if samples else MC_DEFAULT_SAMPLES),
        description="seeded operand sampling through "
                    "windowed_add_array with Wilson/normal intervals",
    ))
