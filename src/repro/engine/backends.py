"""Built-in engine registrations.

Each runner normalises one backend's native call convention and result
shape into the :class:`~repro.engine.request.AnalysisResult` protocol.
Heavy backend modules are imported *inside* the runners (the registry
itself stays import-light); static capability constants
(``MAX_EXHAUSTIVE_WIDTH``, ``BLOCK_CASES``, ...) are read once at
registration time from their owning modules, so the registry never
duplicates a threshold.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.truth_table import FullAdderTruthTable
from ..obs import metrics as _metrics
from ..obs.tracing import trace_span
from .cache import mask_arrays, stage_transition
from .registry import (
    FAMILY_ANALYTICAL,
    FAMILY_SIMULATION,
    REGISTRY,
    EngineInfo,
)
from .request import (
    KIND_CHAIN,
    KIND_GEAR,
    KIND_MULTIOP,
    AnalysisRequest,
    AnalysisResult,
)

#: Abstract cost units per recursion stage (scalar path, cache warm).
_STAGE_COST = 8.0

#: NumPy dispatch overhead of a batch=1 vectorised call, in the same
#: units.  Keeps the cached scalar loop the default for single-point
#: requests while ``run_batch`` feeds the vectorised engine directly.
_VECTOR_OVERHEAD = 400.0

#: Cost model of the segment-tree path: big-int leaf lowering dominates
#: a cold evaluation (one-time, then content-addressed away), while the
#: O(log N) compose/evaluate work grows far slower than the recursion's
#: O(N) stage loop.  The crossover with ``recursive`` (8w vs 600 + 2w)
#: sits near width 100, so the router sends *long* chains to the segment
#: path by default and an installed segment cache (see
#: ``executor.select_engine``) opts shorter ones in explicitly.
_TRANSFER_OVERHEAD = 600.0
_TRANSFER_STAGE_COST = 2.0

# Per-chain masking-exactness memo, keyed on the full stage sequence's
# truth-table rows: True iff the recursion's P(Error) is exact (not
# merely an upper bound) for that exact sequence of cells.
_MASKING_EXACT: Dict[Tuple[Tuple[Tuple[int, int], ...], ...], bool] = {}


def _chain_is_upper_bound(request: AnalysisRequest) -> bool:
    if not request.check_masking:
        return False
    from ..core.masking import chain_is_exact

    # Masking is a property of the whole chain, not of any single cell:
    # one stage's silent carry divergence only becomes a masked error if
    # the *downstream* cells absorb it, so per-cell checks miss hybrid
    # combinations.  Memoised on the full stage sequence.
    key = tuple(table.rows for table in request.cells)
    exact = _MASKING_EXACT.get(key)
    if exact is None:
        exact = chain_is_exact(list(request.cells))
        _MASKING_EXACT[key] = exact
    return not exact


def _chain_result(
    request: AnalysisRequest,
    p_success: float,
    engine: str,
    exact: bool,
    **extra: object,
) -> AnalysisResult:
    # Float engines can overshoot a probability by an ulp (e.g. an
    # accurate chain whose success mass sums to 1.0000000000000002,
    # leaving p_error at -2.2e-16); clamp to the unit interval so every
    # result is a probability.  The exact transfer path is unaffected:
    # its correctly-rounded values are already in [0, 1].
    p_success = min(1.0, max(0.0, p_success))
    return AnalysisResult(
        p_error=1.0 - p_success,
        p_success=p_success,
        engine=engine,
        exact=exact,
        width=request.width,
        kind=request.kind,
        cell_names=request.cell_names,
        is_upper_bound=exact and _chain_is_upper_bound(request),
        **extra,  # type: ignore[arg-type]
    )


def run_recursive(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Scalar recursion over cached stage transitions (Algorithm 1)."""
    cells = request.cells
    pa, pb = request.p_a, request.p_b
    if request.keep_trace:
        from ..core.recursive import analyze_chain

        native = analyze_chain(list(cells), None, list(pa), list(pb),
                               request.p_cin, keep_trace=True)
        return _chain_result(request, float(native.p_success),
                             "recursive", True,
                             trace=native.trace, raw=native)
    n = len(cells)
    # Cache-accelerated execution of the same recursion as
    # ``core.recursive.analyze_chain``; it honours that function's
    # observability contract (span + calls/stages counters) so existing
    # dashboards keep working regardless of which path served the run.
    with _metrics.timed("core.recursive.analyze_chain"), \
            trace_span("core.recursive.analyze_chain", width=n):
        c1 = request.p_cin
        c0 = 1.0 - c1
        for i in range(n - 1):
            c0, c1 = stage_transition(cells[i], pa[i], pb[i]).apply(c0, c1)
        p_success = stage_transition(cells[-1], pa[-1], pb[-1]).success(c0, c1)
    if _metrics.is_enabled():
        registry = _metrics.get_registry()
        registry.counter("core.recursive.calls").add(1)
        registry.counter("core.recursive.stages").add(n)
    return _chain_result(request, p_success, "recursive", True)


def run_transfer(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Segment-tree evaluation over exact transfer matrices (O(log N)).

    Served through the process-wide :mod:`repro.engine.segcache` tier
    when one is installed (``configure_segment_cache``), so chains
    sharing prefixes reuse composed segments; without one it builds the
    canonical tree directly.  Either way the answer is the correctly
    rounded exact value -- bit-identical to ``analyze_chain`` in its
    documented exact (``Fraction``) mode, and independent of cache
    state (warm == cold by the transfer module's exactness contract).
    """
    from ..core.transfer import analyze_chain_transfer
    from . import segcache as _segcache

    cells = list(request.cells)
    cache = _segcache.get_segment_cache()
    with _metrics.timed("core.transfer.analyze_chain"), \
            trace_span("core.transfer.analyze_chain", width=len(cells)):
        if cache is not None:
            p_success = cache.success_probability(
                cells, request.p_a, request.p_b, request.p_cin
            )
        else:
            p_success = analyze_chain_transfer(
                cells, None, list(request.p_a), list(request.p_b),
                request.p_cin,
            )
    return _chain_result(request, p_success, "transfer", True)


def run_vectorized(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Single-point entry of the NumPy batch engine (cache-fed masks)."""
    from ..core.vectorized import analyze_batch

    cells = list(request.cells)
    p_success = analyze_batch(
        cells, None,
        np.asarray(request.p_a), np.asarray(request.p_b), request.p_cin,
        batch=1, matrices=[mask_arrays(t) for t in cells],
    )
    return _chain_result(request, float(p_success[0]), "vectorized", True)


def run_correlated(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Correlated-operand recursion (per-stage joint laws)."""
    from ..core.correlated import analyze_chain_correlated

    p_success, trace = analyze_chain_correlated(
        list(request.cells), list(request.joints or ()), request.p_cin
    )
    return _chain_result(request, float(p_success), "correlated", True,
                         trace=tuple(trace))


def run_inclusion_exclusion(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """The exponential inclusion-exclusion baseline (Table 3)."""
    from ..baselines.inclusion_exclusion import _inclusion_exclusion_impl

    report = _inclusion_exclusion_impl(
        list(request.cells), None,
        list(request.p_a), list(request.p_b), request.p_cin,
    )
    return _chain_result(request, 1.0 - report.p_error,
                         "inclusion-exclusion", True, raw=report)


def run_exhaustive(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Weighted exhaustive enumeration (budgetable, checkpointable)."""
    from ..simulation.exhaustive import (
        exhaustive_error_probability,
        exhaustive_report,
    )

    plain = (
        options.get("budget") is None
        and options.get("checkpoint_path") is None
        and options.get("progress") is None
        and not options.get("routed", False)
    )
    if plain:
        # Single-shot enumeration: no chunk boundaries, so no budget
        # checks, checkpoint flushes or chaos ticks -- same contract as
        # the original ``exhaustive_error_probability`` entry point.
        p_error = exhaustive_error_probability(
            list(request.cells), None,
            list(request.p_a), list(request.p_b), request.p_cin,
        )
        return _chain_result(
            request, 1.0 - p_error, "exhaustive", True,
            cases=1 << (2 * request.width + 1), truncated=False,
        )

    report = exhaustive_report(
        list(request.cells), None,
        list(request.p_a), list(request.p_b), request.p_cin,
        budget=options.get("budget"),
        progress=options.get("progress"),
        checkpoint_path=options.get("checkpoint_path"),
        resume=bool(options.get("resume", False)),
    )
    return _chain_result(
        request, 1.0 - report.p_error, "exhaustive", True,
        cases=report.cases, truncated=report.truncated,
        stop_reason=report.stop_reason, raw=report,
    )


def run_montecarlo(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Seeded Monte-Carlo estimation (budgetable, checkpointable)."""
    from ..simulation.montecarlo import (
        PAPER_SAMPLE_COUNT,
        simulate_error_probability,
    )

    samples = options.get("samples") or PAPER_SAMPLE_COUNT
    result = simulate_error_probability(
        list(request.cells), None,
        list(request.p_a), list(request.p_b), request.p_cin,
        samples=int(samples),  # type: ignore[arg-type]
        seed=options.get("seed", 0),  # type: ignore[arg-type]
        budget=options.get("budget"),
        progress=options.get("progress"),
        checkpoint_path=options.get("checkpoint_path"),
        resume=bool(options.get("resume", False)),
    )
    return _chain_result(
        request, 1.0 - result.p_error, "montecarlo", False,
        samples=result.samples, truncated=result.truncated,
        stop_reason=result.stop_reason,
        interval=result.wilson_interval(), raw=result,
    )


def _gear_result(
    request: AnalysisRequest, p_error: float, engine: str, exact: bool,
    **extra: object,
) -> AnalysisResult:
    return AnalysisResult(
        p_error=p_error, p_success=1.0 - p_error,
        engine=engine, exact=exact,
        width=request.width, kind=KIND_GEAR,
        **extra,  # type: ignore[arg-type]
    )


def run_gear_dp(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """GeAr linear DP (exact in O(N*P))."""
    from ..gear.analysis import gear_success_probability

    p_success = gear_success_probability(
        request.gear, list(request.p_a), list(request.p_b)
    )
    return _gear_result(request, 1.0 - p_success, "gear-dp", True)


def run_gear_ie(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """GeAr inclusion-exclusion over sub-adder error events."""
    from ..gear.analysis import gear_inclusion_exclusion

    report = gear_inclusion_exclusion(
        request.gear, list(request.p_a), list(request.p_b)
    )
    return _gear_result(request, report.p_error, "gear-ie", True, raw=report)


def run_gear_mc(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Seeded GeAr Monte-Carlo estimate."""
    from ..gear.analysis import gear_monte_carlo

    samples = int(options.get("samples") or 1_000_000)  # type: ignore[arg-type]
    p_error = gear_monte_carlo(
        request.gear, list(request.p_a), list(request.p_b),
        samples=samples, seed=options.get("seed"),  # type: ignore[arg-type]
    )
    return _gear_result(request, p_error, "gear-mc", False, samples=samples)


def run_multiop_exact(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Weighted enumeration over all multi-operand inputs."""
    from ..multiop.analysis import multi_operand_error_exact

    p_error = multi_operand_error_exact(
        [list(row) for row in request.operands], request.width,
        compress_cell=request.compress_cell,
        final_adder=list(request.final_adder) or None,
    )
    cases = 1 << (len(request.operands) * request.width)
    return AnalysisResult(
        p_error=p_error, p_success=1.0 - p_error,
        engine="multiop-exact", exact=True,
        width=request.width, kind=KIND_MULTIOP, cases=cases,
    )


def run_multiop_mc(request: AnalysisRequest, **options: object) -> AnalysisResult:
    """Monte-Carlo over the functional CSA-tree model."""
    from ..multiop.analysis import multi_operand_error_probability_mc

    samples = int(options.get("samples") or 200_000)  # type: ignore[arg-type]
    p_error = multi_operand_error_probability_mc(
        [list(row) for row in request.operands], request.width,
        compress_cell=request.compress_cell,
        final_adder=list(request.final_adder) or None,
        samples=samples, seed=options.get("seed"),  # type: ignore[arg-type]
    )
    return AnalysisResult(
        p_error=p_error, p_success=1.0 - p_error,
        engine="multiop-mc", exact=False,
        width=request.width, kind=KIND_MULTIOP, samples=samples,
    )


_REGISTERED = False


def register_builtin_engines() -> None:
    """Populate :data:`~repro.engine.registry.REGISTRY` (idempotent).

    Width limits, chunking thresholds and default sample counts are read
    from the owning backend modules so the registry can never drift from
    the engines' own guards.
    """
    global _REGISTERED
    if _REGISTERED:
        return
    from ..baselines.inclusion_exclusion import MAX_IE_WIDTH
    from ..simulation.exhaustive import BLOCK_CASES, MAX_EXHAUSTIVE_WIDTH
    from ..simulation.montecarlo import PAPER_SAMPLE_COUNT

    REGISTRY.register(EngineInfo(
        name="recursive", family=FAMILY_ANALYTICAL,
        request_kinds=(KIND_CHAIN,), exact=True, deterministic=True,
        run=run_recursive, supports_trace=True, parallel_safe=True,
        cost_estimate=lambda width, samples=None: _STAGE_COST * width,
        description="paper Algorithm 1 over cached stage transitions",
    ))
    REGISTRY.register(EngineInfo(
        name="transfer", family=FAMILY_ANALYTICAL,
        request_kinds=(KIND_CHAIN,), exact=True, deterministic=True,
        run=run_transfer, parallel_safe=True,
        cost_estimate=lambda width, samples=None: (
            _TRANSFER_OVERHEAD + _TRANSFER_STAGE_COST * width),
        description="exact segment-tree composition, prefix-cached",
    ))
    REGISTRY.register(EngineInfo(
        name="vectorized", family=FAMILY_ANALYTICAL,
        request_kinds=(KIND_CHAIN,), exact=True, deterministic=True,
        run=run_vectorized, supports_batch=True, parallel_safe=True,
        cost_estimate=lambda width, samples=None: (
            _VECTOR_OVERHEAD + 12.0 * width),
        description="NumPy batch recursion (cache-fed mask arrays)",
    ))
    REGISTRY.register(EngineInfo(
        name="correlated", family=FAMILY_ANALYTICAL,
        request_kinds=(KIND_CHAIN,), exact=True, deterministic=True,
        run=run_correlated, supports_correlated=True,
        cost_estimate=lambda width, samples=None: 60.0 * width,
        description="recursion under per-stage joint operand laws",
    ))
    REGISTRY.register(EngineInfo(
        name="inclusion-exclusion", family=FAMILY_ANALYTICAL,
        request_kinds=(KIND_CHAIN,), exact=True, deterministic=True,
        run=run_inclusion_exclusion, max_width=MAX_IE_WIDTH,
        parallel_safe=True,
        cost_estimate=lambda width, samples=None: width * (2.0 ** width),
        description="the exponential baseline the paper beats (Table 3)",
    ))
    REGISTRY.register(EngineInfo(
        name="exhaustive", family=FAMILY_SIMULATION,
        request_kinds=(KIND_CHAIN,), exact=True, deterministic=True,
        run=run_exhaustive, max_width=MAX_EXHAUSTIVE_WIDTH,
        block_cases=BLOCK_CASES, parallel_safe=True,
        cost_estimate=lambda width, samples=None: 2.0 ** (2 * width + 1),
        description="weighted enumeration of all 2^(2N+1) cases",
    ))
    REGISTRY.register(EngineInfo(
        name="montecarlo", family=FAMILY_SIMULATION,
        request_kinds=(KIND_CHAIN,), exact=False,
        run=run_montecarlo, default_samples=PAPER_SAMPLE_COUNT,
        parallel_safe=True,
        cost_estimate=lambda width, samples=None: float(
            samples if samples else PAPER_SAMPLE_COUNT),
        description="seeded sampling estimate with Wilson intervals",
    ))
    REGISTRY.register(EngineInfo(
        name="gear-dp", family=FAMILY_ANALYTICAL,
        request_kinds=(KIND_GEAR,), exact=True, deterministic=True,
        run=run_gear_dp, parallel_safe=True,
        cost_estimate=lambda width, samples=None: 10.0 * width,
        description="GeAr linear DP over (carry, run) states",
    ))
    REGISTRY.register(EngineInfo(
        name="gear-ie", family=FAMILY_ANALYTICAL,
        request_kinds=(KIND_GEAR,), exact=True, deterministic=True,
        run=run_gear_ie, parallel_safe=True,
        cost_estimate=lambda width, samples=None: 100.0 + 2.0 ** width,
        description="GeAr inclusion-exclusion over sub-adder events",
    ))
    REGISTRY.register(EngineInfo(
        name="gear-mc", family=FAMILY_SIMULATION,
        request_kinds=(KIND_GEAR,), exact=False,
        run=run_gear_mc, default_samples=1_000_000, parallel_safe=True,
        cost_estimate=lambda width, samples=None: float(
            samples if samples else 1_000_000),
        description="seeded GeAr Monte-Carlo estimate",
    ))
    REGISTRY.register(EngineInfo(
        name="multiop-exact", family=FAMILY_SIMULATION,
        request_kinds=(KIND_MULTIOP,), exact=True, deterministic=True,
        run=run_multiop_exact, parallel_safe=True,
        cost_estimate=lambda width, samples=None: 4.0 ** width,
        description="weighted enumeration of the CSA tree + final adder",
    ))
    REGISTRY.register(EngineInfo(
        name="multiop-mc", family=FAMILY_SIMULATION,
        request_kinds=(KIND_MULTIOP,), exact=False,
        run=run_multiop_mc, default_samples=200_000, parallel_safe=True,
        cost_estimate=lambda width, samples=None: float(
            samples if samples else 200_000),
        description="Monte-Carlo over the functional CSA-tree model",
    ))
    # The error-magnitude and zoo families live in their own modules;
    # registering them here keeps "import repro.engine" the single
    # activation point.
    from .distribution import register_distribution_engines
    from .zoo import register_zoo_engines

    register_distribution_engines()
    register_zoo_engines()
    _REGISTERED = True
