"""Error-magnitude engines: the distribution kinds' backend family.

The paper's engines answer one question -- word-level ``P(error)``.
This module registers the backends that answer *how wrong* the sum is,
for the :data:`~repro.engine.request.DISTRIBUTION_KINDS` request kinds
(``error_distribution`` / ``med`` / ``mred`` / ``wce``), following Wu
et al.'s block-based error statistics and Roy & Dhar's fast
mean-error-distance analysis (PAPERS.md): propagate the error-value law
``D = approx - exact`` stage by stage over the carry-pair Markov state.

Four engines, one degradation ladder
(:func:`repro.runtime.router.plan_distribution_engine`):

* ``distribution-dp`` -- exact: the full-PMF DP of
  :func:`repro.core.magnitude.error_pmf` (practical to
  :data:`DIST_EXACT_MAX_WIDTH` bits), the joint ``(D, exact)`` DP for
  MRED (to :data:`MRED_EXACT_MAX_WIDTH` bits), and for the ``wce`` kind
  the linear-time interval DP
  (:func:`repro.core.magnitude.worst_case_error`) exact at *any* width.
  ``E[D]``/``E[D^2]`` always come exact from the linear-time moments.
* ``distribution-dp-truncated`` -- the truncated-support rung past the
  exact guard: the same DP with every delta rounded to
  :data:`QUANT_BITS` significant bits (mass-preserving mantissa
  quantisation, bounded support at any width).  ``P(error)`` stays
  exact (a nonzero delta never merges into zero); MED/MSE/bias drift
  by at most ``~width * 2^(1-QUANT_BITS)`` relative, so results are
  flagged ``exact=False``.
* ``distribution-exhaustive`` -- the oracle: one weighted enumeration
  pass (:func:`repro.simulation.exhaustive.exhaustive_quality`)
  reporting the PMF, MRED and bias, width-guarded like every
  exhaustive path.
* ``distribution-mc`` -- seeded sampling
  (:func:`repro.simulation.montecarlo.simulate_samples` +
  :func:`repro.core.metrics.metrics_from_samples`) with a Wilson
  interval on ER and normal-approximation intervals on MED/MRED.

All results land in the protocol's error-magnitude fields
(``med``/``nmed``/``mse``/``wce``/``mred``/``bias`` and, for
``error_distribution`` requests, the full ``distribution`` PMF), so
serve, the CLI and the result cache carry them without special cases.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.metrics import metrics_from_pmf
from .cache import stage_transition
from .registry import (
    FAMILY_ANALYTICAL,
    FAMILY_SIMULATION,
    REGISTRY,
    EngineInfo,
)
from .request import (
    DISTRIBUTION_KINDS,
    KIND_ERROR_DISTRIBUTION,
    KIND_MED,
    KIND_MRED,
    KIND_WCE,
    AnalysisRequest,
    AnalysisResult,
)

#: Exact full-PMF DP guard: beyond this width the delta support can
#: outgrow ``error_pmf``'s ``max_entries`` and the router degrades to
#: the truncated-support DP.  Matches the exhaustive oracle's width so
#: every exact answer remains oracle-checkable.
DIST_EXACT_MAX_WIDTH = 16

#: Exact joint ``(delta, exact value)`` DP guard for MRED: the support
#: also scales with the ``2^(N+1)`` exact values, so the practical
#: limit sits lower than the marginal PMF's.
MRED_EXACT_MAX_WIDTH = 12

#: Truncated-support DP guard: bounded support makes the cost linear in
#: width, but past ~32 bits Monte-Carlo answers faster than the DP.
DIST_TRUNCATED_MAX_WIDTH = 32

#: Significant bits kept per delta by the truncated-support DP.  Mass
#: is never dropped -- nearby deltas merge -- so the PMF still sums to
#: 1 and ER stays exact; magnitude metrics drift by at most
#: ``~width * 2^(1-QUANT_BITS)`` relative.
QUANT_BITS = 12

#: Default sample count of ``distribution-mc`` (smaller than the
#: paper's 1M: magnitude metrics converge on means, not tail counts).
MC_DEFAULT_SAMPLES = 200_000

#: Largest empirical support ``distribution-mc`` reports as a PMF.
MC_MAX_SUPPORT = 4096


def exact_width_limit(kind: str) -> Optional[int]:
    """Widest request the exact ``distribution-dp`` serves for *kind*
    (``None`` = any width: the WCE interval DP is linear-time)."""
    if kind == KIND_WCE:
        return None
    if kind == KIND_MRED:
        return MRED_EXACT_MAX_WIDTH
    return DIST_EXACT_MAX_WIDTH


def _quantize(delta: int, bits: int = QUANT_BITS) -> int:
    """Round *delta* toward zero to *bits* significant binary digits."""
    if delta == 0:
        return 0
    magnitude = abs(delta)
    shift = magnitude.bit_length() - bits
    if shift <= 0:
        return delta
    magnitude = (magnitude >> shift) << shift
    return magnitude if delta > 0 else -magnitude


def _quantized_error_pmf(request: AnalysisRequest) -> Dict[int, float]:
    """The :func:`~repro.core.magnitude.error_pmf` DP with deltas kept
    at :data:`QUANT_BITS` significant bits -- bounded support (about
    ``2^QUANT_BITS * width`` entries per carry state) at any width,
    total mass exactly preserved."""
    from ..core.truth_table import ACCURATE

    cells = request.cells
    pa, pb, pc = request.p_a, request.p_b, request.p_cin
    dists: Dict[Tuple[int, int], Dict[int, float]] = {}
    if pc < 1.0:
        dists[(0, 0)] = {0: 1.0 - pc}
    if pc > 0.0:
        dists[(1, 1)] = {0: pc}
    for i, table in enumerate(cells):
        weight_bit = 1 << i
        nxt: Dict[Tuple[int, int], Dict[int, float]] = {}
        for (ca, ce), dist in dists.items():
            if not dist:
                continue
            for a in (0, 1):
                wa = pa[i] if a else 1.0 - pa[i]
                if wa == 0.0:
                    continue
                for b in (0, 1):
                    wb = pb[i] if b else 1.0 - pb[i]
                    w = wa * wb
                    if w == 0.0:
                        continue
                    sa, ca_next = table.evaluate(a, b, ca)
                    se, ce_next = ACCURATE.evaluate(a, b, ce)
                    delta_inc = (sa - se) * weight_bit
                    bucket = nxt.setdefault((ca_next, ce_next), {})
                    for delta, prob in dist.items():
                        key = _quantize(delta + delta_inc)
                        bucket[key] = bucket.get(key, 0.0) + prob * w
        dists = nxt
    weight_carry = 1 << len(cells)
    pmf: Dict[int, float] = {}
    for (ca, ce), dist in dists.items():
        delta_inc = (ca - ce) * weight_carry
        for delta, prob in dist.items():
            key = _quantize(delta + delta_inc)
            pmf[key] = pmf.get(key, 0.0) + prob
    return {d: p for d, p in pmf.items() if p > 0.0}


def _chain_error_probability(request: AnalysisRequest) -> float:
    """Word-level P(error) of the request's chain via the cached
    stage-transition recursion (the paper's Algorithm 1)."""
    cells = request.cells
    c1 = request.p_cin
    c0 = 1.0 - c1
    for i in range(len(cells) - 1):
        c0, c1 = stage_transition(
            cells[i], request.p_a[i], request.p_b[i]).apply(c0, c1)
    p_success = stage_transition(
        cells[-1], request.p_a[-1], request.p_b[-1]).success(c0, c1)
    return 1.0 - min(1.0, max(0.0, p_success))


def _result(
    request: AnalysisRequest,
    engine: str,
    exact: bool,
    p_error: float,
    **fields: object,
) -> AnalysisResult:
    p_error = min(1.0, max(0.0, float(p_error)))
    return AnalysisResult(
        p_error=p_error,
        p_success=1.0 - p_error,
        engine=engine,
        exact=exact,
        width=request.width,
        kind=request.kind,
        cell_names=request.cell_names,
        **fields,  # type: ignore[arg-type]
    )


def _pmf_fields(
    pmf: Dict[int, float], request: AnalysisRequest
) -> Tuple[Dict[str, object], float]:
    """(MED/NMED/MSE/WCE/bias fields, error rate) from a delta law."""
    quality = metrics_from_pmf(pmf, request.width)
    fields: Dict[str, object] = {
        "med": quality.med,
        "nmed": quality.nmed,
        "mse": quality.mse,
        "wce": quality.wce,
        "bias": float(sum(d * p for d, p in pmf.items())),
    }
    if request.kind == KIND_ERROR_DISTRIBUTION:
        fields["distribution"] = tuple(sorted(pmf.items()))
    return fields, quality.error_rate


def run_distribution_dp(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """Exact error-magnitude DP (full PMF / joint MRED / interval WCE).

    Raises :class:`~repro.core.exceptions.SupportLimitError` when the
    requested kind's DP support outgrows its guard -- the router rungs
    (:func:`repro.runtime.router.plan_distribution_engine`) exist so
    un-forced callers never see that.
    """
    from ..core.magnitude import (
        error_moments,
        error_pmf,
        joint_error_pmf,
        relative_error_from_joint,
        worst_case_error,
    )

    cells = list(request.cells)
    pa, pb, pc = list(request.p_a), list(request.p_b), request.p_cin
    if request.kind == KIND_WCE:
        moments = error_moments(cells, None, pa, pb, pc)
        worst = worst_case_error(cells, None, pa, pb, pc)
        from .backends import _chain_is_upper_bound

        return _result(
            request, "distribution-dp", True,
            _chain_error_probability(request),
            wce=worst.wce, mse=moments.second_moment, bias=moments.mean,
            is_upper_bound=_chain_is_upper_bound(request),
        )
    if request.kind == KIND_MRED:
        joint = joint_error_pmf(cells, None, pa, pb, pc)
        pmf: Dict[int, float] = {}
        for (delta, _value), prob in joint.items():
            pmf[delta] = pmf.get(delta, 0.0) + prob
        fields, error_rate = _pmf_fields(pmf, request)
        fields["mred"] = relative_error_from_joint(joint)
        return _result(request, "distribution-dp", True, error_rate,
                       **fields)
    pmf = error_pmf(cells, None, pa, pb, pc)
    fields, error_rate = _pmf_fields(pmf, request)
    return _result(request, "distribution-dp", True, error_rate, **fields)


def run_distribution_dp_truncated(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """Truncated-support DP: bounded support at any width.

    Deltas are kept at :data:`QUANT_BITS` significant bits, merging
    (never dropping) nearby values, so the PMF sums to 1 and
    ``p_error`` is still exact; MED/MSE/WCE/bias carry a bounded
    relative drift and the result is flagged ``exact=False``.  MRED is
    not served here (the joint DP has no mass-preserving truncation);
    the router sends wide MRED questions to Monte-Carlo instead.
    """
    if request.kind == KIND_MRED:
        raise AnalysisError(
            "distribution-dp-truncated cannot answer 'mred' (the joint "
            "(delta, exact) support has no mass-preserving truncation); "
            "use distribution-mc"
        )
    if request.kind == KIND_WCE:
        # The exact interval DP is linear-time at any width; truncation
        # would only make the answer worse.
        return run_distribution_dp(request, **options)
    pmf = _quantized_error_pmf(request)
    fields, error_rate = _pmf_fields(pmf, request)
    return _result(request, "distribution-dp-truncated", False,
                   error_rate, **fields)


def run_distribution_exhaustive(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """The oracle: weighted enumeration of every input combination."""
    from ..simulation.exhaustive import exhaustive_quality

    report = exhaustive_quality(
        list(request.cells), None,
        list(request.p_a), list(request.p_b), request.p_cin,
        progress=options.get("progress"),
    )
    fields, error_rate = _pmf_fields(report.pmf, request)
    fields["bias"] = report.bias
    if request.kind == KIND_MRED:
        fields["mred"] = report.mred
    return _result(request, "distribution-exhaustive", True, error_rate,
                   cases=report.cases, **fields)


def _mean_interval(
    values: np.ndarray, z: float = 1.96
) -> Tuple[float, float]:
    """Normal-approximation CI for a sample mean, clamped at 0."""
    n = values.size
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if n > 1 else 0.0
    half = z * std / math.sqrt(n)
    return (max(0.0, mean - half), mean + half)


def _wilson_interval(
    p: float, n: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a proportion (keeps width at p=0/1)."""
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return (max(0.0, center - half), min(1.0, center + half))


def run_distribution_mc(
    request: AnalysisRequest, **options: object
) -> AnalysisResult:
    """Seeded sampling estimate of the error-magnitude metrics.

    ``interval`` carries the 95% bound on the request's headline
    metric: Wilson on ER for ``error_distribution``, a normal
    approximation on the MED/MRED sample mean otherwise (WCE has no
    sampling bound -- the observed maximum is only a lower bound, and
    the result says so via ``exact=False``).
    """
    from ..core.metrics import metrics_from_samples
    from ..simulation.montecarlo import simulate_samples

    samples = int(options.get("samples") or MC_DEFAULT_SAMPLES)  # type: ignore[arg-type]
    approx, exact_sums = simulate_samples(
        list(request.cells), None,
        list(request.p_a), list(request.p_b), request.p_cin,
        samples=samples, seed=options.get("seed", 0),  # type: ignore[arg-type]
        progress=options.get("progress"),
    )
    quality = metrics_from_samples(approx, exact_sums, request.width)
    delta = approx - exact_sums
    abs_delta = np.abs(delta).astype(np.float64)
    interval: Optional[Tuple[float, float]]
    if request.kind == KIND_MED:
        interval = _mean_interval(abs_delta)
    elif request.kind == KIND_MRED:
        interval = _mean_interval(abs_delta / np.maximum(exact_sums, 1))
    elif request.kind == KIND_ERROR_DISTRIBUTION:
        interval = _wilson_interval(quality.error_rate, samples)
    else:
        interval = None
    fields: Dict[str, object] = {
        "med": quality.med,
        "nmed": quality.nmed,
        "mse": quality.mse,
        "wce": quality.wce,
        "mred": quality.mred,
        "bias": float(delta.mean()),
        "samples": samples,
        "interval": interval,
    }
    if request.kind == KIND_ERROR_DISTRIBUTION:
        uniques, counts = np.unique(delta, return_counts=True)
        if uniques.size <= MC_MAX_SUPPORT:
            fields["distribution"] = tuple(
                (int(d), float(c) / samples)
                for d, c in zip(uniques, counts)
            )
    return _result(request, "distribution-mc", False, quality.error_rate,
                   **fields)


def register_distribution_engines() -> None:
    """Register the four distribution engines (idempotent)."""
    if "distribution-dp" in REGISTRY:
        return
    from ..simulation.exhaustive import MAX_EXHAUSTIVE_WIDTH

    REGISTRY.register(EngineInfo(
        name="distribution-dp", family=FAMILY_ANALYTICAL,
        request_kinds=DISTRIBUTION_KINDS, exact=True, deterministic=True,
        run=run_distribution_dp, parallel_safe=True,
        cost_estimate=lambda width, samples=None: (
            8.0 * width * min(2.0 ** width, 4.0e6)),
        description="exact carry-pair DP: full error PMF, joint MRED, "
                    "interval WCE",
    ))
    REGISTRY.register(EngineInfo(
        name="distribution-dp-truncated", family=FAMILY_ANALYTICAL,
        request_kinds=DISTRIBUTION_KINDS, exact=False, deterministic=True,
        run=run_distribution_dp_truncated, parallel_safe=True,
        cost_estimate=lambda width, samples=None: 3000.0 * width * width,
        description=f"error-PMF DP at {QUANT_BITS} significant delta "
                    "bits (mass-preserving, bounded support)",
    ))
    REGISTRY.register(EngineInfo(
        name="distribution-exhaustive", family=FAMILY_SIMULATION,
        request_kinds=DISTRIBUTION_KINDS, exact=True, deterministic=True,
        run=run_distribution_exhaustive, parallel_safe=True,
        max_width=MAX_EXHAUSTIVE_WIDTH,
        cost_estimate=lambda width, samples=None: 2.0 ** (2 * width + 1),
        description="weighted enumeration oracle: PMF, MRED and bias in "
                    "one pass",
    ))
    REGISTRY.register(EngineInfo(
        name="distribution-mc", family=FAMILY_SIMULATION,
        request_kinds=DISTRIBUTION_KINDS, exact=False,
        run=run_distribution_mc, parallel_safe=True,
        default_samples=MC_DEFAULT_SAMPLES,
        cost_estimate=lambda width, samples=None: float(
            samples if samples else MC_DEFAULT_SAMPLES),
        description="seeded sampling: Wilson-bounded ER, "
                    "normal-approximation MED/MRED intervals",
    ))
