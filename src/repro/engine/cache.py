"""Process-wide stage-matrix cache.

The recursion's per-stage work factors into two pieces: deriving the
cell's M/K/L analysis masks from its truth table, and contracting them
with the stage's operand probabilities into the 2x2 success-carry
transition ``v_next = T v`` plus the final functional ``l`` (see
:mod:`repro.explore.hybrid_search` for the derivation).  Both pieces
depend only on ``(cell truth table, P(A_i), P(B_i))`` -- and sweeps,
design-space exploration, hybrid search and repeated service queries hit
the *same* handful of combinations thousands of times.

This module memoises them process-wide:

* :func:`analysis_matrices` / :func:`mask_arrays` -- the M/K/L masks per
  truth-table fingerprint (and their NumPy form for the vectorised
  engine);
* :func:`stage_transition` -- the contracted :class:`StageTransition`
  per ``(fingerprint, quantized P(A), quantized P(B))``, LRU-bounded.

Probabilities are quantized to :data:`QUANT_DIGITS` decimal digits for
key stability (well below the 1e-12 parity tolerance of the analytical
engines).  Hit/miss totals are always tracked locally (cheap integers)
and mirrored into :mod:`repro.obs` counters
(``engine.cache.hits`` / ``engine.cache.misses`` /
``engine.cache.size``) when metrics collection is enabled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.matrices import AnalysisMatrices, derive_matrices
from ..core.truth_table import FullAdderTruthTable
from ..obs import metrics as _metrics

#: Decimal digits kept when quantizing probabilities into cache keys.
QUANT_DIGITS = 12

#: Default LRU capacity (distinct ``(cell, P(A), P(B))`` combinations).
#: A 64-point x 64-point probability grid over the full 8-cell library
#: fits with room to spare; at ~200 bytes per entry the worst case is a
#: few tens of MB.
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class StageTransition:
    """One stage's contracted update on ``v = (P(C̄∩Succ), P(C∩Succ))``.

    ``apply`` advances the state through a non-final stage
    (K mask -> row 0, M mask -> row 1); ``success`` contracts the state
    entering the *final* stage with the L-mask functional.
    """

    t00: float
    t01: float
    t10: float
    t11: float
    l0: float
    l1: float

    def apply(self, c0: float, c1: float) -> Tuple[float, float]:
        """``v_next = T v``: the Eq. 11 carry update."""
        return (self.t00 * c0 + self.t01 * c1,
                self.t10 * c0 + self.t11 * c1)

    def success(self, c0: float, c1: float) -> float:
        """``P(Succ) = l . v`` at the last stage (Eq. 12)."""
        return self.l0 * c0 + self.l1 * c1

    @property
    def matrix(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """``T[out][in]`` as nested tuples (hybrid-search convention)."""
        return ((self.t00, self.t01), (self.t10, self.t11))

    @property
    def final(self) -> Tuple[float, float]:
        """The final-stage functional ``(l0, l1)``."""
        return (self.l0, self.l1)


def _build_transition(
    mkl: AnalysisMatrices, p_a: float, p_b: float
) -> StageTransition:
    """Contract the M/K/L masks with one stage's operand probabilities."""
    qa, qb = 1.0 - p_a, 1.0 - p_b
    pair = (qa * qb, qa * p_b, p_a * qb, p_a * p_b)
    t00 = t01 = t10 = t11 = l0 = l1 = 0.0
    for row in range(8):
        weight = pair[row >> 1]  # (a<<1 | b) indexes the pair products
        cin = row & 1
        if mkl.k[row]:
            if cin:
                t01 += weight
            else:
                t00 += weight
        if mkl.m[row]:
            if cin:
                t11 += weight
            else:
                t10 += weight
        if mkl.l[row]:
            if cin:
                l1 += weight
            else:
                l0 += weight
    return StageTransition(t00, t01, t10, t11, l0, l1)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache statistics (also exported via obs metrics)."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class StageMatrixCache:
    """LRU cache of stage transitions keyed by
    ``(truth-table fingerprint, quantized P(A), quantized P(B))``.

    ``capacity=0`` disables memoisation entirely (every lookup computes
    and counts as a miss) -- the cold baseline of
    ``benchmarks/bench_engine_cache.py``.  Thread-safe; the derived
    M/K/L masks are cached un-evicted per fingerprint (the cell library
    is tiny: at most ``4**8`` distinct tables exist).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._transitions = OrderedDict()  # type: OrderedDict[tuple, StageTransition]
        self._matrices = {}  # type: Dict[tuple, AnalysisMatrices]
        self._arrays = {}  # type: Dict[tuple, Tuple[np.ndarray, np.ndarray, np.ndarray]]
        self._hits = 0
        self._misses = 0

    @staticmethod
    def fingerprint(table: FullAdderTruthTable) -> tuple:
        """Identity of a cell for caching: its eight ``(sum, cout)`` rows.

        Deliberately *not* the cell name -- two differently-named tables
        with identical rows share cache entries, and ad-hoc tables (for
        example faulted variants) are cached without registration.
        """
        return table.rows

    def analysis_matrices(self, table: FullAdderTruthTable) -> AnalysisMatrices:
        """Cached :func:`repro.core.matrices.derive_matrices`."""
        key = table.rows
        with self._lock:
            mkl = self._matrices.get(key)
            if mkl is not None:
                return mkl
        mkl = derive_matrices(table)
        with self._lock:
            self._matrices.setdefault(key, mkl)
        return mkl

    def mask_arrays(
        self, table: FullAdderTruthTable
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(m, k, l)`` float arrays for the vectorised engine."""
        key = table.rows
        with self._lock:
            arrays = self._arrays.get(key)
            if arrays is not None:
                return arrays
        arrays = self.analysis_matrices(table).as_arrays()
        with self._lock:
            self._arrays.setdefault(key, arrays)
        return arrays

    def stage_transition(
        self, table: FullAdderTruthTable, p_a: float, p_b: float
    ) -> StageTransition:
        """The (possibly cached) contracted transition for one stage."""
        key = (table.rows,
               round(float(p_a), QUANT_DIGITS),
               round(float(p_b), QUANT_DIGITS))
        if self._capacity:
            # Counter read-modify-writes happen only while holding the
            # LRU lock; the obs mirror is updated after release so the
            # cache lock never nests inside the metrics locks.
            with self._lock:
                cached = self._transitions.get(key)
                if cached is not None:
                    self._transitions.move_to_end(key)
                    self._hits += 1
            if cached is not None:
                if _metrics.is_enabled():
                    _metrics.inc("engine.cache.hits")
                return cached
        transition = _build_transition(
            self.analysis_matrices(table), float(p_a), float(p_b)
        )
        with self._lock:
            self._misses += 1
            if self._capacity:
                self._transitions[key] = transition
                self._transitions.move_to_end(key)
                while len(self._transitions) > self._capacity:
                    self._transitions.popitem(last=False)
            size = len(self._transitions)
        if _metrics.is_enabled():
            _metrics.inc("engine.cache.misses")
            _metrics.set_gauge("engine.cache.size", size)
        return transition

    def merge_stats(self, hits: int = 0, misses: int = 0) -> None:
        """Fold external hit/miss deltas into this cache's totals.

        :mod:`repro.engine.parallel` workers serve lookups from their
        own per-process cache; their per-chunk deltas are merged here so
        ``stats()`` and the ``engine.cache.*`` obs counters describe the
        whole run, not just the parent process.
        """
        if hits < 0 or misses < 0:
            raise ValueError(
                f"stat deltas must be >= 0, got hits={hits} misses={misses}"
            )
        if not (hits or misses):
            return
        with self._lock:
            self._hits += hits
            self._misses += misses
        if _metrics.is_enabled():
            if hits:
                _metrics.inc("engine.cache.hits", hits)
            if misses:
                _metrics.inc("engine.cache.misses", misses)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              size=len(self._transitions),
                              capacity=self._capacity)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._transitions.clear()
            self._matrices.clear()
            self._arrays.clear()
            self._hits = 0
            self._misses = 0

    def configure(self, capacity: int) -> None:
        """Resize (0 disables caching); existing entries are trimmed."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        with self._lock:
            self._capacity = capacity
            while len(self._transitions) > capacity:
                self._transitions.popitem(last=False)


#: The process-wide cache every engine path shares.
GLOBAL_CACHE = StageMatrixCache()


def stage_transition(
    table: FullAdderTruthTable, p_a: float, p_b: float
) -> StageTransition:
    """Module-level shortcut into :data:`GLOBAL_CACHE`."""
    return GLOBAL_CACHE.stage_transition(table, p_a, p_b)


def analysis_matrices(table: FullAdderTruthTable) -> AnalysisMatrices:
    """Module-level shortcut into :data:`GLOBAL_CACHE`."""
    return GLOBAL_CACHE.analysis_matrices(table)


def mask_arrays(
    table: FullAdderTruthTable,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Module-level shortcut into :data:`GLOBAL_CACHE`."""
    return GLOBAL_CACHE.mask_arrays(table)


def cache_stats() -> CacheStats:
    """Statistics of the process-wide cache."""
    return GLOBAL_CACHE.stats()


def clear_cache() -> None:
    """Empty the process-wide cache (tests, cold benchmarks)."""
    GLOBAL_CACHE.clear()


def configure_cache(capacity: int) -> None:
    """Resize the process-wide cache; ``0`` disables memoisation."""
    GLOBAL_CACHE.configure(capacity)
