"""The segment tier: memory-LRU -> disk store of segment transfer matrices.

:mod:`repro.core.transfer` collapses any contiguous run of adder stages
into one exact :class:`~repro.core.transfer.SegmentMatrix`; this module
is where those matrices are *kept*.  Sweeps, serve traffic and Pareto
exploration share chain prefixes heavily -- a million-config sweep over
one adder family rebuilds the same 64-stage prefix a million times --
so caching segments turns O(N) per config into O(log N) lookups per
chain and O(1) amortised work per shared prefix.

Three levels, mirroring the result cache (:mod:`repro.engine.diskcache`):

* an in-memory LRU of *leaves* keyed ``(truth-table rows, quantised
  P(A), quantised P(B))`` and of *composed nodes* keyed by their
  children's content keys -- pure dict lookups on the hot path, no
  hashing;
* an optional :class:`DiskSegmentStore` (same atomic-write /
  corruption-tolerant / concurrently-prunable machinery as the result
  store) holding segments of span >= ``min_disk_span`` content-addressed
  by their Merkle key, shared across processes and restarts;
* warm-start: :meth:`SegmentCache.prefill` loads the newest disk
  entries back into the memory tier on boot (``sealpaa serve
  --segment-cache-dir``).

Because segment composition is exact (see the transfer module's
exactness contract), a cache hit can never change an answer -- warm and
cold evaluations are bit-identical by construction, which is what makes
this tier safe to share across workers and restarts without replay
provenance.  One deliberate caveat: keys quantise probabilities to
:data:`~repro.core.transfer.KEY_QUANT_DIGITS` decimal digits -- the
library-wide identity convention shared with the stage-matrix LRU and
the result cache -- so two *distinct* probabilities closer than 1e-12
are treated as the same stage and served by the first-seen
representative, exactly as the result cache already does for whole
requests.

Obs metrics: ``engine.cache.segment.{hits,misses}`` counters and the
``engine.cache.segment.size`` gauge for the memory tier;
``engine.cache.segment.disk.{hits,misses,writes,corrupt,evictions,
races}`` and ``engine.cache.segment.disk.entries`` for the disk tier.
Worker processes fold their per-chunk deltas back through
:meth:`SegmentCache.merge_stats`, the same lock path the stage-matrix
LRU uses (:mod:`repro.engine.parallel`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.transfer import (
    KEY_QUANT_DIGITS,
    SegmentMatrix,
    chain_matrix,
    compose,
    evaluate,
    lower_stage,
    node_key,
)
from ..core.truth_table import FullAdderTruthTable
from ..obs import metrics as _metrics
from .diskcache import DiskResultStore

#: On-disk entry format tag (bump on incompatible layout change).
SEGMENT_STORE_FORMAT = "sealpaa-segcache-v1"

#: Default memory-tier capacity (leaves + composed nodes together).  A
#: 64-stage chain contributes ~127 canonical nodes; tens of thousands of
#: entries cover a large design-space sweep's shared structure.
DEFAULT_MEMORY_ENTRIES = 65536

#: Smallest segment span persisted to disk.  Leaves and short segments
#: rebuild in microseconds -- writing them would turn a cold sweep into
#: an IO storm for no warm-start value; long segments are the expensive,
#: heavily-shared ones.
DEFAULT_MIN_DISK_SPAN = 8


def _payload_from_matrix(matrix: SegmentMatrix,
                         children: Optional[Tuple[str, str]],
                         leaf_id: Optional[tuple]) -> Dict[str, object]:
    """JSON entry payload: the six numerators travel as hex strings
    (they are hundreds to thousands of bits for generic probabilities).
    ``children`` / ``leaf_id`` let :meth:`SegmentCache.prefill` re-index
    the entry into the memory tier's native keys."""
    doc: Dict[str, object] = {
        "span": matrix.span,
        "exp": matrix.exp,
        "t": [format(value, "x") if value >= 0 else "-" +
              format(-value, "x") for value in matrix.entries()],
    }
    if children is not None:
        doc["left"], doc["right"] = children
    if leaf_id is not None:
        rows, q_a, q_b = leaf_id
        doc["rows"] = [list(row) for row in rows]
        doc["p_a"], doc["p_b"] = q_a, q_b
    return doc


def _matrix_from_payload(key: str, payload: Dict[str, object]) -> SegmentMatrix:
    entries = [int(text, 16) for text in payload["t"]]  # type: ignore[union-attr]
    return SegmentMatrix(int(payload["span"]), int(payload["exp"]),  # type: ignore[arg-type]
                         *entries, key=key)


def _validate_segment_payload(payload: object) -> Dict[str, object]:
    """Schema check for one disk entry; ``ValueError`` on anything off."""
    if not isinstance(payload, dict):
        raise ValueError("payload is not an object")
    span = payload.get("span")
    exp = payload.get("exp")
    if not isinstance(span, int) or span < 1:
        raise ValueError(f"bad span: {span!r}")
    if not isinstance(exp, int) or exp < 0:
        raise ValueError(f"bad exponent: {exp!r}")
    entries = payload.get("t")
    if not isinstance(entries, list) or len(entries) != 6:
        raise ValueError("payload needs six matrix entries")
    for text in entries:
        int(str(text), 16)  # raises ValueError on garbage
    return payload


class DiskSegmentStore(DiskResultStore):
    """Segment matrices on disk, content-addressed by Merkle key.

    Inherits the result store's entry layout, atomic replacement,
    corruption-tolerant reads and concurrent pruning wholesale -- only
    the format tag, the metric namespace and the payload schema differ.
    """

    store_format = SEGMENT_STORE_FORMAT
    metric_prefix = "engine.cache.segment.disk"

    validate_payload = staticmethod(_validate_segment_payload)


class SegmentCache:
    """Memory-LRU over an optional :class:`DiskSegmentStore`.

    The memory tier holds :class:`~repro.core.transfer.SegmentMatrix`
    objects under their *construction* keys -- ``(rows, quantised p_a,
    quantised p_b)`` for leaves, ``(left.key, right.key)`` for composed
    nodes -- so the hot path is plain dict traffic; the SHA content
    address riding inside each matrix is only touched at the disk
    boundary.  One shared LRU bounds both shapes together.

    ``memory_entries=0`` disables memoisation (every lookup builds and
    counts as a miss), the cold baseline of
    ``benchmarks/bench_prefix_cache.py``.  Thread-safe; hit/miss totals
    are mirrored into the ``engine.cache.segment.*`` obs counters when
    metrics collection is enabled.
    """

    def __init__(
        self,
        store: Optional[DiskSegmentStore] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        min_disk_span: int = DEFAULT_MIN_DISK_SPAN,
    ) -> None:
        if memory_entries < 0:
            raise ValueError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        if min_disk_span < 1:
            raise ValueError(
                f"min_disk_span must be >= 1, got {min_disk_span}"
            )
        self.store = store
        self.min_disk_span = min_disk_span
        self._memory_entries = memory_entries
        self._segments = OrderedDict()  # type: OrderedDict[tuple, SegmentMatrix]
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # -- memory tier ---------------------------------------------------------

    def _get(self, key: tuple) -> Optional[SegmentMatrix]:
        with self._lock:
            matrix = self._segments.get(key)
            if matrix is not None:
                self._segments.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        if _metrics.is_enabled():
            _metrics.inc("engine.cache.segment.hits" if matrix is not None
                         else "engine.cache.segment.misses")
        return matrix

    def _remember(self, key: tuple, matrix: SegmentMatrix) -> None:
        if not self._memory_entries:
            return
        with self._lock:
            self._segments[key] = matrix
            self._segments.move_to_end(key)
            while len(self._segments) > self._memory_entries:
                self._segments.popitem(last=False)
            size = len(self._segments)
        if _metrics.is_enabled():
            _metrics.set_gauge("engine.cache.segment.size", size)

    # -- cache-through builders (the transfer module's leaf/combine seam) ----

    @staticmethod
    def leaf_id(table: FullAdderTruthTable, p_a: float, p_b: float) -> tuple:
        return (table.rows,
                round(float(p_a), KEY_QUANT_DIGITS),
                round(float(p_b), KEY_QUANT_DIGITS))

    def leaf(self, table: FullAdderTruthTable,
             p_a: float, p_b: float) -> SegmentMatrix:
        """Cached :func:`~repro.core.transfer.lower_stage`."""
        key = self.leaf_id(table, p_a, p_b)
        matrix = self._get(key)
        if matrix is not None:
            return matrix
        matrix = lower_stage(table, p_a, p_b)
        self._remember(key, matrix)
        self._spill(matrix, children=None, leaf=key)
        return matrix

    def combine(self, left: SegmentMatrix,
                right: SegmentMatrix) -> SegmentMatrix:
        """Cached :func:`~repro.core.transfer.compose`: memory first,
        then the disk tier (span permitting), then an exact compose."""
        key = (left.key, right.key)
        matrix = self._get(key)
        if matrix is not None:
            return matrix
        span = left.span + right.span
        if self.store is not None and span >= self.min_disk_span:
            payload = self.store.get(node_key(left.key, right.key))
            if payload is not None:
                matrix = _matrix_from_payload(
                    node_key(left.key, right.key), payload)
                self._remember(key, matrix)
                return matrix
        matrix = compose(left, right)
        self._remember(key, matrix)
        self._spill(matrix, children=key, leaf=None)
        return matrix

    def _spill(self, matrix: SegmentMatrix,
               children: Optional[Tuple[str, str]],
               leaf: Optional[tuple]) -> None:
        if self.store is None or matrix.span < self.min_disk_span:
            return
        self.store.put(matrix.key,
                       _payload_from_matrix(matrix, children, leaf))

    # -- chain-level entry points -------------------------------------------

    def chain_root(
        self,
        cells: Sequence[FullAdderTruthTable],
        p_a: Sequence[float],
        p_b: Sequence[float],
    ) -> SegmentMatrix:
        """The whole-chain matrix over the canonical segment tree, every
        node served through this cache."""
        return chain_matrix(cells, p_a, p_b,
                            leaf=self.leaf, combine=self.combine)

    def success_probability(
        self,
        cells: Sequence[FullAdderTruthTable],
        p_a: Sequence[float],
        p_b: Sequence[float],
        p_cin: float,
    ) -> float:
        """``P(Succ)`` via the cached segment tree (bit-identical to the
        exact-mode reference recursion regardless of cache state)."""
        return evaluate(self.chain_root(cells, p_a, p_b), p_cin)

    # -- lifecycle / accounting ---------------------------------------------

    def prefill(self, limit: Optional[int] = None) -> int:
        """Warm-start: promote disk entries into the memory tier.

        Loads the newest entries first (a bounded memory tier keeps the
        most recently useful segments), re-indexing each under its
        native memory key -- child content keys for composed nodes, the
        ``(rows, p_a, p_b)`` triple for leaves.  Returns the number of
        segments loaded; unreadable or schema-less entries are skipped
        (and counted corrupt by the store's read path).
        """
        if self.store is None or not self._memory_entries:
            return 0
        budget = self._memory_entries if limit is None \
            else min(limit, self._memory_entries)
        loaded = 0
        for key in self.store.list_keys(newest_first=True):
            if loaded >= budget:
                break
            payload = self.store.get(key)
            if payload is None:
                continue
            if "left" in payload and "right" in payload:
                memory_key: tuple = (str(payload["left"]),
                                     str(payload["right"]))
            elif "rows" in payload:
                rows = tuple(tuple(int(bit) for bit in row)
                             for row in payload["rows"])  # type: ignore[union-attr]
                memory_key = (rows, float(payload["p_a"]),  # type: ignore[arg-type]
                              float(payload["p_b"]))  # type: ignore[arg-type]
            else:
                continue  # an old entry without re-index hints
            self._remember(memory_key, _matrix_from_payload(key, payload))
            loaded += 1
        return loaded

    def merge_stats(self, hits: int = 0, misses: int = 0) -> None:
        """Fold a worker chunk's hit/miss delta into this cache's totals
        (the :mod:`repro.engine.parallel` merge path)."""
        if hits < 0 or misses < 0:
            raise ValueError(
                f"stat deltas must be >= 0, got hits={hits} misses={misses}"
            )
        if not (hits or misses):
            return
        with self._lock:
            self._hits += hits
            self._misses += misses
        if _metrics.is_enabled():
            if hits:
                _metrics.inc("engine.cache.segment.hits", hits)
            if misses:
                _metrics.inc("engine.cache.segment.misses", misses)

    def stats(self) -> Dict[str, object]:
        """Combined memory/disk statistics (JSON-ready, dashboard shape)."""
        with self._lock:
            memory = {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._segments),
                "capacity": self._memory_entries,
            }
        doc: Dict[str, object] = {"memory": memory}
        if self.store is not None:
            disk = self.store.stats()
            doc["disk"] = {
                "hits": disk.hits, "misses": disk.misses,
                "writes": disk.writes, "corrupt": disk.corrupt,
                "evictions": disk.evictions, "races": disk.races,
            }
        return doc

    def clear_memory(self) -> None:
        """Drop the memory tier and reset its counters (disk survives)."""
        with self._lock:
            self._segments.clear()
            self._hits = 0
            self._misses = 0


#: The process-wide segment cache the executor consults; ``None`` until
#: :func:`configure_segment_cache` opts the process in.
_SEGMENT_CACHE: Optional[SegmentCache] = None


def configure_segment_cache(
    path: Optional[Union[str, Path]] = None,
    memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    max_disk_entries: Optional[int] = None,
    min_disk_span: int = DEFAULT_MIN_DISK_SPAN,
) -> SegmentCache:
    """Install the process-wide segment tier.

    *path* mounts the persistent disk store (``None`` keeps a
    memory-only tier).  Once installed, ``engine.run`` / ``run_batch``
    route eligible chain requests through the segment path -- a pure
    configuration switch, never a cache-state-dependent one, so results
    stay bit-identical whichever tier serves them.
    """
    global _SEGMENT_CACHE
    store = (DiskSegmentStore(path, max_entries=max_disk_entries)
             if path is not None else None)
    _SEGMENT_CACHE = SegmentCache(store, memory_entries=memory_entries,
                                  min_disk_span=min_disk_span)
    return _SEGMENT_CACHE


def disable_segment_cache() -> None:
    """Uninstall the process-wide segment tier (disk entries survive)."""
    global _SEGMENT_CACHE
    _SEGMENT_CACHE = None


def get_segment_cache() -> Optional[SegmentCache]:
    """The installed process-wide segment cache, or ``None``."""
    return _SEGMENT_CACHE


def export_config(cache: Optional[SegmentCache]) -> Optional[Dict[str, object]]:
    """Wire form of an installed cache's *configuration* (not contents)
    for worker processes; see :func:`ensure_worker_cache`."""
    if cache is None:
        return None
    return {
        "path": str(cache.store.root) if cache.store is not None else None,
        "memory_entries": cache._memory_entries,
        "max_disk_entries": (cache.store.max_entries
                             if cache.store is not None else None),
        "min_disk_span": cache.min_disk_span,
    }


def ensure_worker_cache(doc: Optional[Dict[str, object]]) -> None:
    """Install a segment cache in a worker from :func:`export_config`.

    Fork workers inherit the parent's installed cache and need nothing;
    spawn workers start clean, and without this the worker would fall
    back to the float path while the parent used the exact segment path
    -- a bit-identity break across start methods.  Idempotent.
    """
    if doc is None or _SEGMENT_CACHE is not None:
        return
    configure_segment_cache(
        doc.get("path"),  # type: ignore[arg-type]
        memory_entries=int(doc.get("memory_entries",
                                   DEFAULT_MEMORY_ENTRIES)),  # type: ignore[arg-type]
        max_disk_entries=doc.get("max_disk_entries"),  # type: ignore[arg-type]
        min_disk_span=int(doc.get("min_disk_span",
                                  DEFAULT_MIN_DISK_SPAN)),  # type: ignore[arg-type]
    )
