"""Persistent result cache: the disk tier under the stage-matrix LRU.

The stage-matrix cache (:mod:`repro.engine.cache`) amortises the *inner*
recursion work but dies with the process, so a service answering the
same handful of analytical questions thousands of times per design loop
re-derives every answer after each restart.  This module adds the outer
tier: a content-addressed on-disk store of finished
:class:`~repro.engine.request.AnalysisResult` values, fronted by a small
in-memory LRU, shared across processes and restarts.

Keying follows the stage-matrix convention -- the truth-table
fingerprint of every cell in the chain plus the
:data:`~repro.engine.cache.QUANT_DIGITS`-quantised probability vectors
-- hashed to one SHA-256 content address.  Only deterministic, exact,
non-truncated analytical chain answers are stored (the executor consults
:attr:`EngineInfo.deterministic <repro.engine.registry.EngineInfo>`), so
a hit is always bit-identical to a recompute on the same code version.

Entries are one JSON file each, written atomically through the
:func:`repro.io.atomic_write_text` primitive (temp file + ``os.replace``
in the same directory), which makes concurrent multi-process writers
safe by construction: readers observe either the old complete entry or
the new complete entry, never a torn one.  The read path is
corruption-tolerant -- a truncated, garbage or wrong-key entry is
counted under ``engine.cache.disk.corrupt``, deleted best-effort and
treated as a miss, never raised.

Any number of processes may prune and unlink concurrently: an entry
that vanishes underneath a ``stat``/``unlink`` (another pruner got
there first) is tolerated and counted under
``engine.cache.disk.races`` -- never raised.

Obs metrics:
``engine.cache.disk.{hits,misses,writes,corrupt,evictions,races}``
counters and the ``engine.cache.disk.entries`` gauge for the disk tier;
``engine.cache.result.{hits,misses}`` and ``engine.cache.result.size``
for the in-memory result LRU in front of it.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs import metrics as _metrics
from ..runtime import chaos as _chaos
from .cache import QUANT_DIGITS
from .request import (
    DISTRIBUTION_KINDS,
    KIND_CHAIN,
    AnalysisRequest,
    AnalysisResult,
)

#: On-disk entry document format tag (bump on incompatible layout change;
#: old-format entries then read as corrupt -> miss -> rewrite).
STORE_FORMAT = "sealpaa-diskcache-v1"

#: Default capacity of the in-memory result LRU fronting the disk tier.
DEFAULT_MEMORY_ENTRIES = 4096

#: Writes between opportunistic disk-eviction scans (scans are O(entries)).
_PRUNE_EVERY = 256

#: Result fields that round-trip through an entry payload.
_PAYLOAD_FIELDS = (
    "p_error", "p_success", "engine", "exact", "width", "kind",
    "cell_names", "is_upper_bound",
)

#: Error-magnitude fields stored when present (``None`` values are
#: omitted, so plain P(error) entries keep their original shape and old
#: entries stay readable).
_MAGNITUDE_FIELDS = ("med", "nmed", "mse", "wce", "mred", "bias")

#: Request kinds the cache can address (chain-shaped operands whose
#: answer is a pure function of the request).
_CACHEABLE_KINDS = (KIND_CHAIN,) + DISTRIBUTION_KINDS


def request_key(request: AnalysisRequest) -> Optional[str]:
    """Content address of a cacheable request, or ``None``.

    Plain analytical chain questions and the error-magnitude kinds
    (:data:`~repro.engine.request.DISTRIBUTION_KINDS`) are addressable:
    both are pure functions of ``(kind, cells, operand probabilities)``.
    Correlated (``joints``) and traced requests depend on state the
    payload cannot carry, and GeAr/multiop kinds keep their own native
    result shapes.  ``check_masking`` is part of the identity because
    it decides the stored ``is_upper_bound`` flag; ``kind`` is part of
    the hashed document, so a ``med`` answer can never replay to a
    ``wce`` question over the same chain.
    """
    if (request.kind not in _CACHEABLE_KINDS or request.joints is not None
            or request.keep_trace):
        return None
    if request.block is not None:
        # Windowed-block (zoo) questions: the spec's structure is the
        # identity (zoo adders always add with carry-in 0).
        doc: Dict[str, object] = {
            "format": STORE_FORMAT,
            "kind": request.kind,
            "block": {
                "name": request.block.name,  # type: ignore[attr-defined]
                "lows": list(request.block.lows),  # type: ignore[attr-defined]
                "carry_low": request.block.carry_low,  # type: ignore[attr-defined]
            },
            "p_a": [round(float(p), QUANT_DIGITS) for p in request.p_a],
            "p_b": [round(float(p), QUANT_DIGITS) for p in request.p_b],
            "check_masking": bool(request.check_masking),
        }
    elif not request.cells:
        return None
    else:
        doc = {
            "format": STORE_FORMAT,
            "kind": request.kind,
            "cells": [list(map(list, table.rows))
                      for table in request.cells],
            "p_a": [round(float(p), QUANT_DIGITS) for p in request.p_a],
            "p_b": [round(float(p), QUANT_DIGITS) for p in request.p_b],
            "p_cin": round(float(request.p_cin), QUANT_DIGITS),
            "check_masking": bool(request.check_masking),
        }
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def payload_from_result(result: AnalysisResult) -> Dict[str, object]:
    """The JSON-safe subset of a result an entry stores."""
    payload = {name: getattr(result, name) for name in _PAYLOAD_FIELDS}
    payload["cell_names"] = list(result.cell_names)
    for name in _MAGNITUDE_FIELDS:
        value = getattr(result, name)
        if value is not None:
            payload[name] = value
    if result.distribution is not None:
        payload["distribution"] = [
            [delta, prob] for delta, prob in result.distribution
        ]
    return payload


def result_from_payload(payload: Dict[str, object]) -> AnalysisResult:
    """Rebuild an :class:`AnalysisResult` from a stored payload."""
    magnitude: Dict[str, object] = {}
    for name in _MAGNITUDE_FIELDS:
        value = payload.get(name)
        if value is not None:
            magnitude[name] = float(value)  # type: ignore[arg-type]
    pairs = payload.get("distribution")
    if pairs is not None:
        magnitude["distribution"] = tuple(
            (int(delta), float(prob)) for delta, prob in pairs  # type: ignore[union-attr]
        )
    return AnalysisResult(
        p_error=float(payload["p_error"]),          # type: ignore[arg-type]
        p_success=float(payload["p_success"]),      # type: ignore[arg-type]
        engine=str(payload["engine"]),
        exact=bool(payload["exact"]),
        width=int(payload["width"]),                # type: ignore[arg-type]
        kind=str(payload.get("kind", KIND_CHAIN)),
        cell_names=tuple(payload.get("cell_names") or ()),  # type: ignore[arg-type]
        is_upper_bound=bool(payload.get("is_upper_bound", False)),
        **magnitude,  # type: ignore[arg-type]
    )


def _validate_payload(payload: object) -> Dict[str, object]:
    """Schema check: raises ``ValueError`` on anything malformed."""
    if not isinstance(payload, dict):
        raise ValueError("payload is not an object")
    for name in _PAYLOAD_FIELDS:
        if name not in payload:
            raise ValueError(f"payload misses field {name!r}")
    for name in ("p_error", "p_success"):
        value = payload[name]
        if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
            raise ValueError(f"payload {name} out of [0,1]: {value!r}")
    for name in _MAGNITUDE_FIELDS:
        if name in payload and not isinstance(payload[name], (int, float)):
            raise ValueError(f"payload {name} is not a number")
    pairs = payload.get("distribution")
    if pairs is not None:
        if not isinstance(pairs, list) or any(
            not isinstance(pair, list) or len(pair) != 2
            or not isinstance(pair[0], int)
            or not isinstance(pair[1], (int, float))
            for pair in pairs
        ):
            raise ValueError("payload distribution is not a PMF pair list")
    return payload


@dataclass(frozen=True)
class DiskStoreStats:
    """Point-in-time disk-tier statistics (also exported via obs)."""

    hits: int
    misses: int
    writes: int
    corrupt: int
    evictions: int
    #: Cross-process races survived: an entry another process deleted
    #: between our listing/probing it and our stat/unlink of it.
    races: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DiskResultStore:
    """Content-addressed result entries under one root directory.

    Layout: ``<root>/<key[:2]>/<key>.json`` -- two-level fan-out keeps
    directory listings short at hundreds of thousands of entries.  All
    mutation goes through atomic whole-file replacement, so any number
    of processes may read and write one store concurrently.

    The store machinery (atomic writes, corruption-tolerant reads,
    concurrent pruning, race accounting) is payload-agnostic; subclasses
    override :attr:`store_format` / :attr:`metric_prefix` and
    :meth:`validate_payload` to persist other entry shapes under the
    same guarantees (:class:`repro.engine.segcache.DiskSegmentStore`).
    """

    #: Format tag embedded in every entry (wrong tag reads as corrupt).
    store_format = STORE_FORMAT
    #: Obs counter prefix (``<prefix>.{hits,misses,writes,...}``).
    metric_prefix = "engine.cache.disk"

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0
        self._evictions = 0
        self._races = 0

    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _count(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, f"_{field}", getattr(self, f"_{field}") + n)
        if _metrics.is_enabled():
            _metrics.inc(f"{self.metric_prefix}.{field}", n)

    @staticmethod
    def validate_payload(payload: object) -> Dict[str, object]:
        """Schema hook: raise ``ValueError`` on a malformed payload."""
        return _validate_payload(payload)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for *key*, or ``None`` (miss).

        Every failure mode of the read path -- unreadable file, invalid
        JSON, wrong format tag, wrong embedded key, malformed payload --
        degrades to a miss; a corrupt entry is additionally deleted
        (best-effort) so the slot is rewritten on the next ``put``.
        """
        path = self.entry_path(key)
        try:
            _chaos.cache_read_check(str(path))
            raw = path.read_bytes()
        except OSError:
            self._count("misses")
            return None
        try:
            doc = json.loads(raw.decode())
            if not isinstance(doc, dict) \
                    or doc.get("format") != self.store_format:
                raise ValueError(f"not a {self.store_format} document")
            if doc.get("key") != key:
                raise ValueError("entry key does not match its address")
            payload = self.validate_payload(doc.get("payload"))
        except (ValueError, TypeError, KeyError):
            self._count("corrupt")
            self._count("misses")
            try:
                os.unlink(path)
            except FileNotFoundError:
                # Another process unlinked the corrupt entry between our
                # read and our delete -- the outcome we wanted anyway.
                self._count("races")
            except OSError:
                pass
            return None
        self._count("hits")
        return payload

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Store *payload* under *key* (atomic whole-file replace)."""
        from ..io import atomic_write_text

        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"format": self.store_format, "key": key, "payload": payload}
        atomic_write_text(path, json.dumps(doc, sort_keys=True) + "\n")
        self._count("writes")
        if _metrics.is_enabled():
            _metrics.set_gauge(f"{self.metric_prefix}.entries",
                               self.entry_count())
        if self.max_entries is not None and self._writes % _PRUNE_EVERY == 0:
            self.prune()

    def entry_count(self) -> int:
        """Number of entry files currently on disk."""
        return sum(1 for _ in self.root.glob("??/*.json"))

    def list_keys(self, newest_first: bool = False) -> List[str]:
        """Content keys of every entry on disk, ordered by mtime.

        Drives warm-start prefill (newest first fills a bounded memory
        tier with the most recently touched segments).  Entries deleted
        underneath the listing are simply skipped.
        """
        entries = []
        for path in self.root.glob("??/*.json"):
            try:
                entries.append((path.stat().st_mtime, path.stem))
            except OSError:
                continue
        entries.sort(reverse=newest_first)
        return [key for _, key in entries]

    def prune(self, max_entries: Optional[int] = None) -> int:
        """Evict oldest entries (by mtime) beyond *max_entries*.

        Concurrent pruners and writers are tolerated: an entry deleted
        underneath us -- between listing and ``stat``, or between
        ``stat`` and ``unlink`` -- is skipped and counted under
        ``races``, never raised.  Returns the eviction count.
        """
        limit = max_entries if max_entries is not None else self.max_entries
        if limit is None:
            return 0
        entries = []
        races = 0
        for path in self.root.glob("??/*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except FileNotFoundError:
                races += 1
            except OSError:
                continue
        excess = len(entries) - limit
        evicted = 0
        if excess > 0:
            entries.sort(key=lambda item: item[0])
            for _, path in entries[:excess]:
                try:
                    os.unlink(path)
                    evicted += 1
                except FileNotFoundError:
                    # A concurrent pruner beat us to this entry; its
                    # eviction is already counted in that process.
                    races += 1
                except OSError:
                    continue
        if races:
            self._count("races", races)
        if evicted:
            self._count("evictions", evicted)
        return evicted

    def clear(self) -> None:
        """Delete every entry (counters are kept: they describe the run)."""
        for path in self.root.glob("??/*.json"):
            try:
                os.unlink(path)
            except OSError:
                pass

    def stats(self) -> DiskStoreStats:
        with self._lock:
            return DiskStoreStats(
                hits=self._hits, misses=self._misses, writes=self._writes,
                corrupt=self._corrupt, evictions=self._evictions,
                races=self._races,
            )


class ResultCache:
    """Two-tier result cache: in-memory LRU over a :class:`DiskResultStore`.

    ``get_result`` walks memory -> disk -> miss; a disk hit is promoted
    into the memory tier, and ``put_result`` writes through both.  The
    disk tier is optional (``store=None`` gives a process-local result
    LRU only), which is how tests exercise the tiers independently.
    """

    def __init__(
        self,
        store: Optional[DiskResultStore] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        if memory_entries < 0:
            raise ValueError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        self.store = store
        self._memory_entries = memory_entries
        self._memory = OrderedDict()  # type: OrderedDict[str, AnalysisResult]
        self._lock = threading.Lock()
        self._memory_hits = 0
        self._memory_misses = 0

    def get_result(self, request: AnalysisRequest) -> Optional[AnalysisResult]:
        """Cached answer for *request*, or ``None``."""
        key = request_key(request)
        if key is None:
            return None
        return self.get_by_key(key)

    def get_by_key(self, key: str) -> Optional[AnalysisResult]:
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                self._memory.move_to_end(key)
                self._memory_hits += 1
            else:
                self._memory_misses += 1
        if result is not None:
            if _metrics.is_enabled():
                _metrics.inc("engine.cache.result.hits")
            return result
        if _metrics.is_enabled():
            _metrics.inc("engine.cache.result.misses")
        if self.store is None:
            return None
        payload = self.store.get(key)
        if payload is None:
            return None
        result = result_from_payload(payload)
        self._remember(key, result)
        return result

    def put_result(self, request: AnalysisRequest,
                   result: AnalysisResult) -> bool:
        """Write-through store of one finished answer.

        Returns ``False`` (and stores nothing) for requests outside the
        cacheable subset or answers that must not be replayed: inexact,
        truncated, or produced by a non-deterministic engine.
        """
        key = request_key(request)
        if key is None or not cacheable_result(result):
            return False
        self._remember(key, result)
        if self.store is not None:
            self.store.put(key, payload_from_result(result))
        return True

    def _remember(self, key: str, result: AnalysisResult) -> None:
        if not self._memory_entries:
            return
        with self._lock:
            self._memory[key] = result
            self._memory.move_to_end(key)
            while len(self._memory) > self._memory_entries:
                self._memory.popitem(last=False)
            size = len(self._memory)
        if _metrics.is_enabled():
            _metrics.set_gauge("engine.cache.result.size", size)

    def stats(self) -> Dict[str, object]:
        """Combined memory/disk statistics (JSON-ready)."""
        with self._lock:
            memory = {
                "hits": self._memory_hits,
                "misses": self._memory_misses,
                "size": len(self._memory),
                "capacity": self._memory_entries,
            }
        doc: Dict[str, object] = {"memory": memory}
        if self.store is not None:
            disk = self.store.stats()
            doc["disk"] = {
                "hits": disk.hits, "misses": disk.misses,
                "writes": disk.writes, "corrupt": disk.corrupt,
                "evictions": disk.evictions, "races": disk.races,
            }
        return doc

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries survive -- that is the point)."""
        with self._lock:
            self._memory.clear()


def cacheable_result(result: AnalysisResult) -> bool:
    """May *result* be replayed to a future identical request?

    Exact, non-truncated, and produced by an engine the registry marks
    ``deterministic`` (analytical recursions; never Monte-Carlo, whose
    answer depends on seed and sample budget).
    """
    from .registry import REGISTRY

    if not result.exact or result.truncated:
        return False
    if result.engine not in REGISTRY:
        return False
    return REGISTRY.get(result.engine).deterministic


#: The process-wide result cache consulted by the executor; ``None``
#: until :func:`configure_result_cache` opts the process in.
_RESULT_CACHE: Optional[ResultCache] = None


def configure_result_cache(
    path: Optional[Union[str, Path]] = None,
    memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    max_disk_entries: Optional[int] = None,
) -> ResultCache:
    """Install the process-wide two-tier result cache.

    *path* is the disk-store root (``None`` keeps a memory-only tier).
    The executor starts consulting the cache on every plain analytical
    chain request; call :func:`disable_result_cache` to uninstall.
    """
    global _RESULT_CACHE
    store = (DiskResultStore(path, max_entries=max_disk_entries)
             if path is not None else None)
    _RESULT_CACHE = ResultCache(store, memory_entries=memory_entries)
    return _RESULT_CACHE


def disable_result_cache() -> None:
    """Uninstall the process-wide result cache (entries stay on disk)."""
    global _RESULT_CACHE
    _RESULT_CACHE = None


def get_result_cache() -> Optional[ResultCache]:
    """The installed process-wide result cache, or ``None``."""
    return _RESULT_CACHE
