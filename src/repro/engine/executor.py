"""Batch-first execution core: ``run`` / ``run_batch`` / ``error_curves``.

``run`` is the single analysis entry point the CLI, ``explore/``,
``gear/``, ``multiop/`` and ``apps/`` call.  Engine selection is
registry-driven: analytical questions default to the cheapest capable
exact engine; ``simulate=True`` walks the
:mod:`repro.runtime.router` degradation ladder (exhaustive -> chunked ->
Monte-Carlo), which itself reads cost estimates and width limits from
the registry and stamps ``degraded_from`` provenance.

``run_batch`` turns N requests into as few vectorised
``analyze_batch`` calls as possible: chain requests sharing a cell
sequence are stacked into one ``(batch, width)`` grid, chunked at
:data:`BATCH_CHUNK` rows with a :class:`~repro.runtime.budget.BudgetMeter`
checked between chunks.  ``engine.batch.*`` obs counters report group
count and vectorised occupancy; ``engine.cache.*`` the stage-matrix
cache hit rate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import AnalysisError
from ..obs import metrics as _metrics
from ..obs.log import get_logger, log_event
from ..obs.tracing import trace_span
from ..runtime.budget import RunBudget, make_meter
from ..runtime.router import (
    EngineDecision,
    plan_distribution_engine,
    plan_engine,
    plan_zoo_engine,
)
from . import backends
from . import diskcache as _diskcache
from . import segcache as _segcache
from .cache import mask_arrays
from .registry import FAMILY_ANALYTICAL, REGISTRY
from .request import (
    DISTRIBUTION_KINDS,
    KIND_CHAIN,
    KIND_GEAR,
    KIND_MULTIOP,
    AnalysisRequest,
    AnalysisResult,
)

#: Rows per vectorised chunk in ``run_batch``; budget checks happen at
#: chunk boundaries (the library-wide cooperative-cancellation idiom).
BATCH_CHUNK = 1024

#: Case guard for the exact multi-operand enumerator (mirrors
#: ``multi_operand_error_exact``'s default ``max_cases``).
_MULTIOP_EXACT_CASES = 1 << 22

_logger = get_logger("engine.executor")

backends.register_builtin_engines()


def _segment_eligible(request: AnalysisRequest) -> bool:
    """Should *request* route through the installed segment tier?

    True only when a process-wide segment cache is configured
    (:func:`repro.engine.segcache.configure_segment_cache`) and the
    request is a plain chain question: per-stage Table 4 traces
    (``keep_trace``) force the stage-by-stage recursion, and joint
    operand laws need the correlated engine.
    """
    return (
        _segcache.get_segment_cache() is not None
        and request.kind == KIND_CHAIN
        and request.joints is None
        and not request.keep_trace
        and request.block is None
    )


def select_engine(
    request: AnalysisRequest,
    budget: Optional[RunBudget] = None,
    samples: Optional[int] = None,
) -> EngineDecision:
    """Pick an engine for *request* from the registry.

    Analytical chain/GeAr questions take the cheapest capable exact
    analytical engine.  Multi-operand questions degrade from exact
    enumeration to Monte-Carlo when the case count exceeds the
    enumerator's guard, recording ``degraded_from``.  Error-magnitude
    questions (:data:`~repro.engine.request.DISTRIBUTION_KINDS`) walk
    their own ladder,
    :func:`repro.runtime.router.plan_distribution_engine`.
    """
    if request.block is not None:
        # Windowed-block (zoo) questions have their own ladder over the
        # zoo-* engines, whatever the kind.
        return plan_zoo_engine(request, budget, samples)
    if request.kind in DISTRIBUTION_KINDS:
        return plan_distribution_engine(request, budget, samples)
    if request.kind == KIND_MULTIOP:
        cases = 1 << (len(request.operands) * request.width)
        if cases <= _MULTIOP_EXACT_CASES:
            return EngineDecision(
                engine="multiop-exact",
                reason=f"{cases} operand combinations are enumerable",
                estimated_cases=cases,
            )
        info = REGISTRY.get("multiop-mc")
        return EngineDecision(
            engine="multiop-mc",
            reason=f"{cases} operand combinations exceed the exact "
                   f"enumerator's guard ({_MULTIOP_EXACT_CASES})",
            degraded_from="multiop-exact",
            estimated_cases=cases,
            samples=samples or info.default_samples,
        )
    if request.joints is not None:
        return EngineDecision(
            engine="correlated",
            reason="per-stage joint operand laws require the "
                   "correlated engine",
        )
    # Installed segment tier: eligible chain questions take the exact
    # O(log N) prefix-cached path.  Eligibility depends only on request
    # shape and process configuration -- never on cache contents -- so
    # warm and cold runs select identically (and the transfer core's
    # exactness makes the answer cache-independent anyway).
    if _segment_eligible(request):
        return EngineDecision(
            engine="transfer",
            reason="segment cache installed: exact O(log N) "
                   "prefix-cached path",
        )
    candidates = REGISTRY.for_request(
        request, family=FAMILY_ANALYTICAL, exact=True
    )
    if not candidates:
        raise AnalysisError(
            f"no analytical engine accepts this {request.kind!r} request"
        )
    info = candidates[0]
    return EngineDecision(
        engine=info.name,
        reason=f"cheapest exact analytical engine for width {request.width}",
    )


def run(
    cell: object = None,
    width: Optional[int] = None,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: float = 0.5,
    *,
    request: Optional[AnalysisRequest] = None,
    engine: Optional[str] = None,
    simulate: bool = False,
    budget: Optional[RunBudget] = None,
    samples: Optional[int] = None,
    seed: Optional[int] = 0,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[object] = None,
    joints: Optional[Sequence[object]] = None,
    keep_trace: bool = False,
    jobs: object = None,
    kind: Optional[str] = None,
) -> AnalysisResult:
    """Answer one analysis question through the registry.

    Accepts either a prebuilt :class:`AnalysisRequest` (via *request*,
    or as the first positional argument) or the library-wide
    ``(cell, width, p_a, p_b, p_cin)`` convention.  *engine* forces a
    registered backend by name; ``simulate=True`` asks for a simulation
    answer routed down the budget-aware degradation ladder instead of
    the analytical default.  *jobs* (``"auto"`` or a worker count)
    offers the router a process pool: an exhaustive enumeration that
    would overrun the deadline on one core may then run sharded as
    ``parallel-exhaustive`` instead of degrading to Monte-Carlo.

    *kind* switches the question itself: one of
    :data:`~repro.engine.request.DISTRIBUTION_KINDS`
    (``"error_distribution"`` / ``"med"`` / ``"mred"`` / ``"wce"``)
    asks for the error's *magnitude* law over the same chain operands
    -- the answer lands in the result's ``med``/``wce``/``mred``/...
    fields.  Default (``None``) keeps the plain P(error) question.
    """
    from . import parallel as _parallel

    if request is None and isinstance(cell, AnalysisRequest):
        request, cell = cell, None
    if request is None:
        if cell is None:
            raise AnalysisError("run() needs a cell spec or a request")
        if kind is not None and kind != KIND_CHAIN:
            if kind not in DISTRIBUTION_KINDS:
                raise AnalysisError(
                    f"run(kind=...) understands {KIND_CHAIN!r} and "
                    f"{', '.join(repr(k) for k in DISTRIBUTION_KINDS)}; "
                    f"got {kind!r}"
                )
            if joints is not None or keep_trace:
                raise AnalysisError(
                    "distribution kinds do not support joints/keep_trace"
                )
            request = AnalysisRequest.distribution(
                cell, width, p_a, p_b, p_cin, kind=kind,
            )
        else:
            request = AnalysisRequest.chain(
                cell, width, p_a, p_b, p_cin,
                joints=joints, keep_trace=keep_trace,
            )
    elif kind is not None and kind != request.kind:
        raise AnalysisError(
            f"run(kind={kind!r}) conflicts with the prebuilt request's "
            f"kind {request.kind!r}"
        )

    # Persistent result cache (opt-in via diskcache.configure_result_cache):
    # consulted only for un-forced, un-checkpointed analytical questions,
    # so forced engines, simulations and resumable runs behave as before.
    result_cache = _diskcache.get_result_cache()
    use_result_cache = (
        result_cache is not None and engine is None and not simulate
        and checkpoint_path is None and not resume
    )
    if use_result_cache:
        cached = result_cache.get_result(request)
        if cached is not None:
            if _metrics.is_enabled():
                _metrics.inc("engine.requests")
                _metrics.inc("engine.selected.result-cache")
            return cached

    jobs_n = _parallel.resolve_jobs(jobs) if jobs is not None else 0
    decision: Optional[EngineDecision] = None
    if engine is None:
        if simulate:
            if request.block is not None:
                decision = EngineDecision(
                    engine="zoo-mc",
                    reason="simulate=True forces the sampling backend",
                )
            elif request.kind in DISTRIBUTION_KINDS:
                decision = EngineDecision(
                    engine="distribution-mc",
                    reason="simulate=True forces the sampling backend",
                )
            elif request.kind != KIND_CHAIN:
                raise AnalysisError(
                    "simulate=True routing applies to chain requests only"
                )
            else:
                decision = plan_engine(request.width, budget, samples,
                                       jobs=jobs_n or None)
        else:
            decision = select_engine(request, budget, samples)
        engine_name = decision.engine
        if decision.samples is not None and samples is None:
            samples = decision.samples
    else:
        engine_name = engine

    if engine_name == _parallel.PARALLEL_EXHAUSTIVE:
        # Sharded enumeration lives outside the registry: capability is
        # the exhaustive engine's, execution is the process pool's.
        if not REGISTRY.get("exhaustive").accepts(request):
            raise AnalysisError(
                f"engine {engine_name!r} cannot serve this request "
                f"(kind={request.kind}, width={request.width})"
            )
        with _metrics.timed("engine.run"), \
                _metrics.timed(f"engine.{engine_name}.seconds"), \
                trace_span("engine.run", engine=engine_name,
                           kind=request.kind, width=request.width):
            result = _parallel.parallel_exhaustive(
                request, jobs=jobs_n, budget=budget, progress=progress,
            )
        if _metrics.is_enabled():
            _metrics.inc("engine.requests")
            _metrics.inc(f"engine.selected.{engine_name}")
        if decision is not None:
            result = _stamp_decision(result, decision, engine_name)
            log_event(_logger, "engine.run", engine=engine_name,
                      kind=request.kind, width=request.width,
                      degraded_from=decision.degraded_from)
        return result

    # "chunked-exhaustive" is a routing refinement of the exhaustive
    # engine (same enumerator, block-wise); the registry runs it there.
    lookup = ("exhaustive" if engine_name == "chunked-exhaustive"
              else engine_name)
    info = REGISTRY.get(lookup)
    if not info.accepts(request):
        raise AnalysisError(
            f"engine {engine_name!r} cannot serve this request "
            f"(kind={request.kind}, width={request.width})"
        )

    # The per-backend timer attributes latency to the engine that ran
    # (engine.vectorized.seconds, engine.montecarlo.seconds, ...), so
    # the dashboard can tell a slow backend from a slow batch.
    with _metrics.timed("engine.run"), \
            _metrics.timed(f"engine.{engine_name}.seconds"), \
            trace_span("engine.run", engine=engine_name,
                       kind=request.kind, width=request.width):
        result = info.run(
            request, budget=budget, samples=samples, seed=seed,
            checkpoint_path=checkpoint_path, resume=resume,
            progress=progress, routed=bool(simulate),
        )
    if _metrics.is_enabled():
        _metrics.inc("engine.requests")
        _metrics.inc(f"engine.selected.{engine_name}")

    if decision is not None:
        result = _stamp_decision(result, decision, engine_name)
        log_event(_logger, "engine.run", engine=engine_name,
                  kind=request.kind, width=request.width,
                  degraded_from=decision.degraded_from)
    if use_result_cache:
        result_cache.put_result(request, result)
    return result


def _stamp_decision(
    result: AnalysisResult, decision: EngineDecision, engine_name: str
) -> AnalysisResult:
    """Fold routing provenance into the result (and its manifest)."""
    from dataclasses import replace as _replace

    raw = result.raw
    if decision.degraded_from is not None \
            and getattr(raw, "manifest", None) is not None:
        raw = _replace(
            raw, manifest=_replace(raw.manifest,
                                   degraded_from=decision.degraded_from),
        )
    return _replace(
        result, engine=engine_name, reason=decision.reason,
        degraded_from=decision.degraded_from, raw=raw,
    )


def run_batch(
    requests: Sequence[AnalysisRequest],
    budget: Optional[RunBudget] = None,
    *,
    parallelism: object = "off",
    engine: Optional[str] = None,
    simulate: bool = False,
    samples: Optional[int] = None,
    seed: Optional[int] = 0,
) -> List[Optional[AnalysisResult]]:
    """Answer N requests, vectorising wherever the backend allows.

    Chain requests that share a cell sequence (and need no trace or
    correlation handling) are stacked into one ``analyze_batch`` call
    over a ``(batch, width)`` grid, chunked at :data:`BATCH_CHUNK` rows;
    the *budget* is charged one config per request at chunk boundaries
    and a stop reason leaves the remaining entries ``None`` (the
    positions of completed requests always hold well-formed results).
    Everything else falls back to :func:`run` per request.

    ``parallelism`` (``"auto"``, a worker count, or ``"off"``) shards
    the grouped chunks across a process pool
    (:mod:`repro.engine.parallel`) with bit-identical results; budgets
    capping ``max_samples``/``max_cases`` keep the run serial so the
    caps stay exact.  *engine*/*simulate*/*samples*/*seed* force the
    same :func:`run` options onto every request (e.g. a Monte-Carlo
    sweep at a fixed seed) instead of the analytical default.
    """
    from . import parallel as _parallel

    jobs = _parallel.resolve_jobs(parallelism)
    if jobs and len(requests) > 1 \
            and _parallel.budget_allows_parallel(budget):
        return _parallel.run_batch_parallel(
            requests, budget=budget, jobs=jobs, engine=engine,
            simulate=simulate, samples=samples, seed=seed,
        )
    if engine is not None or simulate or samples is not None:
        # Forced options: every request is a single through run().
        forced: List[Optional[AnalysisResult]] = [None] * len(requests)
        forced_meter = make_meter(budget)
        with _metrics.timed("engine.run_batch"), \
                trace_span("engine.run_batch", requests=len(requests),
                           groups=0):
            for i, request in enumerate(requests):
                if forced_meter.stop_reason() is not None:
                    break
                forced[i] = run(
                    request=request, budget=budget, engine=engine,
                    simulate=simulate, samples=samples, seed=seed,
                )
                forced_meter.charge(configs=1)
        if _metrics.is_enabled():
            _metrics.get_registry().counter(
                "engine.batch.requests").add(len(requests))
        if forced_meter.stop_reason() is not None:
            log_event(_logger, "engine.run_batch.truncated",
                      reason=forced_meter.stop_reason(),
                      done=sum(r is not None for r in forced),
                      total=len(requests))
        return forced
    results: List[Optional[AnalysisResult]] = [None] * len(requests)
    result_cache = _diskcache.get_result_cache()
    cache_hits = 0
    groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
    singles: List[int] = []
    for i, request in enumerate(requests):
        if (request.kind == KIND_CHAIN and request.joints is None
                and not request.keep_trace and request.block is None):
            if result_cache is not None:
                cached = result_cache.get_result(request)
                if cached is not None:
                    results[i] = cached
                    cache_hits += 1
                    continue
            groups.setdefault(request.cells, []).append(i)
        else:
            singles.append(i)

    meter = make_meter(budget)
    stopped = False
    vector_points = 0
    segment_points = 0
    # An installed segment tier serves whole groups through the exact
    # prefix-cached path (grouped requests are segment-eligible by
    # construction: chain kind, no joints, no trace).  The choice is
    # process configuration, not cache state, so batches stay
    # deterministic whichever tier answers.
    segment_cache = _segcache.get_segment_cache()
    with _metrics.timed("engine.run_batch"), \
            trace_span("engine.run_batch", requests=len(requests),
                       groups=len(groups)):
        for cells, indices in groups.items():
            if stopped:
                break
            matrices = None if segment_cache is not None \
                else [mask_arrays(t) for t in cells]
            start = 0
            while start < len(indices):
                if meter.stop_reason() is not None:
                    stopped = True
                    break
                step = meter.remaining_configs(BATCH_CHUNK)
                if step == 0:
                    stopped = True
                    break
                chunk = indices[start:start + step]
                start += len(chunk)
                if segment_cache is not None:
                    cell_list = list(cells)
                    with _metrics.timed("engine.transfer.seconds"):
                        for i in chunk:
                            results[i] = backends._chain_result(
                                requests[i],
                                segment_cache.success_probability(
                                    cell_list, requests[i].p_a,
                                    requests[i].p_b, requests[i].p_cin,
                                ),
                                "transfer", True,
                            )
                            if result_cache is not None:
                                result_cache.put_result(requests[i],
                                                        results[i])
                    segment_points += len(chunk)
                    meter.charge(configs=len(chunk))
                    continue
                pa = np.array([requests[i].p_a for i in chunk])
                pb = np.array([requests[i].p_b for i in chunk])
                pc = np.array([requests[i].p_cin for i in chunk])
                from ..core.vectorized import analyze_batch

                with _metrics.timed("engine.vectorized.seconds"):
                    p_success = analyze_batch(
                        list(cells), None, pa, pb, pc,
                        batch=len(chunk), matrices=matrices,
                    )
                for j, i in enumerate(chunk):
                    results[i] = backends._chain_result(
                        requests[i], float(p_success[j]), "vectorized", True
                    )
                    if result_cache is not None:
                        result_cache.put_result(requests[i], results[i])
                vector_points += len(chunk)
                meter.charge(configs=len(chunk))
        for i in singles:
            if meter.stop_reason() is not None:
                stopped = True
                break
            results[i] = run(request=requests[i], budget=budget)
            meter.charge(configs=1)

    if _metrics.is_enabled():
        registry = _metrics.get_registry()
        registry.counter("engine.batch.requests").add(len(requests))
        registry.counter("engine.batch.groups").add(len(groups))
        registry.counter("engine.batch.vectorized_points").add(vector_points)
        if segment_points:
            registry.counter("engine.batch.segment_points").add(
                segment_points)
        if cache_hits:
            registry.counter("engine.batch.result_cache_hits").add(cache_hits)
        if requests:
            # Occupancy = share of requests served batch-grouped (by the
            # vectorised grid or the segment tier) rather than one-by-one.
            _metrics.set_gauge("engine.batch.occupancy",
                               (vector_points + segment_points)
                               / len(requests))
    if stopped:
        log_event(_logger, "engine.run_batch.truncated",
                  reason=meter.stop_reason(),
                  done=sum(r is not None for r in results),
                  total=len(requests))
    return results


def error_curves(
    cell: object,
    max_width: int,
    p: object = 0.5,
    p_cin: object = 0.5,
    parallelism: object = "off",
) -> np.ndarray:
    """``P(Error)`` of a uniform chain for every width ``1..max_width``.

    The engine-layer replacement for the deprecated
    ``core.vectorized.error_by_width``: one vectorised recursion pass
    reports every prefix width (optionally over a batch of probability
    points at once -- scalar *p* gives ``(max_width,)``, a ``(batch,)``
    *p* gives ``(batch, max_width)``).  With ``parallelism`` enabled a
    batched *p* is sliced across worker processes and re-concatenated
    (the recursion is elementwise along the batch axis, so the rows are
    bit-identical either way); a scalar *p* always runs serially.
    """
    from ..core.recursive import resolve_chain
    from ..core.vectorized import success_by_width
    from . import parallel as _parallel

    table = resolve_chain(cell, 1)[0]
    jobs = _parallel.resolve_jobs(parallelism)
    if jobs and np.ndim(p) == 1 and np.shape(p)[0] > 1:
        return _parallel.error_curves_parallel(
            table, max_width, p, p_cin, jobs
        )
    with trace_span("engine.error_curves", max_width=max_width):
        return 1.0 - success_by_width(table, max_width, p, p_cin)
