"""Process-pool fan-out for the batch-first engine layer.

PR 3 made every analysis question a frozen, hashable
:class:`~repro.engine.request.AnalysisRequest` and taught
``run_batch()`` to group them by cell sequence -- which makes sweeps
embarrassingly parallel.  This module is the multi-core half of that
story: ``run_batch(parallelism=...)`` and
``error_curves(parallelism=...)`` shard their grouped request chunks
across a :class:`~concurrent.futures.ProcessPoolExecutor` and merge the
pieces back as if the run had been serial.

Design points (see ``docs/parallelism.md`` for the full narrative):

* **Serialisation boundary** -- workers receive only truth-table
  fingerprints (the eight ``(sum, cout)`` rows plus the cell name) and
  plain float probability vectors.  Stage matrices, transitions and
  NumPy grids are never pickled; each worker rebuilds them through its
  own process-local stage-matrix cache.
* **Bit identity** -- a worker chunk re-enters the very same serial
  code path (``executor.run_batch`` for analytical groups,
  ``executor.run`` for forced-engine singles), so per-request results
  are bit-identical to a serial run, and Monte-Carlo stays seed-stable
  (same manifest fingerprints, same Wilson intervals).
* **Work stealing** -- requests are cut into many more chunks than
  workers (:data:`OVERSUBSCRIBE` per worker), so an uneven chunk cannot
  idle the pool; the executor's queue is the work-stealing deque.
* **Cache merging** -- each chunk reports its stage-matrix LRU
  hit/miss delta; the parent folds it into the process-wide cache via
  :meth:`~repro.engine.cache.StageMatrixCache.merge_stats`, keeping the
  ``engine.cache.*`` counters whole-run-accurate.
* **Budgets** -- deadlines are enforced cooperatively: every chunk
  carries a derived deadline-only budget, and the parent cancels
  pending chunks the moment its own meter expires, so overshoot is
  bounded by one chunk.  ``max_configs`` is admission-controlled in the
  parent.  Budgets capping ``max_samples``/``max_cases`` meter *global*
  totals that independent workers cannot coordinate on, so those runs
  stay serial (:func:`budget_allows_parallel`).
* **Ctrl-C** -- a ``KeyboardInterrupt`` tears the pool down without
  waiting (pending chunks cancelled) and re-raises, preserving the
  PR 2 contract: the CLI flushes checkpoints and exits 130.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import AnalysisError
from ..obs import metrics as _metrics
from ..obs.log import get_logger, log_event
from ..obs.tracing import get_tracer, graft_spans, trace_span
from ..runtime.budget import (
    STOP_MAX_CASES,
    RunBudget,
    make_meter,
)
from . import segcache as _segcache
from .cache import GLOBAL_CACHE
from .registry import REGISTRY
from .request import KIND_CHAIN, AnalysisRequest, AnalysisResult

#: Engine name the router/executor use for sharded exhaustive enumeration.
PARALLEL_EXHAUSTIVE = "parallel-exhaustive"

#: Chunks submitted per worker: the work-stealing granularity.  More
#: chunks than workers lets fast workers drain the queue while a slow
#: chunk finishes; 4x keeps per-chunk serialisation overhead negligible.
OVERSUBSCRIBE = 4

_logger = get_logger("engine.parallel")


def resolve_jobs(parallelism: object = "auto") -> int:
    """Normalise a ``parallelism`` option to a worker count.

    ``"off"`` / ``None`` / ``0`` / ``1`` mean serial (returns 0);
    ``"auto"`` uses :func:`os.cpu_count`; an integer asks for exactly
    that many workers.  A resolved count below 2 is serial -- a pool of
    one worker only adds IPC overhead.
    """
    if parallelism in ("off", None, False, 0, 1):
        return 0
    if parallelism == "auto":
        n = os.cpu_count() or 1
    else:
        try:
            n = int(parallelism)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise AnalysisError(
                f"parallelism must be 'auto', 'off' or an int, "
                f"got {parallelism!r}"
            ) from None
        if n < 0:
            raise AnalysisError(
                f"parallelism must be >= 0, got {n}"
            )
    return 0 if n < 2 else n


def budget_allows_parallel(budget: Optional[RunBudget]) -> bool:
    """Whether *budget* can be enforced across workers.

    Deadlines (derived per-chunk budgets + parent-side cancellation)
    and ``max_configs`` (parent-side admission control) parallelise;
    ``max_samples`` / ``max_cases`` meter global totals that
    independent workers cannot see, so those runs must stay serial to
    keep the cap exact.
    """
    return budget is None or (
        budget.max_samples is None and budget.max_cases is None
    )


def _cells_payload(
    cells: Sequence[object],
) -> Tuple[Tuple[tuple, str], ...]:
    """The serialisation boundary: fingerprint rows + name per cell."""
    return tuple((t.rows, t.name) for t in cells)  # type: ignore[attr-defined]


def _rebuild_cells(payload: Sequence[Tuple[tuple, str]]):
    from ..core.truth_table import FullAdderTruthTable

    return tuple(FullAdderTruthTable(rows, name) for rows, name in payload)


def _worker_budget(
    budget: Optional[RunBudget], meter
) -> Optional[RunBudget]:
    """Deadline-only budget covering exactly the time left (or None)."""
    if budget is None:
        return None
    remaining = meter.remaining_seconds()
    if remaining is None and budget.memory_hint_mb is None:
        return None
    kwargs: Dict[str, object] = {}
    if remaining is not None:
        # An expired deadline still ships a (tiny) positive value so the
        # worker's first chunk-boundary check stops it immediately.
        kwargs["deadline_s"] = max(remaining, 1e-9)
    if budget.memory_hint_mb is not None:
        kwargs["memory_hint_mb"] = budget.memory_hint_mb
    return RunBudget(**kwargs)  # type: ignore[arg-type]


def _make_pool(jobs: int) -> ProcessPoolExecutor:
    import multiprocessing as mp

    if "fork" in mp.get_all_start_methods():
        ctx = mp.get_context("fork")
    else:  # spawn platforms re-import repro in the worker; also fine
        ctx = mp.get_context()
    return ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)


# -- worker-side entry points (module-level: must pickle) ----------------------


def _run_chunk(payload: Dict[str, object]) -> Dict[str, object]:
    """Execute one chunk of chain requests in a worker process.

    Rebuilds the requests from fingerprints + probability vectors, then
    re-enters the *serial* executor -- ``run_batch`` for analytical
    groups, ``run`` per request when engine/simulate options are forced
    -- so results are bit-identical to a serial run.  Returns results
    plus the chunk's stage-matrix cache delta, its metric-registry delta
    and (optionally) its span trees for parent-side merging.
    """
    from contextlib import ExitStack

    from ..obs.correlate import use_request_id
    from ..obs.tracing import Tracer, use_tracer
    from . import executor

    t0 = time.perf_counter()
    cells = _rebuild_cells(payload["cells"])  # type: ignore[arg-type]
    budget = (RunBudget.from_dict(payload["budget"])  # type: ignore[arg-type]
              if payload.get("budget") else None)
    options: Dict[str, object] = payload.get("options") or {}  # type: ignore[assignment]
    requests = [
        AnalysisRequest.chain(cells, None, pa, pb, pcin,
                              check_masking=masking)
        for pa, pb, pcin, masking in payload["points"]  # type: ignore[union-attr]
    ]
    # Spawn workers start without the parent's process-wide segment
    # cache; installing it from the shipped config keeps the engine
    # choice (and hence provenance) identical across start methods.
    # Fork workers inherit the parent's cache and this is a no-op.
    _segcache.ensure_worker_cache(payload.get("segcache"))  # type: ignore[arg-type]
    seg_cache = _segcache.get_segment_cache()
    seg_before = (seg_cache.stats()["memory"]
                  if seg_cache is not None else None)
    before = GLOBAL_CACHE.stats()

    def compute() -> List[Optional[AnalysisResult]]:
        if options:
            meter = make_meter(budget)
            out: List[Optional[AnalysisResult]] = []
            for request in requests:
                if meter.stop_reason() is not None:
                    out.append(None)
                    continue
                out.append(executor.run(
                    request=request, budget=budget,
                    engine=options.get("engine"),  # type: ignore[arg-type]
                    simulate=bool(options.get("simulate")),
                    samples=options.get("samples"),  # type: ignore[arg-type]
                    seed=options.get("seed", 0),  # type: ignore[arg-type]
                ))
                meter.charge(configs=1)
            return out
        return executor.run_batch(requests, budget=budget)

    tracer = Tracer() if payload.get("trace") else None
    # A fresh registry scoped to the chunk collects this chunk's metric
    # delta in isolation (the forked registry holds stale parent counts,
    # and the parent never sees worker memory anyway); the delta is
    # shipped back and folded in under the parent registry's locks.
    worker_registry = _metrics.MetricsRegistry() if _metrics.is_enabled() \
        else None
    with ExitStack() as stack:
        stack.enter_context(
            use_request_id(payload.get("request_id")))  # type: ignore[arg-type]
        if worker_registry is not None:
            stack.enter_context(_metrics.use_registry(worker_registry))
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
            stack.enter_context(
                trace_span("engine.parallel.chunk",
                           requests=len(requests), pid=os.getpid()))
        results = compute()
    after = GLOBAL_CACHE.stats()
    segment_hits = segment_misses = 0
    if seg_cache is not None and seg_before is not None:
        seg_after = seg_cache.stats()["memory"]
        segment_hits = int(seg_after["hits"]) - int(seg_before["hits"])  # type: ignore[arg-type]
        segment_misses = (int(seg_after["misses"])  # type: ignore[arg-type]
                          - int(seg_before["misses"]))  # type: ignore[arg-type]
    return {
        "results": results,
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "segment_hits": segment_hits,
        "segment_misses": segment_misses,
        # engine.cache.* counters travel with the hit/miss delta above
        # (merge_stats mirrors them); exporting them here too would
        # double-count.
        "metrics": (worker_registry.export_state(
            exclude_prefixes=("engine.cache.",))
            if worker_registry is not None else None),
        "spans": tracer.to_dict()["spans"] if tracer is not None else [],
        "pid": os.getpid(),
        "elapsed_s": time.perf_counter() - t0,
    }


def _exhaustive_shard(payload: Dict[str, object]) -> Dict[str, object]:
    """Enumerate one ``a``-axis shard of the exhaustive grid.

    The shard covers operand-``a`` values ``[start, start + count)``
    against *all* ``b`` and ``cin`` values -- the same block geometry as
    the serial enumerator, so summing shard masses in shard order
    reproduces the serial accumulation exactly.
    """
    from ..simulation.exhaustive import _bit_weights
    from ..simulation.functional import ripple_add_array

    t0 = time.perf_counter()
    cells = _rebuild_cells(payload["cells"])  # type: ignore[arg-type]
    width = len(cells)
    pa = list(payload["p_a"])  # type: ignore[call-overload]
    pb = list(payload["p_b"])  # type: ignore[call-overload]
    pc = float(payload["p_cin"])  # type: ignore[arg-type]
    start = int(payload["start"])  # type: ignore[arg-type]
    count = int(payload["count"])  # type: ignore[arg-type]

    values = np.arange(1 << width, dtype=np.int64)
    a, b, cin = np.meshgrid(
        values[start:start + count], values,
        np.array([0, 1], dtype=np.int64), indexing="ij",
    )
    a, b, cin = a.ravel(), b.ravel(), cin.ravel()
    approx = ripple_add_array(list(cells), a, b, cin)
    wrong = approx != (a + b + cin)
    weights = (
        _bit_weights(a, pa, width)
        * _bit_weights(b, pb, width)
        * np.where(cin == 1, pc, 1.0 - pc)
    )
    return {
        "mass": float(weights[wrong].sum()),
        "cases": int(a.size),
        "pid": os.getpid(),
        "elapsed_s": time.perf_counter() - t0,
    }


def _curves_shard(payload: Dict[str, object]) -> np.ndarray:
    """``error_curves`` for one contiguous slice of probability points."""
    from ..core.vectorized import success_by_width

    (table,) = _rebuild_cells(payload["cells"])  # type: ignore[arg-type]
    p = np.asarray(payload["p"], dtype=float)
    p_cin = payload["p_cin"]
    if isinstance(p_cin, (list, tuple)):
        p_cin = np.asarray(p_cin, dtype=float)
    return 1.0 - success_by_width(
        table, int(payload["max_width"]), p, p_cin  # type: ignore[arg-type]
    )


def _tradeoff_weight(payload: Dict[str, object]) -> Dict[str, object]:
    """One power-weight point of the hybrid error/power trade-off."""
    from ..circuits.power import PowerModel
    from ..explore.hybrid_search import optimal_hybrid

    t0 = time.perf_counter()
    cells = _rebuild_cells(payload["cells"])  # type: ignore[arg-type]
    before = GLOBAL_CACHE.stats()
    result = optimal_hybrid(
        list(cells), int(payload["width"]),  # type: ignore[arg-type]
        list(payload["p_a"]), list(payload["p_b"]),  # type: ignore[call-overload]
        float(payload["p_cin"]),  # type: ignore[arg-type]
        power_weight=float(payload["weight"]),  # type: ignore[arg-type]
        power_model=PowerModel(),
    )
    after = GLOBAL_CACHE.stats()
    return {
        "result": result,
        "weight": payload["weight"],
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "pid": os.getpid(),
        "elapsed_s": time.perf_counter() - t0,
    }


# -- parent-side orchestration -------------------------------------------------


class _PoolRun:
    """Bookkeeping shared by the fan-out entry points: submits chunks,
    collects completions, merges cache stats and spans, enforces the
    deadline by cancelling pending chunks, and emits the
    ``engine.parallel.*`` metrics."""

    def __init__(self, jobs: int, meter) -> None:
        self.jobs = jobs
        self.meter = meter
        self.pool = _make_pool(jobs)
        self.tracer = get_tracer()
        self.futures: "OrderedDict[object, object]" = OrderedDict()
        self.busy_s = 0.0
        self.chunks_done = 0
        self.cancelled = 0
        self._t0 = time.perf_counter()

    def submit(self, fn, payload: Dict[str, object], tag: object):
        future = self.pool.submit(fn, payload)
        self.futures[future] = tag
        return future

    def completions(self):
        """Yield ``(tag, result_dict)`` as chunks finish.

        After each completion the parent meter is consulted; once it
        reports a stop, every not-yet-started chunk is cancelled
        (cooperative cancellation -- running chunks stop themselves via
        their derived worker budgets).  A ``KeyboardInterrupt`` tears
        the pool down immediately and re-raises.
        """
        try:
            for future in as_completed(list(self.futures)):
                if future.cancelled():
                    continue
                try:
                    out = future.result()
                except CancelledError:
                    continue
                self.chunks_done += 1
                elapsed = out.get("elapsed_s") if isinstance(out, dict) else None
                if elapsed is not None:
                    self.busy_s += float(elapsed)
                    if _metrics.is_enabled():
                        _metrics.observe("engine.parallel.chunk_seconds",
                                         float(elapsed))
                yield self.futures[future], out
                if self.meter.stop_reason() is not None:
                    self.cancel_pending()
        except KeyboardInterrupt:
            self.pool.shutdown(wait=False, cancel_futures=True)
            raise
        except Exception:
            self.pool.shutdown(wait=False, cancel_futures=True)
            raise

    def cancel_pending(self) -> None:
        for future in self.futures:
            if not future.done() and future.cancel():
                self.cancelled += 1

    def graft(self, out: Dict[str, object]) -> None:
        """Merge a chunk's spans into the parent trace, one lane per
        worker PID, aligned to chunk start (= completion - elapsed)."""
        if self.tracer is None or not out.get("spans"):
            return
        offset = self.tracer._now() - float(out["elapsed_s"])  # type: ignore[arg-type]
        graft_spans(out["spans"], thread_id=int(out["pid"]),  # type: ignore[arg-type]
                    offset_s=max(0.0, offset))

    def merge_cache(self, out: Dict[str, object]) -> None:
        GLOBAL_CACHE.merge_stats(int(out.get("hits", 0)),  # type: ignore[arg-type]
                                 int(out.get("misses", 0)))  # type: ignore[arg-type]
        # Segment-tier deltas ride the same lock path, keeping the
        # engine.cache.segment.* counters whole-run-accurate after a
        # parallel fan-out (chunks from pre-segment-cache workers, and
        # the tradeoff/exhaustive shards, simply ship no delta).
        seg_cache = _segcache.get_segment_cache()
        if seg_cache is not None:
            seg_cache.merge_stats(
                int(out.get("segment_hits", 0)),  # type: ignore[arg-type]
                int(out.get("segment_misses", 0)),  # type: ignore[arg-type]
            )

    def merge_metrics(self, out: Dict[str, object]) -> None:
        """Fold a chunk's metric-registry delta into the parent registry
        (counters add; timer/histogram bucket counts add exactly), the
        same parent-side folding as the stage-matrix cache delta."""
        state = out.get("metrics")
        if state and _metrics.is_enabled():
            _metrics.get_registry().merge_state(state)  # type: ignore[arg-type]

    def finish(self, worker_requests: int = 0) -> None:
        self.pool.shutdown(wait=True)
        wall = time.perf_counter() - self._t0
        if _metrics.is_enabled():
            registry = _metrics.get_registry()
            registry.counter("engine.parallel.chunks").add(self.chunks_done)
            registry.counter("engine.parallel.requests").add(worker_requests)
            if self.cancelled:
                registry.counter("engine.parallel.cancelled_chunks").add(
                    self.cancelled)
            _metrics.set_gauge("engine.parallel.workers", self.jobs)
            if wall > 0 and self.jobs > 0:
                _metrics.set_gauge("engine.parallel.occupancy",
                                   self.busy_s / (self.jobs * wall))


def _chunk_sizes(total: int, jobs: int, cap: int) -> int:
    """Target chunk size: oversubscribe the pool, never exceed *cap*."""
    return max(1, min(cap, -(-total // (jobs * OVERSUBSCRIBE))))


def _request_eligible(
    request: AnalysisRequest, engine: Optional[str]
) -> bool:
    """Can *request* run inside a worker process?

    Chain requests with plain (independent) operands qualify; joint
    distributions and trace capture stay in the parent, as does any
    forced engine whose registration is not ``parallel_safe``.
    """
    if (request.kind != KIND_CHAIN or request.joints is not None
            or request.keep_trace or request.block is not None):
        return False
    if engine is not None:
        lookup = ("exhaustive"
                  if engine in ("chunked-exhaustive", PARALLEL_EXHAUSTIVE)
                  else engine)
        if lookup not in REGISTRY:
            return False  # parent-side run() raises the proper error
        info = REGISTRY.get(lookup)
        return info.parallel_safe and info.accepts(request)
    return True


def run_batch_parallel(
    requests: Sequence[AnalysisRequest],
    budget: Optional[RunBudget] = None,
    jobs: int = 2,
    engine: Optional[str] = None,
    simulate: bool = False,
    samples: Optional[int] = None,
    seed: Optional[int] = 0,
) -> List[Optional[AnalysisResult]]:
    """Answer N requests across *jobs* worker processes.

    The parallel twin of :func:`repro.engine.executor.run_batch` (which
    is what callers actually invoke -- with ``parallelism=...`` -- and
    which delegates here).  Grouping mirrors the serial path: chain
    requests sharing a cell sequence are sharded into work-stealing
    chunks; requests a worker cannot serve (correlated operands, trace
    capture, non-chain kinds, engines that are not ``parallel_safe``)
    run serially in the parent afterwards, under the same meter.
    """
    from . import executor  # late: executor imports this module too

    results: List[Optional[AnalysisResult]] = [None] * len(requests)
    meter = make_meter(budget)
    options: Dict[str, object] = {}
    if engine is not None:
        options["engine"] = engine
    if simulate:
        options["simulate"] = True
    if samples is not None:
        options["samples"] = samples
    if options:
        options["seed"] = seed

    groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
    parent_side: List[int] = []
    for i, request in enumerate(requests):
        if _request_eligible(request, engine):
            groups.setdefault(request.cells, []).append(i)
        else:
            parent_side.append(i)

    eligible_total = sum(len(v) for v in groups.values())
    # Admission control for max_configs: never submit more work than
    # the budget's remainder (completions still charge the meter).
    allowed = meter.remaining_configs(eligible_total)
    from .executor import BATCH_CHUNK

    chunk_size = _chunk_sizes(max(allowed, 1), jobs, BATCH_CHUNK)
    trace_active = get_tracer() is not None
    # Contextvars do not cross the process boundary: the correlation ID
    # rides in each chunk payload and is re-scoped worker-side.
    from ..obs.correlate import current_request_id

    request_id = current_request_id()
    worker_done = 0
    stopped = allowed < eligible_total

    with _metrics.timed("engine.run_batch"), \
            trace_span("engine.run_batch", requests=len(requests),
                       groups=len(groups), jobs=jobs):
        run_state = _PoolRun(jobs, meter)
        try:
            budget_doc = None
            worker_budget = _worker_budget(budget, meter)
            if worker_budget is not None:
                budget_doc = worker_budget.as_dict()
            segcache_doc = _segcache.export_config(
                _segcache.get_segment_cache())
            quota = allowed
            for cells, indices in groups.items():
                if quota <= 0:
                    break
                cells_doc = _cells_payload(cells)
                for start in range(0, len(indices), chunk_size):
                    if quota <= 0:
                        break
                    chunk = indices[start:start + chunk_size][:quota]
                    quota -= len(chunk)
                    payload = {
                        "cells": cells_doc,
                        "points": [
                            (requests[i].p_a, requests[i].p_b,
                             requests[i].p_cin, requests[i].check_masking)
                            for i in chunk
                        ],
                        "budget": budget_doc,
                        "options": options,
                        "segcache": segcache_doc,
                        "trace": trace_active,
                        "request_id": request_id,
                    }
                    run_state.submit(_run_chunk, payload, tuple(chunk))
            for chunk, out in run_state.completions():
                chunk_results = out["results"]
                done = 0
                for j, i in enumerate(chunk):
                    if chunk_results[j] is not None:
                        results[i] = chunk_results[j]
                        done += 1
                worker_done += done
                meter.charge(configs=done)
                run_state.merge_cache(out)
                run_state.merge_metrics(out)
                run_state.graft(out)
                if done < len(chunk):
                    stopped = True
        finally:
            run_state.finish(worker_requests=worker_done)

        for i in parent_side:
            if meter.stop_reason() is not None:
                stopped = True
                break
            results[i] = executor.run(
                request=requests[i], budget=budget, engine=engine,
                simulate=simulate, samples=samples, seed=seed,
            )
            meter.charge(configs=1)

    if run_state.cancelled or meter.stop_reason() is not None:
        stopped = True
    if _metrics.is_enabled():
        registry = _metrics.get_registry()
        registry.counter("engine.batch.requests").add(len(requests))
        registry.counter("engine.batch.groups").add(len(groups))
    if stopped:
        log_event(_logger, "engine.run_batch.truncated",
                  reason=meter.stop_reason(),
                  done=sum(r is not None for r in results),
                  total=len(requests), jobs=jobs)
    return results


def parallel_exhaustive(
    request: AnalysisRequest,
    jobs: int = 0,
    budget: Optional[RunBudget] = None,
    progress: Optional[object] = None,
) -> AnalysisResult:
    """Sharded weighted exhaustive enumeration of one chain request.

    Splits the ``2^(2N+1)`` grid along the ``a`` axis into the same
    blocks the serial enumerator uses and fans them out; shard masses
    are summed in shard order, so a complete run reproduces the serial
    ``exhaustive_report`` mass bit-for-bit.  A deadline cancels pending
    shards; the visited mass is then a *lower bound* on ``P(Error)``
    and the result is flagged ``truncated`` with the stop reason.
    """
    from ..simulation.exhaustive import (
        MAX_EXHAUSTIVE_WIDTH,
        _block_step,
    )
    from . import backends

    width = request.width
    if width > MAX_EXHAUSTIVE_WIDTH:
        raise AnalysisError(
            f"exhaustive enumeration of a {width}-bit adder would visit "
            f"2^{2 * width + 1} cases; the router degrades such queries "
            "to Monte-Carlo instead"
        )
    jobs = jobs or resolve_jobs("auto") or 1
    meter = make_meter(budget)
    step = _block_step(width, budget)
    values = 1 << width
    per_a = 1 << (width + 1)
    total_cases = 1 << (2 * width + 1)
    max_cases = budget.max_cases if budget is not None else None

    cells_doc = _cells_payload(request.cells)
    shard_mass: Dict[int, float] = {}
    shard_cases: Dict[int, int] = {}
    submitted_cases = 0

    with _metrics.timed("engine.parallel_exhaustive"), \
            trace_span("engine.parallel_exhaustive", width=width,
                       cases=total_cases, jobs=jobs):
        run_state = _PoolRun(jobs, meter)
        try:
            for shard_index, start in enumerate(range(0, values, step)):
                count = min(step, values - start)
                if max_cases is not None \
                        and submitted_cases + count * per_a > max_cases \
                        and submitted_cases > 0:
                    break
                submitted_cases += count * per_a
                run_state.submit(_exhaustive_shard, {
                    "cells": cells_doc,
                    "p_a": request.p_a, "p_b": request.p_b,
                    "p_cin": request.p_cin,
                    "start": start, "count": count,
                }, shard_index)
            for shard_index, out in run_state.completions():
                shard_mass[shard_index] = float(out["mass"])  # type: ignore[arg-type]
                shard_cases[shard_index] = int(out["cases"])  # type: ignore[arg-type]
                meter.charge(cases=int(out["cases"]))  # type: ignore[arg-type]
        finally:
            run_state.finish(worker_requests=len(shard_mass))

    # Shard-order summation matches the serial block accumulation.
    mass = 0.0
    for shard_index in sorted(shard_mass):
        mass += shard_mass[shard_index]
    cases_done = sum(shard_cases.values())
    truncated = cases_done < total_cases
    stop_reason = meter.stop_reason() if truncated else None
    if truncated and stop_reason is None:
        stop_reason = STOP_MAX_CASES
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "simulation.exhaustive.cases").add(cases_done)
    return backends._chain_result(
        request, 1.0 - mass, PARALLEL_EXHAUSTIVE, True,
        cases=cases_done, truncated=truncated,
        stop_reason=stop_reason,
    )


def error_curves_parallel(
    table: object,
    max_width: int,
    p: object,
    p_cin: object,
    jobs: int,
) -> np.ndarray:
    """Shard a batched ``error_curves`` probability grid across workers.

    Rows (probability points) are split into contiguous slices; the
    vectorised recursion is elementwise along the batch axis, so
    re-concatenating the slices is bit-identical to one big call.
    """
    p_arr = np.atleast_1d(np.asarray(p, dtype=float))
    pc_arr = np.asarray(p_cin, dtype=float)
    pc_batched = pc_arr.ndim == 1
    total = p_arr.shape[0]
    chunk = _chunk_sizes(total, jobs, total)
    cells_doc = _cells_payload([table])
    meter = make_meter(None)

    pieces: Dict[int, np.ndarray] = {}
    with _metrics.timed("engine.error_curves"), \
            trace_span("engine.error_curves", max_width=max_width,
                       points=total, jobs=jobs):
        run_state = _PoolRun(jobs, meter)
        try:
            for shard_index, start in enumerate(range(0, total, chunk)):
                stop = min(start + chunk, total)
                run_state.submit(_curves_shard, {
                    "cells": cells_doc,
                    "max_width": max_width,
                    "p": p_arr[start:stop].tolist(),
                    "p_cin": (pc_arr[start:stop].tolist() if pc_batched
                              else float(pc_arr)),
                }, shard_index)
            for shard_index, out in run_state.completions():
                pieces[shard_index] = np.asarray(out)
        finally:
            run_state.finish(worker_requests=total)
    return np.concatenate([pieces[i] for i in sorted(pieces)], axis=0)


def tradeoff_results_parallel(
    cells: Sequence[object],
    width: int,
    p_a: Sequence[float],
    p_b: Sequence[float],
    p_cin: float,
    weights: Sequence[float],
    jobs: int,
    meter,
) -> Tuple[Dict[float, object], int]:
    """Evaluate ``optimal_hybrid`` per power weight across workers.

    Returns ``(weight -> HybridSearchResult, cancelled_count)``; the
    caller (:func:`repro.explore.hybrid_search.hybrid_tradeoff_curve`)
    assembles the Pareto front and manifest so serial and parallel
    sweeps share one reporting path.  Worker cache deltas are merged;
    a deadline cancels the weights still pending.
    """
    cells_doc = _cells_payload(cells)
    answers: Dict[float, object] = {}
    with trace_span("explore.hybrid.tradeoff", weights=len(weights),
                    jobs=jobs):
        run_state = _PoolRun(jobs, meter)
        try:
            for weight in weights:
                run_state.submit(_tradeoff_weight, {
                    "cells": cells_doc, "width": width,
                    "p_a": tuple(p_a), "p_b": tuple(p_b), "p_cin": p_cin,
                    "weight": float(weight),
                }, float(weight))
            for weight, out in run_state.completions():
                answers[weight] = out["result"]
                run_state.merge_cache(out)
                run_state.graft(out)
        finally:
            run_state.finish(worker_requests=len(answers))
    return answers, run_state.cancelled
