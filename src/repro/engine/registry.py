"""Engine registry: capability metadata and cost estimates per backend.

Every analytical and simulation backend registers an
:class:`EngineInfo` here (see :mod:`repro.engine.backends`).  Selection
-- both the executor's default choice and the
:mod:`repro.runtime.router` degradation ladder -- reads capabilities
(``max_width``, ``exact``, ``supports_batch``) and the abstract
``cost_estimate(width, samples)`` from the registry instead of
hard-coding per-backend thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.exceptions import AnalysisError
from .request import AnalysisRequest

#: Engine families.
FAMILY_ANALYTICAL = "analytical"
FAMILY_SIMULATION = "simulation"

#: Abstract cost units the estimators speak: one unit ~ one enumerated
#: case / drawn sample / recursion stage-op.  Used with
#: ``ops_per_second`` to judge deadline affordability.
CostEstimator = Callable[[int, Optional[int]], float]


@dataclass(frozen=True)
class EngineInfo:
    """Registration record for one backend."""

    name: str
    family: str                    # FAMILY_ANALYTICAL | FAMILY_SIMULATION
    request_kinds: Tuple[str, ...]
    exact: bool
    run: Callable[..., object]     # (request, **options) -> AnalysisResult
    cost_estimate: CostEstimator
    supports_batch: bool = False
    supports_trace: bool = False
    supports_correlated: bool = False
    #: Safe to execute in a worker process: the runner is a pure function
    #: of a picklable request + options (no shared mutable state beyond
    #: the per-process stage-matrix cache, whose hit/miss deltas are
    #: merged back by :mod:`repro.engine.parallel`).
    parallel_safe: bool = False
    #: The answer is a pure function of the request alone -- no seed,
    #: sample budget or wall clock in the output -- so it may be replayed
    #: from the persistent result cache (:mod:`repro.engine.diskcache`)
    #: to any future identical request.
    deterministic: bool = False
    max_width: Optional[int] = None
    block_cases: Optional[int] = None   # chunking threshold (exhaustive)
    ops_per_second: float = 2_000_000.0
    default_samples: Optional[int] = None
    #: Understands windowed-block (``request.block``) zoo adders.  The
    #: check cuts both ways: block engines answer *only* block requests,
    #: and cell-chain engines never see a block request.
    supports_block: bool = False
    description: str = ""

    def accepts(self, request: AnalysisRequest) -> bool:
        """Static capability check (kind, width, correlation, trace)."""
        if request.kind not in self.request_kinds:
            return False
        if self.max_width is not None and request.width > self.max_width:
            return False
        if request.joints is not None and not self.supports_correlated:
            return False
        if request.keep_trace and not self.supports_trace:
            return False
        block = getattr(request, "block", None)
        if (block is not None) != self.supports_block:
            return False
        return True


class EngineRegistry:
    """Name -> :class:`EngineInfo` map with capability queries."""

    def __init__(self) -> None:
        self._engines: Dict[str, EngineInfo] = {}

    def register(self, info: EngineInfo, replace: bool = False) -> EngineInfo:
        if not replace and info.name in self._engines:
            raise AnalysisError(f"engine {info.name!r} already registered")
        self._engines[info.name] = info
        return info

    def get(self, name: str) -> EngineInfo:
        try:
            return self._engines[name]
        except KeyError:
            known = ", ".join(sorted(self._engines)) or "<none>"
            raise AnalysisError(
                f"unknown engine {name!r}; registered: {known}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._engines)

    def __contains__(self, name: str) -> bool:
        return name in self._engines

    def for_request(
        self,
        request: AnalysisRequest,
        family: Optional[str] = None,
        exact: Optional[bool] = None,
    ) -> List[EngineInfo]:
        """Capable engines for *request*, cheapest first."""
        found = [
            info for info in self._engines.values()
            if info.accepts(request)
            and (family is None or info.family == family)
            and (exact is None or info.exact == exact)
        ]
        found.sort(key=lambda info: info.cost_estimate(request.width, None))
        return found


#: The process-wide registry, populated by :mod:`repro.engine.backends`.
REGISTRY = EngineRegistry()
