"""Unified, cached, batch-first analysis engine.

This package is the single front door to every analysis and simulation
backend in the library:

* :mod:`repro.engine.request` -- the :class:`AnalysisRequest` /
  :class:`AnalysisResult` protocol all backends speak;
* :mod:`repro.engine.registry` -- capability metadata and abstract cost
  estimates per backend, consumed by both the default selector and the
  :mod:`repro.runtime.router` degradation ladder;
* :mod:`repro.engine.cache` -- the process-wide stage-matrix LRU keyed
  by (cell truth-table fingerprint, quantized operand probabilities);
* :mod:`repro.engine.diskcache` -- the opt-in persistent result tier:
  an in-memory result LRU over a content-addressed on-disk store shared
  across processes and restarts (``configure_result_cache``);
* :mod:`repro.engine.segcache` -- the opt-in segment tier
  (``configure_segment_cache``): exact transfer matrices of chain
  *segments*, content-addressed and prefix-shared, giving O(log N)
  chain analysis through :mod:`repro.core.transfer`;
* :mod:`repro.engine.executor` -- :func:`run`, :func:`run_batch` and
  :func:`error_curves`, instrumented through :mod:`repro.obs`.

Typical use::

    from repro import engine

    result = engine.run("axa3", 8, p_a=0.3)        # analytical, cached
    result = engine.run("axa3", 24, simulate=True)  # routed simulation
    curves = engine.error_curves("axa2", 16)

    request = engine.AnalysisRequest.for_gear(config)
    result = engine.run(request)

Layering rule: ``core/`` never imports this package; the engine sits on
top of ``core``, ``simulation``, ``baselines``, ``gear`` and
``multiop`` and is in turn used by ``runtime.router``, ``explore``,
``circuits``, ``apps`` and the CLI.
"""

from .cache import (
    GLOBAL_CACHE,
    CacheStats,
    StageMatrixCache,
    StageTransition,
    analysis_matrices,
    cache_stats,
    clear_cache,
    configure_cache,
    mask_arrays,
    stage_transition,
)
from .diskcache import (
    DEFAULT_MEMORY_ENTRIES,
    STORE_FORMAT,
    DiskResultStore,
    DiskStoreStats,
    ResultCache,
    cacheable_result,
    configure_result_cache,
    disable_result_cache,
    get_result_cache,
    request_key,
)
from .segcache import (
    DiskSegmentStore,
    SegmentCache,
    configure_segment_cache,
    disable_segment_cache,
    get_segment_cache,
)
from .registry import (
    FAMILY_ANALYTICAL,
    FAMILY_SIMULATION,
    REGISTRY,
    EngineInfo,
    EngineRegistry,
)
from .request import (
    DISTRIBUTION_KINDS,
    KIND_CHAIN,
    KIND_ERROR_DISTRIBUTION,
    KIND_GEAR,
    KIND_MED,
    KIND_MRED,
    KIND_MULTIOP,
    KIND_WCE,
    KNOWN_METRICS,
    METRIC_BIAS,
    METRIC_MED,
    METRIC_MRED,
    METRIC_MSE,
    METRIC_NMED,
    METRIC_P_ERROR,
    METRIC_P_SUCCESS,
    METRIC_WCE,
    AnalysisRequest,
    AnalysisResult,
)
from .backends import register_builtin_engines
from .distribution import (
    DIST_EXACT_MAX_WIDTH,
    DIST_TRUNCATED_MAX_WIDTH,
    MRED_EXACT_MAX_WIDTH,
    QUANT_BITS,
    exact_width_limit,
    register_distribution_engines,
)
from .executor import error_curves, run, run_batch, select_engine
from .zoo import (
    ZOO_EXACT_MAX_WIDTH,
    ZOO_MC_MAX_WIDTH,
    ZOO_MRED_EXACT_MAX_WIDTH,
    ZOO_TRUNCATED_MAX_WIDTH,
    register_zoo_engines,
    zoo_exact_width_limit,
)
from .parallel import (
    PARALLEL_EXHAUSTIVE,
    budget_allows_parallel,
    parallel_exhaustive,
    resolve_jobs,
    run_batch_parallel,
)

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "CacheStats",
    "DEFAULT_MEMORY_ENTRIES",
    "DiskResultStore",
    "DiskSegmentStore",
    "DiskStoreStats",
    "ResultCache",
    "SegmentCache",
    "STORE_FORMAT",
    "cacheable_result",
    "configure_result_cache",
    "disable_result_cache",
    "get_result_cache",
    "request_key",
    "EngineInfo",
    "EngineRegistry",
    "FAMILY_ANALYTICAL",
    "FAMILY_SIMULATION",
    "GLOBAL_CACHE",
    "DISTRIBUTION_KINDS",
    "DIST_EXACT_MAX_WIDTH",
    "DIST_TRUNCATED_MAX_WIDTH",
    "MRED_EXACT_MAX_WIDTH",
    "QUANT_BITS",
    "KIND_CHAIN",
    "KIND_ERROR_DISTRIBUTION",
    "KIND_GEAR",
    "KIND_MED",
    "KIND_MRED",
    "KIND_MULTIOP",
    "KIND_WCE",
    "KNOWN_METRICS",
    "METRIC_BIAS",
    "METRIC_MED",
    "METRIC_MRED",
    "METRIC_MSE",
    "METRIC_NMED",
    "METRIC_P_ERROR",
    "METRIC_P_SUCCESS",
    "METRIC_WCE",
    "PARALLEL_EXHAUSTIVE",
    "ZOO_EXACT_MAX_WIDTH",
    "ZOO_MC_MAX_WIDTH",
    "ZOO_MRED_EXACT_MAX_WIDTH",
    "ZOO_TRUNCATED_MAX_WIDTH",
    "exact_width_limit",
    "register_distribution_engines",
    "register_zoo_engines",
    "zoo_exact_width_limit",
    "REGISTRY",
    "StageMatrixCache",
    "StageTransition",
    "analysis_matrices",
    "budget_allows_parallel",
    "cache_stats",
    "clear_cache",
    "configure_cache",
    "configure_segment_cache",
    "disable_segment_cache",
    "get_segment_cache",
    "error_curves",
    "mask_arrays",
    "parallel_exhaustive",
    "register_builtin_engines",
    "resolve_jobs",
    "run",
    "run_batch",
    "run_batch_parallel",
    "select_engine",
    "stage_transition",
]

register_builtin_engines()
