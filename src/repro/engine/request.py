"""The ``AnalysisRequest`` / ``AnalysisResult`` protocol.

Every analysis and simulation backend in the library answers the same
question -- "with what probability is this approximate adder wrong?" --
through what used to be eight divergent call conventions.  The engine
layer normalises the question into one immutable, hashable
:class:`AnalysisRequest` (built via :meth:`AnalysisRequest.chain`,
:meth:`AnalysisRequest.for_gear` or :meth:`AnalysisRequest.for_multiop`)
and the answer into one :class:`AnalysisResult`.

Requests carry *float* probabilities (quantizable, batchable,
cacheable).  Digit-exact ``fractions.Fraction`` analysis remains the
scalar primitive's domain (:func:`repro.core.recursive.analyze_chain`),
which is not deprecated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple, Union

from ..core.exceptions import AnalysisError
from ..core.truth_table import FullAdderTruthTable

#: Request kinds understood by the registry.
KIND_CHAIN = "chain"
KIND_GEAR = "gear"
KIND_MULTIOP = "multiop"

#: Error-magnitude kinds: same chain operands, but the question is the
#: error *value* law (or a summary of it) rather than P(error) alone.
KIND_ERROR_DISTRIBUTION = "error_distribution"
KIND_MED = "med"
KIND_MRED = "mred"
KIND_WCE = "wce"
DISTRIBUTION_KINDS = (KIND_ERROR_DISTRIBUTION, KIND_MED, KIND_MRED,
                      KIND_WCE)

#: Metric names a request may ask for.
METRIC_P_ERROR = "p_error"
METRIC_P_SUCCESS = "p_success"
METRIC_MED = "med"
METRIC_NMED = "nmed"
METRIC_MSE = "mse"
METRIC_WCE = "wce"
METRIC_MRED = "mred"
METRIC_BIAS = "bias"
KNOWN_METRICS = (METRIC_P_ERROR, METRIC_P_SUCCESS, METRIC_MED,
                 METRIC_NMED, METRIC_MSE, METRIC_WCE, METRIC_MRED,
                 METRIC_BIAS)

#: Default metric set per distribution kind (what the answer leads with).
_KIND_DEFAULT_METRICS = {
    KIND_ERROR_DISTRIBUTION: (METRIC_P_ERROR, METRIC_MED, METRIC_WCE),
    KIND_MED: (METRIC_MED, METRIC_MSE),
    KIND_MRED: (METRIC_MRED,),
    KIND_WCE: (METRIC_WCE,),
}


@dataclass(frozen=True)
class AnalysisRequest:
    """One normalised analysis question.

    ``cells``/``p_a``/``p_b``/``p_cin`` describe a (possibly hybrid)
    ripple chain; ``gear`` a GeAr configuration; ``operands`` a
    multi-operand CSA reduction.  ``joints`` (per-stage
    :class:`~repro.core.correlated.JointBitDistribution`) switches the
    chain analysis to the correlated-operand engine;
    ``check_masking=True`` stamps ``is_upper_bound`` on analytical
    results for chains that can mask internal errors.

    Instances are frozen and hashable, so they group and deduplicate
    naturally in the batch executor.
    """

    kind: str = KIND_CHAIN
    cells: Tuple[FullAdderTruthTable, ...] = ()
    p_a: Tuple[float, ...] = ()
    p_b: Tuple[float, ...] = ()
    p_cin: float = 0.5
    metrics: Tuple[str, ...] = (METRIC_P_ERROR,)
    joints: Optional[Tuple[object, ...]] = None
    check_masking: bool = True
    keep_trace: bool = False
    gear: Optional[object] = None          # GeArConfig for KIND_GEAR
    operands: Tuple[Tuple[float, ...], ...] = ()   # rows for KIND_MULTIOP
    compress_cell: Optional[FullAdderTruthTable] = None
    final_adder: Tuple[FullAdderTruthTable, ...] = ()
    block: Optional[object] = None         # WindowedAdderSpec for zoo adders

    @property
    def width(self) -> int:
        """Stage count (chain), bit width (GeAr/block) or operand width."""
        if self.block is not None:
            return len(self.block.lows)  # type: ignore[attr-defined]
        if self.kind == KIND_CHAIN or self.kind in DISTRIBUTION_KINDS:
            return len(self.cells)
        if self.kind == KIND_GEAR:
            return self.gear.n  # type: ignore[union-attr]
        return len(self.operands[0]) if self.operands else 0

    @property
    def cell_names(self) -> Tuple[str, ...]:
        if self.block is not None:
            return (self.block.name,)  # type: ignore[attr-defined]
        return tuple(t.name for t in self.cells)

    @classmethod
    def chain(
        cls,
        cell: object,
        width: Optional[int] = None,
        p_a: object = 0.5,
        p_b: object = 0.5,
        p_cin: float = 0.5,
        metrics: Sequence[str] = (METRIC_P_ERROR,),
        joints: Optional[Sequence[object]] = None,
        check_masking: bool = True,
        keep_trace: bool = False,
    ) -> "AnalysisRequest":
        """Normalise a ripple-chain question.

        *cell* follows the library-wide convention: a registered name, a
        truth table, a :class:`~repro.core.hybrid.HybridChain`, or a
        per-stage sequence of any of those (then *width* is optional).
        """
        from ..core.probability import float_probability_vector
        from ..core.recursive import resolve_chain
        from ..core.types import validate_probability

        cells = tuple(resolve_chain(_unwrap_chain(cell), width))
        n = len(cells)
        request = cls(
            kind=KIND_CHAIN,
            cells=cells,
            p_a=tuple(float_probability_vector(p_a, n, "p_a")),
            p_b=tuple(float_probability_vector(p_b, n, "p_b")),
            p_cin=float(validate_probability(p_cin, "p_cin")),
            metrics=_normalise_metrics(metrics),
            check_masking=check_masking,
            keep_trace=keep_trace,
        )
        if joints is not None:
            if len(joints) != n:
                raise AnalysisError(
                    f"need one joint distribution per stage: got "
                    f"{len(joints)} for {n} stages"
                )
            request = replace(request, joints=tuple(joints))
        return request

    @classmethod
    def distribution(
        cls,
        cell: object,
        width: Optional[int] = None,
        p_a: object = 0.5,
        p_b: object = 0.5,
        p_cin: float = 0.5,
        kind: str = KIND_MED,
        metrics: Optional[Sequence[str]] = None,
    ) -> "AnalysisRequest":
        """Normalise an error-*magnitude* question over a ripple chain.

        Same operand convention as :meth:`chain`, but *kind* selects
        which view of the error value ``D = approx - exact`` the engine
        answers:

        * ``"error_distribution"`` -- the full PMF of ``D``;
        * ``"med"`` -- mean/MSE error distance (``E[|D|]``, ``E[D^2]``);
        * ``"mred"`` -- mean relative error distance
          (``E[|D| / max(exact, 1)]``);
        * ``"wce"`` -- worst-case error ``max |D|``.

        *metrics* defaults to the kind's headline metrics; any name in
        :data:`KNOWN_METRICS` may be requested explicitly.
        """
        if kind not in DISTRIBUTION_KINDS:
            raise AnalysisError(
                f"unknown distribution kind {kind!r}; known: "
                f"{', '.join(DISTRIBUTION_KINDS)}"
            )
        base = cls.chain(cell, width, p_a, p_b, p_cin)
        wanted = (_KIND_DEFAULT_METRICS[kind] if metrics is None
                  else metrics)
        return replace(base, kind=kind, metrics=_normalise_metrics(wanted))

    @classmethod
    def zoo(
        cls,
        adder: object,
        p_a: object = 0.5,
        p_b: object = 0.5,
        kind: str = KIND_CHAIN,
        metrics: Optional[Sequence[str]] = None,
    ) -> "AnalysisRequest":
        """Normalise a question about a *named zoo adder*.

        *adder* is a config string (``"loa:16:8"``, ``"aca1:16:4"``,
        ``"axppa-ks:16:2"``), a parsed
        :class:`~repro.core.adder_zoo.ZooAdder`, or a raw
        :class:`~repro.core.adder_zoo.WindowedAdderSpec`.  Chain-shaped
        members (LOA and friends) become ordinary cell-chain requests
        served by every existing engine; block/prefix members carry the
        windowed spec in ``block`` and are served by the ``zoo-*``
        engine family.  Zoo adders always add with carry-in 0 (the
        reference is ``a + b``), so ``p_cin`` is fixed at 0.

        *kind* may be the plain ``"chain"`` (P(error)) or any
        error-magnitude kind in :data:`DISTRIBUTION_KINDS`.
        """
        from ..core.adder_zoo import WindowedAdderSpec, parse_adder

        if kind != KIND_CHAIN and kind not in DISTRIBUTION_KINDS:
            raise AnalysisError(
                f"unknown zoo request kind {kind!r}; known: chain, "
                f"{', '.join(DISTRIBUTION_KINDS)}"
            )
        if isinstance(adder, WindowedAdderSpec):
            built: object = adder
        else:
            built = parse_adder(adder).build()
        if not isinstance(built, WindowedAdderSpec):
            # Chain-shaped zoo member: an ordinary hybrid-cell request.
            if kind == KIND_CHAIN:
                request = cls.chain(list(built), p_a=p_a, p_b=p_b,
                                    p_cin=0.0)
            else:
                request = cls.distribution(list(built), p_a=p_a, p_b=p_b,
                                           p_cin=0.0, kind=kind)
            if metrics is not None:
                request = replace(request,
                                  metrics=_normalise_metrics(metrics))
            return request
        from ..core.probability import float_probability_vector

        n = built.width
        if metrics is None:
            wanted = ((METRIC_P_ERROR,) if kind == KIND_CHAIN
                      else _KIND_DEFAULT_METRICS[kind])
        else:
            wanted = tuple(metrics)
        return cls(
            kind=kind,
            block=built,
            p_a=tuple(float_probability_vector(p_a, n, "p_a")),
            p_b=tuple(float_probability_vector(p_b, n, "p_b")),
            p_cin=0.0,
            metrics=_normalise_metrics(wanted),
            check_masking=False,
        )

    @classmethod
    def for_gear(
        cls,
        config: object,
        p_a: object = 0.5,
        p_b: object = 0.5,
        metrics: Sequence[str] = (METRIC_P_ERROR,),
    ) -> "AnalysisRequest":
        """Normalise a GeAr question from a ``GeArConfig``."""
        from ..core.probability import float_probability_vector
        from ..gear.config import GeArConfig

        if not isinstance(config, GeArConfig):
            raise AnalysisError(
                f"for_gear expects a GeArConfig, got {type(config).__name__}"
            )
        return cls(
            kind=KIND_GEAR,
            gear=config,
            p_a=tuple(float_probability_vector(p_a, config.n, "p_a")),
            p_b=tuple(float_probability_vector(p_b, config.n, "p_b")),
            metrics=_normalise_metrics(metrics),
        )

    @classmethod
    def for_multiop(
        cls,
        operand_probabilities: Sequence[Sequence[float]],
        width: int,
        compress_cell: object = "accurate",
        final_adder: object = None,
        metrics: Sequence[str] = (METRIC_P_ERROR,),
    ) -> "AnalysisRequest":
        """Normalise a multi-operand (CSA tree + final adder) question."""
        from ..core.probability import float_probability_vector
        from ..core.recursive import resolve_cell, resolve_chain

        rows = tuple(
            tuple(float_probability_vector(row, width, "operand"))
            for row in operand_probabilities
        )
        if not rows:
            raise AnalysisError("need at least one operand probability row")
        final: Tuple[FullAdderTruthTable, ...] = ()
        if final_adder is not None:
            final = tuple(resolve_chain(final_adder, width))
        return cls(
            kind=KIND_MULTIOP,
            operands=rows,
            compress_cell=resolve_cell(compress_cell),
            final_adder=final,
            metrics=_normalise_metrics(metrics),
        )


def _unwrap_chain(cell: object) -> object:
    """Accept HybridChain transparently (its cells tuple is the chain)."""
    cells = getattr(cell, "cells", None)
    if cells is not None and not isinstance(cell, (str, FullAdderTruthTable)):
        return list(cells)
    return cell


def _normalise_metrics(metrics: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(dict.fromkeys(metrics))  # dedupe, keep first-seen order
    if not names:
        raise AnalysisError("metrics must name at least one quantity")
    for name in names:
        if name not in KNOWN_METRICS:
            raise AnalysisError(
                f"unknown metric {name!r}; known: {', '.join(KNOWN_METRICS)}"
            )
    return names


@dataclass(frozen=True)
class AnalysisResult:
    """One engine answer, in a backend-independent shape.

    ``engine`` names the backend that actually ran; ``exact`` is its
    registry capability (``False`` for Monte-Carlo estimates);
    ``degraded_from``/``reason`` carry the selection provenance when the
    budget forced a downgrade; ``raw`` keeps the backend-native result
    (``MonteCarloResult``, ``ExhaustiveResult``, ``GeArIEReport``, ...)
    for callers that need manifests, checkpoints or term counts.

    The error-magnitude fields (``med``/``nmed``/``mse``/``wce``/
    ``mred``/``bias``) are populated by the distribution engines
    (:data:`DISTRIBUTION_KINDS` requests) and ``None`` for plain
    P(error) answers; ``distribution`` carries the full
    ``((delta, probability), ...)`` PMF for ``error_distribution``
    requests (sorted by delta).
    """

    p_error: float
    p_success: float
    engine: str
    exact: bool
    width: int
    kind: str = KIND_CHAIN
    cell_names: Tuple[str, ...] = ()
    samples: Optional[int] = None
    cases: Optional[int] = None
    truncated: bool = False
    stop_reason: Optional[str] = None
    degraded_from: Optional[str] = None
    reason: Optional[str] = None
    interval: Optional[Tuple[float, float]] = None
    is_upper_bound: bool = False
    med: Optional[float] = None
    nmed: Optional[float] = None
    mse: Optional[float] = None
    wce: Optional[float] = None
    mred: Optional[float] = None
    bias: Optional[float] = None
    distribution: Optional[Tuple[Tuple[int, float], ...]] = None
    trace: Tuple = ()
    raw: object = field(default=None, repr=False, compare=False)

    def value(self, metric: str) -> float:
        """Look up one of the request's metric names."""
        if metric == METRIC_P_ERROR:
            return self.p_error
        if metric == METRIC_P_SUCCESS:
            return self.p_success
        if metric in KNOWN_METRICS:
            found = getattr(self, metric)
            if found is None:
                raise AnalysisError(
                    f"result from engine {self.engine!r} "
                    f"(kind={self.kind!r}) does not carry metric "
                    f"{metric!r}"
                )
            return float(found)
        raise AnalysisError(f"unknown metric {metric!r}")
