"""DSP workloads on approximate accumulation (the paper's §1 domain).

A fixed-point FIR filter whose multiply results are exact but whose
*accumulation* runs on the library's approximate adders -- the precise
architecture the paper motivates ("single-bit adders cascaded to form
any multi-bit adder topology ... building blocks of digital signal
processors").  Signal quality is scored as SNR against the exact filter
so adder-level error probabilities connect to application-level dB.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec
from ..multiop.mac import dot_product


def quantize(signal: np.ndarray, bits: int) -> np.ndarray:
    """Quantise a float signal in [-1, 1] to unsigned *bits*-bit samples.

    Offset-binary: -1.0 -> 0, +1.0 -> 2^bits - 1.
    """
    if bits < 2:
        raise AnalysisError(f"need >= 2 bits, got {bits}")
    signal = np.asarray(signal, dtype=np.float64)
    if np.abs(signal).max(initial=0.0) > 1.0:
        raise AnalysisError("signal must lie in [-1, 1]")
    levels = (1 << bits) - 1
    return np.clip(np.rint((signal + 1.0) * levels / 2.0), 0, levels).astype(
        np.int64
    )


def lowpass_taps(num_taps: int, cutoff: float, bits: int) -> np.ndarray:
    """Windowed-sinc low-pass taps quantised to unsigned *bits*-bit ints.

    *cutoff* is the normalised frequency in (0, 0.5).  Taps are scaled so
    the largest is ``2^bits - 1`` (gain is normalised away by the SNR
    metric, which compares like against like).
    """
    if not 0.0 < cutoff < 0.5:
        raise AnalysisError(f"cutoff must be in (0, 0.5), got {cutoff}")
    if num_taps < 1:
        raise AnalysisError(f"need >= 1 tap, got {num_taps}")
    n = np.arange(num_taps) - (num_taps - 1) / 2.0
    taps = np.sinc(2.0 * cutoff * n) * np.hamming(num_taps)
    taps = np.abs(taps)  # keep the filter in the unsigned domain
    taps = taps / taps.max() * ((1 << bits) - 1)
    return np.rint(taps).astype(np.int64)


def fir_filter(
    samples: np.ndarray,
    taps: np.ndarray,
    input_bits: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
) -> np.ndarray:
    """Run a FIR filter with approximate accumulation.

    Each output is the dot product of the tap vector with a window of
    the sample stream, accumulated on a CSA tree (*compress_cell*) and a
    final carry-propagate adder (*final_adder*).  Returns the raw
    (unnormalised) accumulator outputs, length ``len(samples) -
    len(taps) + 1``.
    """
    samples = np.asarray(samples, dtype=np.int64)
    taps = np.asarray(taps, dtype=np.int64)
    if samples.ndim != 1 or taps.ndim != 1:
        raise AnalysisError("samples and taps must be 1-D")
    if len(samples) < len(taps):
        raise AnalysisError("signal shorter than the filter")
    limit = 1 << input_bits
    if samples.max(initial=0) >= limit or taps.max(initial=0) >= limit:
        raise AnalysisError(f"samples/taps must fit in {input_bits} bits")
    outputs = np.zeros(len(samples) - len(taps) + 1, dtype=np.int64)
    tap_list = [int(t) for t in taps]
    for i in range(outputs.size):
        window = [int(v) for v in samples[i:i + len(taps)]]
        outputs[i] = dot_product(
            window, tap_list, input_bits,
            compress_cell=compress_cell, final_adder=final_adder,
        )
    return outputs


def snr_db(reference: np.ndarray, test: np.ndarray) -> float:
    """Signal-to-noise ratio of *test* against *reference*, in dB."""
    ref = np.asarray(reference, dtype=np.float64)
    got = np.asarray(test, dtype=np.float64)
    if ref.shape != got.shape:
        raise AnalysisError(f"shape mismatch: {ref.shape} vs {got.shape}")
    noise = float(((ref - got) ** 2).sum())
    power = float((ref ** 2).sum())
    if noise == 0.0:
        return float("inf")
    if power == 0.0:
        raise AnalysisError("reference signal has zero power")
    return 10.0 * np.log10(power / noise)


def make_tone(
    length: int,
    frequency: float,
    noise_level: float = 0.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """A unit sine at normalised *frequency* with optional uniform noise."""
    if length < 1:
        raise AnalysisError(f"length must be >= 1, got {length}")
    t = np.arange(length)
    signal = np.sin(2.0 * np.pi * frequency * t)
    if noise_level > 0.0:
        rng = np.random.default_rng(seed)
        signal = signal + rng.uniform(-noise_level, noise_level, length)
        signal = np.clip(signal, -1.0, 1.0)
    return signal


def fir_quality_experiment(
    cell: CellSpec,
    approx_bits: int,
    input_bits: int = 8,
    num_taps: int = 8,
    signal_length: int = 200,
    seed: int = 0,
) -> Tuple[float, float]:
    """One end-to-end data point: (adder chain RMS, filter SNR dB).

    Builds a low-pass FIR, runs a noisy tone through it with the low
    *approx_bits* of the final accumulation adder approximated, and
    returns the analytical RMS error of that adder chain next to the
    measured output SNR -- the pairing the imaging app also exposes.
    """
    from ..apps.imaging import lsb_approximate_chain
    from ..core.magnitude import error_moments
    from ..multiop.compressor import reduction_final_width

    samples = quantize(
        make_tone(signal_length, 0.05, noise_level=0.2, seed=seed),
        input_bits,
    )
    taps = lowpass_taps(num_taps, 0.1, input_bits)
    # the final carry-propagate adder's exact width after reduction
    final_width = reduction_final_width(num_taps, 2 * input_bits)
    chain = lsb_approximate_chain(cell, final_width, approx_bits)
    reference = fir_filter(samples, taps, input_bits)
    approximate = fir_filter(
        samples, taps, input_bits, final_adder=chain
    )
    rms = error_moments(chain, None, 0.5, 0.5, 0.0).rms
    return rms, snr_db(reference, approximate)


def predict_snr_db(
    reference: np.ndarray,
    chain: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
) -> float:
    """Predicted SNR of a signal accumulated on *chain*, engine-only.

    Models each output as the exact value plus one draw of the chain's
    arithmetic error ``D``: expected noise power is ``len(reference) *
    E[D^2]`` with ``E[D^2]`` from the error-magnitude engine
    (``engine.run(kind="med")``), so no approximate simulation runs.
    The prediction assumes independent equiprobable operand bits; a
    strongly structured accumulator input drifts from it.
    """
    from .. import engine

    ref = np.asarray(reference, dtype=np.float64)
    if ref.size == 0:
        raise AnalysisError("empty reference signal")
    result = engine.run(chain, width, 0.5, 0.5, 0.0, kind="med")
    noise = float(result.mse) * ref.size
    power = float((ref ** 2).sum())
    if noise == 0.0:
        return float("inf")
    if power == 0.0:
        raise AnalysisError("reference signal has zero power")
    return float(10.0 * np.log10(power / noise))


def fir_prediction_experiment(
    cell: CellSpec,
    approx_bits: int,
    input_bits: int = 8,
    num_taps: int = 8,
    signal_length: int = 200,
    seed: int = 0,
) -> Tuple[float, float]:
    """(predicted SNR dB, measured SNR dB) for one FIR configuration.

    Same setup as :func:`fir_quality_experiment`, but the analytical
    side is a full SNR *prediction* from the engine's ``E[D^2]``
    (:func:`predict_snr_db`) rather than a bare RMS -- the quantitative
    pairing the error-metrics guide documents: the engine predicts the
    application-level dB before any approximate simulation runs.
    """
    from ..apps.imaging import lsb_approximate_chain
    from ..multiop.compressor import reduction_final_width

    samples = quantize(
        make_tone(signal_length, 0.05, noise_level=0.2, seed=seed),
        input_bits,
    )
    taps = lowpass_taps(num_taps, 0.1, input_bits)
    final_width = reduction_final_width(num_taps, 2 * input_bits)
    chain = lsb_approximate_chain(cell, final_width, approx_bits)
    reference = fir_filter(samples, taps, input_bits)
    approximate = fir_filter(samples, taps, input_bits, final_adder=chain)
    return (
        predict_snr_db(reference, chain),
        snr_db(reference, approximate),
    )
