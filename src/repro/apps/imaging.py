"""Error-resilient image processing on approximate adders.

The paper's motivation (§1) is image/video-class workloads that tolerate
arithmetic error.  This module provides that workload end-to-end without
external data: synthetic grayscale images, pixel arithmetic routed
through the library's approximate adders, and the standard PSNR quality
metric, so the error-probability numbers can be connected to actual
output quality (see ``examples/image_processing.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.recursive import CellSpec
from ..simulation.functional import ripple_add_array


def synthetic_image(
    shape: Tuple[int, int] = (64, 64),
    kind: str = "gradient",
    seed: Optional[int] = None,
) -> np.ndarray:
    """Generate a deterministic 8-bit grayscale test image.

    Kinds: ``gradient`` (diagonal ramp), ``checker`` (8px checkerboard),
    ``noise`` (uniform random), ``disk`` (bright disk on dark ground).
    """
    rows, cols = shape
    if rows < 1 or cols < 1:
        raise AnalysisError(f"bad image shape {shape}")
    y, x = np.mgrid[0:rows, 0:cols]
    if kind == "gradient":
        img = (x + y) * 255.0 / max(rows + cols - 2, 1)
    elif kind == "checker":
        img = ((x // 8 + y // 8) % 2) * 255.0
    elif kind == "noise":
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, size=shape).astype(np.float64)
    elif kind == "disk":
        cy, cx = (rows - 1) / 2, (cols - 1) / 2
        r = min(rows, cols) / 3
        img = np.where((y - cy) ** 2 + (x - cx) ** 2 <= r * r, 220.0, 30.0)
    else:
        raise AnalysisError(f"unknown image kind {kind!r}")
    return np.clip(np.rint(img), 0, 255).astype(np.uint8)


def lsb_approximate_chain(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: int,
    approx_bits: Optional[int],
) -> list:
    """Per-stage cell list: approximate low bits, accurate high bits.

    This is how LPAAs are deployed in practice (and the point of the
    paper's hybrid adders): magnitude-critical MSBs stay exact while the
    LSBs absorb the error.  ``approx_bits=None`` approximates every
    stage.
    """
    from ..core.recursive import resolve_chain
    from ..core.truth_table import ACCURATE

    if approx_bits is None:
        approx_bits = width
    if not 0 <= approx_bits <= width:
        raise AnalysisError(
            f"approx_bits must be in [0, {width}], got {approx_bits}"
        )
    approx = resolve_chain(cell, approx_bits) if approx_bits else []
    return approx + [ACCURATE] * (width - approx_bits)


def approximate_blend(
    image_a: np.ndarray,
    image_b: np.ndarray,
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: int = 8,
    approx_bits: Optional[int] = 4,
) -> np.ndarray:
    """Average two 8-bit images, with the addition done approximately.

    ``(a + b) / 2`` where the ``+`` runs through a chain whose low
    *approx_bits* stages use *cell* and whose high stages stay accurate
    (``approx_bits=None`` approximates the full width).
    """
    a = _check_image(image_a, width)
    b = _check_image(image_b, width)
    if a.shape != b.shape:
        raise AnalysisError(f"image shapes differ: {a.shape} vs {b.shape}")
    chain = lsb_approximate_chain(cell, width, approx_bits)
    sums = ripple_add_array(chain, a.ravel().astype(np.int64),
                            b.ravel().astype(np.int64), 0, width)
    out = (sums >> 1).reshape(a.shape)
    return np.clip(out, 0, (1 << width) - 1).astype(np.uint8)


def approximate_box_blur(
    image: np.ndarray,
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: int = 12,
    approx_bits: Optional[int] = 4,
) -> np.ndarray:
    """3x3 box blur whose accumulations run on an approximate adder.

    The nine pixel values are summed pairwise through *width*-bit
    additions (wide enough to hold the exact 9*255 maximum) whose low
    *approx_bits* stages are approximate, then divided by 9 exactly.
    """
    img = _check_image(image, 8)
    if (1 << width) - 1 < 9 * 255:
        raise AnalysisError(
            f"width {width} cannot hold a 3x3 sum; need >= 12 bits "
            "(or accept wraparound by passing width explicitly)"
        )
    padded = np.pad(img.astype(np.int64), 1, mode="edge")
    rows, cols = img.shape
    shifted = [
        padded[dy:dy + rows, dx:dx + cols].ravel()
        for dy in range(3)
        for dx in range(3)
    ]
    mask = (1 << width) - 1
    chain = lsb_approximate_chain(cell, width, approx_bits)

    def approx_add(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # operands are clipped into range; overflow keeps low bits like
        # real fixed-width hardware would.
        return ripple_add_array(chain, x & mask, y & mask, 0, width) & mask

    total = shifted[0]
    for other in shifted[1:]:
        total = approx_add(total, other)
    out = total // 9
    return np.clip(out.reshape(img.shape), 0, 255).astype(np.uint8)


def predict_blend_mse(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: int = 8,
    approx_bits: Optional[int] = 4,
    p_a: object = 0.5,
    p_b: object = 0.5,
) -> float:
    """Analytically predicted per-pixel MSE of :func:`approximate_blend`.

    The blend computes ``(a + b + D) >> 1`` where ``D`` is the adder
    chain's arithmetic error, so the pixel-level noise is ``D / 2`` and
    the predicted MSE is ``E[D^2] / 4`` -- with ``E[D^2]`` taken from
    the error-magnitude engine (``engine.run(kind="med")``), no
    simulation involved.  The prediction assumes independent operand
    bits at the given one-probabilities, which uniform-noise images
    satisfy; structured images have correlated bits and may land a few
    dB away.
    """
    from .. import engine

    chain = lsb_approximate_chain(cell, width, approx_bits)
    result = engine.run(chain, None, p_a, p_b, 0.0, kind="med")
    return float(result.mse) / 4.0


def predict_blend_psnr(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: int = 8,
    approx_bits: Optional[int] = 4,
    p_a: object = 0.5,
    p_b: object = 0.5,
    peak: float = 255.0,
) -> float:
    """Predicted :func:`approximate_blend` PSNR in dB, engine-only.

    ``10 * log10(peak^2 / predicted MSE)`` over
    :func:`predict_blend_mse`; infinity for an exact chain.
    """
    mse = predict_blend_mse(cell, width, approx_bits, p_a, p_b)
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / mse))


def blend_quality_experiment(
    cell: Union[CellSpec, Sequence[CellSpec]],
    approx_bits: Optional[int] = 4,
    shape: Tuple[int, int] = (64, 64),
    seed: int = 0,
) -> Tuple[float, float]:
    """(predicted PSNR, measured PSNR) for one blend configuration.

    Blends two uniform-noise images (whose independent, equiprobable
    pixel bits match the engine's operand model) through the
    approximate chain and scores the result against the exact blend;
    the analytical prediction comes from :func:`predict_blend_psnr`.
    The two numbers agreeing within ~1 dB is the end-to-end
    cross-check pinned by ``tests/apps/test_imaging.py``.
    """
    image_a = synthetic_image(shape, "noise", seed)
    image_b = synthetic_image(shape, "noise", seed + 1)
    exact = approximate_blend(image_a, image_b, "accurate", 8, None)
    approx = approximate_blend(image_a, image_b, cell, 8, approx_bits)
    return (
        predict_blend_psnr(cell, 8, approx_bits),
        psnr(exact, approx),
    )


def psnr(reference: np.ndarray, test: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (infinity for identical images)."""
    ref = np.asarray(reference, dtype=np.float64)
    got = np.asarray(test, dtype=np.float64)
    if ref.shape != got.shape:
        raise AnalysisError(f"image shapes differ: {ref.shape} vs {got.shape}")
    mse = float(((ref - got) ** 2).mean())
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def _check_image(image: np.ndarray, width: int) -> np.ndarray:
    img = np.asarray(image)
    if img.ndim != 2:
        raise AnalysisError(f"expected a 2-D grayscale image, got {img.ndim}-D")
    if img.min() < 0 or img.max() >= 1 << width:
        raise AnalysisError(f"pixel values must fit in {width} bits")
    return img
