"""Application substrates exercising approximate adders end-to-end."""

from .dsp import (
    fir_filter,
    fir_quality_experiment,
    lowpass_taps,
    quantize,
    snr_db,
    make_tone,
)
from .imaging import (
    approximate_blend,
    approximate_box_blur,
    lsb_approximate_chain,
    psnr,
    synthetic_image,
)

__all__ = [
    "synthetic_image",
    "approximate_blend",
    "approximate_box_blur",
    "lsb_approximate_chain",
    "psnr",
    "quantize",
    "lowpass_taps",
    "fir_filter",
    "snr_db",
    "make_tone",
    "fir_quality_experiment",
]
