"""Deprecation plumbing for the pre-``repro.engine`` entry points.

Kept free of any ``repro`` imports so every layer (including
``repro.core``) can emit migration warnings without import cycles.
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, new: str) -> None:
    """Emit a :class:`DeprecationWarning` attributed to the *caller* of
    the deprecated function.

    ``stacklevel=3`` skips this helper and the deprecated shim itself, so
    the warning points at (and is filtered by the module name of) the
    code that needs migrating.  CI runs the suite with
    ``-W error::DeprecationWarning:repro`` to prove no in-repo caller is
    left on a deprecated entry point.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )
