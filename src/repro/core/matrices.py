"""Derivation of the M / K / L analysis masks (paper §4.2, Table 5).

For a cell truth table the three 8-entry 0/1 masks are defined as:

* ``M[i] = 1`` iff row *i* is a **success** (both sum and carry match the
  accurate adder) *and* its carry-out is 1;
* ``K[i] = 1`` iff row *i* is a success *and* its carry-out is 0;
* ``L[i] = 1`` iff row *i* is a success.

Two structural identities always hold and are property-tested:
``L = M | K`` (element-wise) and ``M & K = 0``.

The masks are derived from the truth table here rather than hard-coded;
the Table 5 constants are kept (``TABLE5_MATRICES``) purely as golden
data for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..obs import metrics as _metrics
from .truth_table import FullAdderTruthTable

MaskRow = Tuple[int, int, int, int, int, int, int, int]

# Fingerprint-keyed memos (same keying convention as the stage-matrix
# LRU: the eight (sum, cout) truth-table rows identify a cell exactly).
# Sweeps lower the same handful of cells millions of times -- the masks
# are pure functions of the rows, so recomputing them per call is pure
# waste.  Unbounded on purpose: there are at most 4^8 distinct tables,
# and a real run sees a few dozen.  Hit rates are reported under the
# engine-wide cache namespace (``engine.cache.matrices.*``).
_MATRICES_MEMO: Dict[Tuple[Tuple[int, int], ...], "AnalysisMatrices"] = {}
_CARRY_MEMO: Dict[Tuple[Tuple[int, int], ...], Tuple[MaskRow, MaskRow]] = {}


def _count_memo(hit: bool) -> None:
    if _metrics.is_enabled():
        _metrics.inc("engine.cache.matrices.hits" if hit
                     else "engine.cache.matrices.misses")


@dataclass(frozen=True)
class AnalysisMatrices:
    """The constant masks driving the recursive analysis of one cell.

    Attributes
    ----------
    m:
        Success-and-carry-one mask (``P(C_next ∩ Succ) = IPM · m``).
    k:
        Success-and-carry-zero mask (``P(C̄_next ∩ Succ) = IPM · k``).
    l:
        Success mask (``P(Succ) = IPM · l`` at the last stage).
    """

    m: MaskRow
    k: MaskRow
    l: MaskRow

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the three masks as float64 NumPy vectors (for dot products)."""
        return (
            np.asarray(self.m, dtype=np.float64),
            np.asarray(self.k, dtype=np.float64),
            np.asarray(self.l, dtype=np.float64),
        )

    def success_row_count(self) -> int:
        """Number of success rows; ``8 - error cases`` of the cell."""
        return int(sum(self.l))


def derive_matrices(table: FullAdderTruthTable) -> AnalysisMatrices:
    """Derive the :class:`AnalysisMatrices` of *table* (paper §4.2 steps 1-3).

    >>> from repro.core.adders import LPAA1
    >>> derive_matrices(LPAA1).m
    (0, 0, 0, 1, 0, 1, 1, 1)
    """
    cached = _MATRICES_MEMO.get(table.rows)
    if cached is not None:
        _count_memo(hit=True)
        return cached
    _count_memo(hit=False)
    success = table.success_rows()
    m = tuple(
        1 if ok and cout == 1 else 0
        for ok, (_, cout) in zip(success, table.rows)
    )
    k = tuple(
        1 if ok and cout == 0 else 0
        for ok, (_, cout) in zip(success, table.rows)
    )
    l = tuple(1 if ok else 0 for ok in success)
    matrices = AnalysisMatrices(m=m, k=k, l=l)  # type: ignore[arg-type]
    _MATRICES_MEMO[table.rows] = matrices
    return matrices


def derive_carry_matrices(table: FullAdderTruthTable) -> Tuple[MaskRow, MaskRow]:
    """Unconditioned carry masks: ``(C1, C0)`` where ``C1[i] = 1`` iff the
    *approximate* carry-out of row *i* is 1 (no success filtering).

    These drive :mod:`repro.core.sum_analysis`, which tracks the actual
    carry distribution of the approximate chain rather than only the
    fully-correct executions.
    """
    cached = _CARRY_MEMO.get(table.rows)
    if cached is not None:
        _count_memo(hit=True)
        return cached
    _count_memo(hit=False)
    c1 = tuple(cout for _, cout in table.rows)
    c0 = tuple(1 - cout for _, cout in table.rows)
    masks = (c1, c0)
    _CARRY_MEMO[table.rows] = masks
    return masks  # type: ignore[return-value]


def derive_sum_matrix(table: FullAdderTruthTable) -> MaskRow:
    """Mask ``S1`` with ``S1[i] = 1`` iff the approximate sum of row *i* is 1."""
    return tuple(s for s, _ in table.rows)  # type: ignore[return-value]


#: Golden copies of paper Table 5 ("M, K and L Matrices Required for
#: Analysis of LPAA 1-7"), used only by validation tests and the Table 5
#: reproduction bench.
TABLE5_MATRICES: Dict[str, AnalysisMatrices] = {
    "LPAA 1": AnalysisMatrices(
        m=(0, 0, 0, 1, 0, 1, 1, 1),
        k=(1, 1, 0, 0, 0, 0, 0, 0),
        l=(1, 1, 0, 1, 0, 1, 1, 1),
    ),
    "LPAA 2": AnalysisMatrices(
        m=(0, 0, 0, 1, 0, 1, 1, 0),
        k=(0, 1, 1, 0, 1, 0, 0, 0),
        l=(0, 1, 1, 1, 1, 1, 1, 0),
    ),
    "LPAA 3": AnalysisMatrices(
        m=(0, 0, 0, 1, 0, 1, 1, 0),
        k=(0, 1, 0, 0, 1, 0, 0, 0),
        l=(0, 1, 0, 1, 1, 1, 1, 0),
    ),
    "LPAA 4": AnalysisMatrices(
        m=(0, 0, 0, 0, 0, 1, 1, 1),
        k=(1, 1, 0, 0, 0, 0, 0, 0),
        l=(1, 1, 0, 0, 0, 1, 1, 1),
    ),
    "LPAA 5": AnalysisMatrices(
        m=(0, 0, 0, 0, 0, 1, 0, 1),
        k=(1, 0, 1, 0, 0, 0, 0, 0),
        l=(1, 0, 1, 0, 0, 1, 0, 1),
    ),
    "LPAA 6": AnalysisMatrices(
        m=(0, 0, 0, 1, 0, 1, 0, 1),
        k=(1, 0, 1, 0, 1, 0, 0, 0),
        l=(1, 0, 1, 1, 1, 1, 0, 1),
    ),
    "LPAA 7": AnalysisMatrices(
        m=(0, 0, 0, 0, 0, 0, 1, 1),
        k=(1, 1, 1, 0, 1, 0, 0, 0),
        l=(1, 1, 1, 0, 1, 0, 1, 1),
    ),
}
