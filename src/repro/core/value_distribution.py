"""Exact distribution of the approximate adder's *output value*.

:mod:`repro.core.sum_analysis` gives per-bit marginals and
:mod:`repro.core.magnitude` the error PMF; this module completes the
picture with the joint word-level law: ``P(output = v)`` for every
(N+1)-bit value ``v``.  From it fall out quantities the other views
cannot provide exactly -- the output mean/bias of the approximate adder
as a number-producing device, quantiles, and the total-variation
distance to the exact adder's output law.

The DP runs over ``(carry, partial value)`` exactly like the error-PMF
DP; support is bounded by ``2^(N+1)`` so it is practical to ~20 bits
(guarded).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from .exceptions import SupportLimitError
from .recursive import CellSpec, resolve_chain
from .truth_table import ACCURATE
from .types import (
    Probability,
    validate_probability,
    validate_probability_vector,
)


def output_value_pmf(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    max_width: int = 20,
) -> Dict[int, float]:
    """Exact ``{value: probability}`` of the (N+1)-bit output.

    Pass ``cell="accurate"`` for the exact adder's output law (i.e. the
    distribution of ``a + b + cin`` itself).
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    if n > max_width:
        raise SupportLimitError(
            f"output-value PMF at width {n} would hold up to 2^{n + 1} "
            f"entries (max_width={max_width}); raise max_width "
            "explicitly if you mean it",
            width=n, entries=1 << (n + 1), limit=max_width,
        )
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))

    # carry -> {partial value: probability}
    states: Dict[int, Dict[int, float]] = {}
    if pc < 1.0:
        states[0] = {0: 1.0 - pc}
    if pc > 0.0:
        states[1] = {0: pc}

    for i, table in enumerate(cells):
        nxt: Dict[int, Dict[int, float]] = {}
        for carry, dist in states.items():
            for a in (0, 1):
                wa = pa[i] if a else 1.0 - pa[i]
                if wa == 0.0:
                    continue
                for b in (0, 1):
                    wb = pb[i] if b else 1.0 - pb[i]
                    w = wa * wb
                    if w == 0.0:
                        continue
                    s, c = table.evaluate(a, b, carry)
                    bucket = nxt.setdefault(c, {})
                    inc = s << i
                    for value, prob in dist.items():
                        key = value + inc
                        bucket[key] = bucket.get(key, 0.0) + prob * w
        states = nxt

    pmf: Dict[int, float] = {}
    for carry, dist in states.items():
        inc = carry << n
        for value, prob in dist.items():
            key = value + inc
            pmf[key] = pmf.get(key, 0.0) + prob
    return {v: p for v, p in pmf.items() if p > 0.0}


def output_mean(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> float:
    """Exact expected output value, in O(width) time.

    Linearity of expectation over the per-bit marginals of
    :func:`repro.core.sum_analysis.sum_bit_probabilities` plus the final
    carry marginal -- no PMF needed, so any width works.
    """
    from .sum_analysis import carry_profile, sum_bit_probabilities

    cells = resolve_chain(cell, width)
    n = len(cells)
    sums = sum_bit_probabilities(cells, None, p_a, p_b, p_cin)
    carries = carry_profile(cells, None, p_a, p_b, p_cin)
    mean = sum(float(p) * (1 << i) for i, p in enumerate(sums))
    return mean + float(carries[-1]) * (1 << n)


def output_bias(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> float:
    """Exact mean signed error ``E[approx] - E[exact]`` (the DC offset an
    approximate adder injects into a datapath)."""
    cells = resolve_chain(cell, width)
    approx = output_mean(cells, None, p_a, p_b, p_cin)
    exact = output_mean([ACCURATE] * len(cells), None, p_a, p_b, p_cin)
    return approx - exact


def total_variation_distance(
    pmf_a: Dict[int, float], pmf_b: Dict[int, float]
) -> float:
    """``TV(P, Q) = 0.5 * sum |P(v) - Q(v)|`` between two value PMFs."""
    support = set(pmf_a) | set(pmf_b)
    return 0.5 * sum(
        abs(pmf_a.get(v, 0.0) - pmf_b.get(v, 0.0)) for v in support
    )
