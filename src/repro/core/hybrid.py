"""Hybrid multi-stage adders: a different LPAA cell per bit position.

The paper's §5 observes that cells specialise -- LPAA 7 wins at low
input-one-probability, LPAA 1 at high -- and proposes "hybrid multistage
low power adders using more than one type of LPAA", analysed with the
same recursion by swapping the M/K/L masks per stage.
:class:`HybridChain` is that object: an immutable per-stage cell
assignment with analysis conveniences on top of
:mod:`repro.core.recursive`.

A compact spec string builds common layouts:

>>> HybridChain.from_spec("LPAA7:3, LPAA1:2").describe()
'LPAA 7 x3 | LPAA 1 x2'
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from .adders import get_cell
from .exceptions import ChainLengthError
from .magnitude import ErrorMoments, error_moments, error_pmf
from .recursive import (
    CellSpec,
    ChainAnalysisResult,
    analyze_chain,
    resolve_cell,
)
from .truth_table import FullAdderTruthTable
from .types import Probability


class HybridChain:
    """An N-stage ripple adder with an explicit cell choice per stage.

    Stage 0 is the least-significant bit.  Uniform chains are the
    special case where every stage holds the same cell.
    """

    __slots__ = ("_cells",)

    def __init__(self, cells: Sequence[CellSpec]):
        resolved = [resolve_cell(c) for c in cells]
        if not resolved:
            raise ChainLengthError("a hybrid chain needs at least one stage", 0)
        self._cells: Tuple[FullAdderTruthTable, ...] = tuple(resolved)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def uniform(cls, cell: CellSpec, width: int) -> "HybridChain":
        """A chain using *cell* at all *width* stages."""
        if width < 1:
            raise ChainLengthError(f"width must be >= 1, got {width}", width)
        return cls([resolve_cell(cell)] * width)

    @classmethod
    def from_spec(cls, spec: str) -> "HybridChain":
        """Parse ``"name:count, name:count, ..."`` (LSB segment first).

        A bare ``name`` means one stage.  Whitespace is ignored.
        """
        cells: List[FullAdderTruthTable] = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, _, count_text = chunk.partition(":")
            count = 1
            if count_text:
                try:
                    count = int(count_text)
                except ValueError:
                    raise ChainLengthError(
                        f"bad segment count in spec chunk {chunk!r}"
                    ) from None
            if count < 1:
                raise ChainLengthError(
                    f"segment count must be >= 1 in chunk {chunk!r}"
                )
            cells.extend([get_cell(name)] * count)
        if not cells:
            raise ChainLengthError(f"empty hybrid spec {spec!r}", 0)
        return cls(cells)

    # -- basic protocol ----------------------------------------------------------

    @property
    def cells(self) -> Tuple[FullAdderTruthTable, ...]:
        """Per-stage truth tables, LSB first."""
        return self._cells

    @property
    def width(self) -> int:
        """Number of stages N."""
        return len(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __getitem__(self, index: int) -> FullAdderTruthTable:
        return self._cells[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HybridChain):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(self._cells)

    def __repr__(self) -> str:
        return f"HybridChain({self.describe()!r})"

    def is_uniform(self) -> bool:
        """``True`` when a single cell type is used throughout."""
        return len(set(self._cells)) == 1

    def segments(self) -> List[Tuple[FullAdderTruthTable, int]]:
        """Run-length encoding ``[(cell, count), ...]`` from the LSB."""
        runs: List[Tuple[FullAdderTruthTable, int]] = []
        for cell in self._cells:
            if runs and runs[-1][0] == cell:
                runs[-1] = (cell, runs[-1][1] + 1)
            else:
                runs.append((cell, 1))
        return runs

    def describe(self) -> str:
        """Human-readable segment summary, e.g. ``'LPAA 7 x3 | LPAA 1 x2'``."""
        return " | ".join(f"{cell.name} x{n}" for cell, n in self.segments())

    def spec(self) -> str:
        """Round-trippable spec string (``from_spec(chain.spec()) == chain``)."""
        return ", ".join(f"{cell.name}:{n}" for cell, n in self.segments())

    def cell_histogram(self) -> Dict[str, int]:
        """``{cell name: stage count}`` composition of the chain."""
        histogram: Dict[str, int] = {}
        for cell in self._cells:
            histogram[cell.name] = histogram.get(cell.name, 0) + 1
        return histogram

    def replaced(self, index: int, cell: CellSpec) -> "HybridChain":
        """A copy with stage *index* swapped for *cell* (supports negatives)."""
        cells = list(self._cells)
        cells[index] = resolve_cell(cell)
        return HybridChain(cells)

    # -- analyses ------------------------------------------------------------------

    def analyze(
        self,
        p_a: Union[Probability, Sequence[Probability]] = 0.5,
        p_b: Union[Probability, Sequence[Probability]] = 0.5,
        p_cin: Probability = 0.5,
        keep_trace: bool = False,
    ) -> ChainAnalysisResult:
        """Run the paper's recursion on this chain."""
        return analyze_chain(
            self._cells, None, p_a, p_b, p_cin, keep_trace=keep_trace
        )

    def error_probability(
        self,
        p_a: Union[Probability, Sequence[Probability]] = 0.5,
        p_b: Union[Probability, Sequence[Probability]] = 0.5,
        p_cin: Probability = 0.5,
    ) -> Probability:
        """``P(Error)`` of the chain at the given probability point."""
        return self.analyze(p_a, p_b, p_cin).p_error

    def error_pmf(
        self,
        p_a: Union[Probability, Sequence[Probability]] = 0.5,
        p_b: Union[Probability, Sequence[Probability]] = 0.5,
        p_cin: Probability = 0.5,
        **kwargs,
    ) -> Dict[int, float]:
        """Exact PMF of the arithmetic error (see :mod:`repro.core.magnitude`)."""
        return error_pmf(self._cells, None, p_a, p_b, p_cin, **kwargs)

    def error_moments(
        self,
        p_a: Union[Probability, Sequence[Probability]] = 0.5,
        p_b: Union[Probability, Sequence[Probability]] = 0.5,
        p_cin: Probability = 0.5,
    ) -> ErrorMoments:
        """Exact mean/second-moment of the arithmetic error."""
        return error_moments(self._cells, None, p_a, p_b, p_cin)
