"""Shared primitive types and validation helpers.

This module is deliberately tiny and dependency-light: it owns the two
conventions the whole library hangs off of:

* **Row ordering** -- every 1-bit full-adder truth table, probability
  vector (IPM) and mask matrix indexes its 8 rows by
  ``row_index(a, b, cin) = a*4 + b*2 + cin``, i.e. rows run
  ``000, 001, 010, ... , 111`` with ``A`` the most significant selector
  and ``Cin`` the least significant, exactly like Table 1 of the paper.

* **Probability convention** -- ``P(X_i)`` always denotes the
  probability that bit ``X_i`` equals 1.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple, Union

from .exceptions import ProbabilityError, TruthTableError

#: A probability value.  Floats are the common case; ``fractions.Fraction``
#: is supported end-to-end by the scalar engine for digit-exact results.
Probability = Union[float, Fraction]

#: A single bit.
Bit = int

#: One truth-table row output: ``(sum, carry_out)``.
RowOutput = Tuple[Bit, Bit]

#: Number of rows in a full-adder truth table (3 inputs -> 2**3).
NUM_ROWS = 8


def row_index(a: Bit, b: Bit, cin: Bit) -> int:
    """Return the canonical truth-table row index for inputs ``(a, b, cin)``.

    >>> row_index(0, 0, 0), row_index(1, 1, 1), row_index(0, 1, 1)
    (0, 7, 3)
    """
    return (a << 2) | (b << 1) | cin


def row_inputs(index: int) -> Tuple[Bit, Bit, Bit]:
    """Inverse of :func:`row_index`: return ``(a, b, cin)`` for a row index.

    >>> row_inputs(5)
    (1, 0, 1)
    """
    if not 0 <= index < NUM_ROWS:
        raise TruthTableError(f"row index must be in [0, 8), got {index!r}")
    return (index >> 2) & 1, (index >> 1) & 1, index & 1


def all_rows() -> Iterable[Tuple[int, Bit, Bit, Bit]]:
    """Yield ``(index, a, b, cin)`` for all eight truth-table rows in order."""
    for index in range(NUM_ROWS):
        a, b, cin = row_inputs(index)
        yield index, a, b, cin


def validate_bit(value: object, name: str = "bit") -> Bit:
    """Validate that *value* is 0 or 1 and return it as an ``int``."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int) and value in (0, 1):
        return value
    raise TruthTableError(f"{name} must be 0 or 1, got {value!r}")


def validate_probability(value: object, name: str = "probability") -> Probability:
    """Validate that *value* is a number in ``[0, 1]`` and return it.

    Accepts ``int``, ``float``, ``numpy`` scalars (anything that compares
    against 0 and 1) and ``fractions.Fraction``.  Rejects NaN and
    infinities explicitly (a NaN compares False against every bound, so
    a plain range check would report the misleading "not within [0, 1]"
    -- or, worse, a NaN that bypasses validation poisons every
    downstream sum without raising at all).
    """
    if isinstance(value, bool):
        raise ProbabilityError(f"{name} must be numeric, got bool {value!r}")
    try:
        in_range = 0 <= value <= 1  # type: ignore[operator]
    except TypeError as exc:
        raise ProbabilityError(f"{name} must be numeric, got {value!r}") from exc
    if isinstance(value, Fraction):
        if not in_range:
            raise ProbabilityError(
                f"{name} must be within [0, 1], got {value!r}"
            )
        return value
    as_float = float(value)  # also canonicalises ints and numpy scalars
    if not math.isfinite(as_float):
        raise ProbabilityError(
            f"{name} must be a finite probability, got {as_float!r}"
        )
    if not in_range:
        raise ProbabilityError(f"{name} must be within [0, 1], got {value!r}")
    return as_float


def validate_probability_vector(
    values: Union[Probability, Sequence[Probability]],
    length: int,
    name: str = "probabilities",
) -> List[Probability]:
    """Validate and broadcast a probability spec to a list of *length*.

    A scalar is broadcast to every position; a sequence must have exactly
    *length* elements.  Every element is range-checked.
    """
    if length < 1:
        raise ProbabilityError(f"{name}: length must be >= 1, got {length}")
    if isinstance(values, (int, float, Fraction)) and not isinstance(values, bool):
        p = validate_probability(values, name)
        return [p] * length
    try:
        items = list(values)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ProbabilityError(
            f"{name} must be a number or a sequence, got {values!r}"
        ) from exc
    if len(items) != length:
        raise ProbabilityError(
            f"{name} must have exactly {length} entries, got {len(items)}"
        )
    return [
        validate_probability(item, f"{name}[{i}]") for i, item in enumerate(items)
    ]


def complement(p: Probability) -> Probability:
    """Return ``1 - p`` preserving ``Fraction`` exactness."""
    if isinstance(p, Fraction):
        return Fraction(1) - p
    return 1.0 - p


def bits_of(value: int, width: int) -> List[Bit]:
    """Little-endian bit decomposition of *value* over *width* bits.

    >>> bits_of(6, 4)
    [0, 1, 1, 0]
    """
    if value < 0:
        raise TruthTableError(f"value must be non-negative, got {value}")
    if value >= 1 << width:
        raise TruthTableError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def int_of(bits: Sequence[Bit]) -> int:
    """Inverse of :func:`bits_of`: little-endian bits to integer.

    >>> int_of([0, 1, 1, 0])
    6
    """
    out = 0
    for i, bit in enumerate(bits):
        out |= validate_bit(bit, f"bits[{i}]") << i
    return out
