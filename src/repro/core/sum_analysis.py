"""Marginal sum/carry statistics of approximate chains (paper §4.2, last
paragraph: "The probability of output sum bits can also be evaluated
using a similar matrices based approach").

Two levels of analysis live here:

* **Unconditioned marginals** of the approximate chain itself --
  :func:`carry_profile` and :func:`sum_bit_probabilities` track the
  actual carry distribution through the chain (no success filtering)
  using the carry masks of
  :func:`repro.core.matrices.derive_carry_matrices`.

* **Joint approximate/exact tracking** -- :func:`joint_carry_profile`
  and :func:`bit_error_probabilities` run the approximate and the exact
  carry chains *jointly* (a 4-state DP over
  ``(approx carry, exact carry)``), which yields the exact per-bit
  probability that output bit *i* differs from the accurate sum.  This
  is strictly more informative than the paper's single ``P(Error)``
  number and is the foundation of :mod:`repro.core.magnitude`.

All functions accept hybrid chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .matrices import derive_carry_matrices, derive_sum_matrix
from .recursive import CellSpec, build_ipm, mask_dot, resolve_chain
from .truth_table import ACCURATE
from .types import (
    Probability,
    complement,
    validate_probability,
    validate_probability_vector,
)


def carry_profile(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> List[Probability]:
    """Probability that each carry (including C_in) of the *approximate*
    chain is 1, **without** success conditioning.

    Returns ``N + 1`` values: ``[P(c_0=1), ..., P(c_N=1)]`` where ``c_0``
    is the external carry-in and ``c_N`` the final carry-out.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = validate_probability_vector(p_a, n, "p_a")
    pb = validate_probability_vector(p_b, n, "p_b")
    pc = validate_probability(p_cin, "p_cin")

    profile: List[Probability] = [pc]
    c1: Probability = pc
    for i, table in enumerate(cells):
        mask_c1, _ = derive_carry_matrices(table)
        ipm = build_ipm(pa[i], pb[i], c1, complement(c1))
        c1 = mask_dot(ipm, mask_c1)
        profile.append(c1)
    return profile


def sum_bit_probabilities(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> List[Probability]:
    """Probability that each approximate output sum bit is 1.

    Uses the unconditioned carry marginals, which is exact because each
    stage's inputs ``(A_i, B_i)`` are independent of its carry-in.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = validate_probability_vector(p_a, n, "p_a")
    pb = validate_probability_vector(p_b, n, "p_b")
    pc = validate_probability(p_cin, "p_cin")

    out: List[Probability] = []
    c1: Probability = pc
    for i, table in enumerate(cells):
        mask_c1, _ = derive_carry_matrices(table)
        mask_s1 = derive_sum_matrix(table)
        ipm = build_ipm(pa[i], pb[i], c1, complement(c1))
        out.append(mask_dot(ipm, mask_s1))
        c1 = mask_dot(ipm, mask_c1)
    return out


@dataclass(frozen=True)
class JointCarryState:
    """Joint distribution of ``(approximate carry, exact carry)`` at one
    chain position.  ``p[ca][ce]`` is ``P(c_approx = ca, c_exact = ce)``."""

    p00: float
    p01: float
    p10: float
    p11: float

    def as_matrix(self) -> np.ndarray:
        """2x2 matrix indexed ``[approx][exact]``."""
        return np.array([[self.p00, self.p01], [self.p10, self.p11]])

    @property
    def p_diverged(self) -> float:
        """Probability that the two carry chains currently disagree."""
        return self.p01 + self.p10

    @property
    def p_approx_one(self) -> float:
        """Marginal ``P(c_approx = 1)``."""
        return self.p10 + self.p11

    @property
    def p_exact_one(self) -> float:
        """Marginal ``P(c_exact = 1)``."""
        return self.p01 + self.p11

    def total(self) -> float:
        """Total mass (== 1 up to rounding); exposed for invariants tests."""
        return self.p00 + self.p01 + self.p10 + self.p11


def joint_carry_profile(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> List[JointCarryState]:
    """Track ``(approx, exact)`` carries jointly through the chain.

    Returns ``N + 1`` states; state 0 is the (shared) external carry-in,
    state ``i`` the carries *entering* stage ``i`` (so the last entry is
    the final carry-out pair of the whole adder).
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))

    # joint[ca][ce]; both chains share the external carry-in.
    joint = np.zeros((2, 2))
    joint[0][0] = 1.0 - pc
    joint[1][1] = pc
    states = [JointCarryState(joint[0, 0], joint[0, 1], joint[1, 0], joint[1, 1])]

    for i, table in enumerate(cells):
        nxt = np.zeros((2, 2))
        for ca in (0, 1):
            for ce in (0, 1):
                mass = joint[ca, ce]
                if mass == 0.0:
                    continue
                for a in (0, 1):
                    wa = pa[i] if a else 1.0 - pa[i]
                    if wa == 0.0:
                        continue
                    for b in (0, 1):
                        wb = pb[i] if b else 1.0 - pb[i]
                        if wb == 0.0:
                            continue
                        _, ca_next = table.evaluate(a, b, ca)
                        _, ce_next = ACCURATE.evaluate(a, b, ce)
                        nxt[ca_next, ce_next] += mass * wa * wb
        joint = nxt
        states.append(
            JointCarryState(joint[0, 0], joint[0, 1], joint[1, 0], joint[1, 1])
        )
    return states


def bit_error_probabilities(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> Tuple[List[float], float]:
    """Exact marginal probability that each output bit is wrong.

    Returns ``(sum_bit_errors, carry_out_error)`` where
    ``sum_bit_errors[i] = P(approx sum bit i != exact sum bit i)`` and
    ``carry_out_error = P(approx c_out != exact c_out)``.  These are
    exact marginals (bit errors are *not* independent across positions,
    so they do not multiply into a word-level error probability -- use
    :func:`repro.core.recursive.analyze_chain` for that).
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))

    joint = np.zeros((2, 2))
    joint[0][0] = 1.0 - pc
    joint[1][1] = pc

    errors: List[float] = []
    for i, table in enumerate(cells):
        nxt = np.zeros((2, 2))
        mismatch = 0.0
        for ca in (0, 1):
            for ce in (0, 1):
                mass = joint[ca, ce]
                if mass == 0.0:
                    continue
                for a in (0, 1):
                    wa = pa[i] if a else 1.0 - pa[i]
                    for b in (0, 1):
                        wb = pb[i] if b else 1.0 - pb[i]
                        w = mass * wa * wb
                        if w == 0.0:
                            continue
                        sa, ca_next = table.evaluate(a, b, ca)
                        se, ce_next = ACCURATE.evaluate(a, b, ce)
                        if sa != se:
                            mismatch += w
                        nxt[ca_next, ce_next] += w
        errors.append(mismatch)
        joint = nxt
    carry_error = float(joint[0, 1] + joint[1, 0])
    return errors, carry_error
