"""Error-masking analysis: when is the paper's ``P(Error)`` exact?

The recursion computes the probability that *every stage* reproduces the
accurate full adder's sum and carry.  An adder's final output could in
principle still be numerically correct after an internal carry
divergence -- the wrong carry would have to enter the next stage, leave
that stage's sum bit untouched, and the two carry chains re-converge
before (or at) the MSB.  When that can happen, the recursion's
``P(Error)`` is a strict *upper bound* on the true word-level error
probability rather than exact.

This module decides the question structurally (no probabilities
involved) with a reachability search over the 8-state space
``(approx carry, exact carry, any-stage-erred)``:

* :func:`chain_is_exact` -- exactness of the recursion for one concrete
  (possibly hybrid) chain;
* :func:`masking_analysis` -- per-cell report, including whether *any*
  uniform chain width can mask.

For all seven paper LPAAs masking is impossible (each divergence
immediately corrupts an output bit), which is why the paper's
exhaustive-simulation validation matches bit-perfectly; the test suite
pins this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from .recursive import CellSpec, resolve_chain
from .truth_table import ACCURATE, ErrorCase, FullAdderTruthTable

#: Search state: (carry of the approximate chain, carry of the exact
#: chain, has any stage so far deviated from the accurate adder).
_State = Tuple[int, int, bool]


def _initial_states() -> Set[_State]:
    # Both chains share the external carry-in and no stage has run yet.
    return {(0, 0, False), (1, 1, False)}


def _correct_output_transitions(
    table: FullAdderTruthTable, state: _State
) -> Set[_State]:
    """All successor states of one stage that keep the output bit correct.

    A transition exists for each operand pair ``(a, b)`` whose
    approximate sum (computed with the approximate carry) matches the
    exact sum (computed with the exact carry).  The *erred* flag is set
    whenever the stage's behaviour on its own inputs deviates from the
    accurate adder, i.e. the stage is a non-success in the paper's
    sense.
    """
    ca, ce, erred = state
    successors: Set[_State] = set()
    for a in (0, 1):
        for b in (0, 1):
            sum_approx, ca_next = table.evaluate(a, b, ca)
            sum_exact, ce_next = ACCURATE.evaluate(a, b, ce)
            if sum_approx != sum_exact:
                continue  # output bit wrong: path cannot be fully correct
            stage_ok = table.evaluate(a, b, ca) == ACCURATE.evaluate(a, b, ca)
            successors.add((ca_next, ce_next, erred or not stage_ok))
    return successors


def chain_is_exact(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
) -> bool:
    """``True`` iff the recursion's ``P(Error)`` is exact for this chain.

    Exactness fails iff some input assignment produces a fully correct
    (N+1)-bit output even though a stage deviated from the accurate
    adder.  We search for such an assignment over the 8-state space; the
    chain is exact when no accepting state (``carry chains converged``
    and ``erred``) is reachable at the end.
    """
    cells = resolve_chain(cell, width)
    states = _initial_states()
    for table in cells:
        states = {
            succ for state in states
            for succ in _correct_output_transitions(table, state)
        }
        if not states:
            return True  # no fully-correct path survives at all
    return not any(ca == ce and erred for ca, ce, erred in states)


@dataclass(frozen=True)
class MaskingReport:
    """Structural masking analysis of a single cell."""

    cell_name: str
    #: Error cases whose sum bit is still correct (only these can start
    #: a silent carry divergence).
    silent_divergence_cases: Tuple[ErrorCase, ...]
    #: True iff some uniform chain width of this cell can mask an error,
    #: making the recursion a strict upper bound at that width.
    can_mask_at_some_width: bool

    @property
    def recursion_is_always_exact(self) -> bool:
        """Recursion == true word-level error at every width."""
        return not self.can_mask_at_some_width


def masking_analysis(cell: CellSpec) -> MaskingReport:
    """Analyse whether uniform chains of *cell* can ever mask an error.

    Runs the reachability search to a fixpoint: since the state space
    has only eight elements, the set of states reachable after ``k``
    stages stabilises quickly, and masking is possible iff an accepting
    state ``(c, c, erred=True)`` ever appears.
    """
    table = resolve_chain(cell, 1)[0]
    silent = tuple(
        case for case in table.error_cases()
        if not case.sum_wrong and case.cout_wrong
    )

    seen_frontiers: Set[FrozenSet[_State]] = set()
    states = _initial_states()
    can_mask = False
    while True:
        states = {
            succ for state in states
            for succ in _correct_output_transitions(table, state)
        }
        if any(ca == ce and erred for ca, ce, erred in states):
            can_mask = True
            break
        frozen = frozenset(states)
        if frozen in seen_frontiers or not states:
            break
        seen_frontiers.add(frozen)

    return MaskingReport(
        cell_name=table.name,
        silent_divergence_cases=silent,
        can_mask_at_some_width=can_mask,
    )


def masking_summary(cells: Sequence[CellSpec]) -> List[MaskingReport]:
    """Run :func:`masking_analysis` over several cells."""
    return [masking_analysis(cell) for cell in cells]
