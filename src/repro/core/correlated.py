"""The recursion under *correlated* operand bits.

The paper (like the prior work it cites) assumes all input bits are
statistically independent.  Real operands often are not: sign-extended
values, ``a + a``-style self-additions, or operands derived from a
shared source correlate ``A_i`` with ``B_i``.  The recursion survives
this generalisation untouched, because independence is only used to
factor the per-stage input mass: replacing the product
``P(A_i) * P(B_i)`` with a joint distribution ``P(A_i = a, B_i = b)``
keeps every other step identical (the carry state is still independent
of the *current* stage's fresh operand bits).

What this module supports -- and what it cannot: correlation **within**
a stage (between ``A_i`` and ``B_i``) is exact; correlation **across**
stages (``A_i`` with ``A_j``) would enlarge the carry state and is out
of scope, as in the paper.

* :class:`JointBitDistribution` -- one stage's ``2x2`` operand law;
* :func:`analyze_chain_correlated` -- Algorithm 1 over joint laws;
* helpers for the common cases (independent, identical operands,
  complementary operands).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from .._compat import warn_deprecated
from .exceptions import ProbabilityError
from .matrices import derive_matrices
from .recursive import CellSpec, resolve_chain
from .types import Probability, validate_probability


@dataclass(frozen=True)
class JointBitDistribution:
    """Joint law of one stage's operand bits: ``p[a][b] = P(A=a, B=b)``."""

    p00: float
    p01: float
    p10: float
    p11: float

    def __post_init__(self) -> None:
        values = (self.p00, self.p01, self.p10, self.p11)
        if any(v < -1e-12 or v > 1 + 1e-12 for v in values):
            raise ProbabilityError(
                f"joint probabilities out of [0, 1]: {values}"
            )
        total = sum(values)
        if abs(total - 1.0) > 1e-9:
            raise ProbabilityError(
                f"joint distribution sums to {total!r}, expected 1"
            )

    @classmethod
    def independent(
        cls, p_a: Probability, p_b: Probability
    ) -> "JointBitDistribution":
        """The paper's setting: ``P(A=a) * P(B=b)``."""
        pa = float(validate_probability(p_a, "p_a"))
        pb = float(validate_probability(p_b, "p_b"))
        return cls(
            p00=(1 - pa) * (1 - pb),
            p01=(1 - pa) * pb,
            p10=pa * (1 - pb),
            p11=pa * pb,
        )

    @classmethod
    def identical(cls, p: Probability) -> "JointBitDistribution":
        """Both operands share the same bit (``a + a``): A == B always."""
        q = float(validate_probability(p, "p"))
        return cls(p00=1 - q, p01=0.0, p10=0.0, p11=q)

    @classmethod
    def complementary(cls, p: Probability) -> "JointBitDistribution":
        """``B = NOT A`` (e.g. ``a + ~a`` in two's-complement negation)."""
        q = float(validate_probability(p, "p"))
        return cls(p00=0.0, p01=1 - q, p10=q, p11=0.0)

    def weight(self, a: int, b: int) -> float:
        """``P(A = a, B = b)``."""
        return (self.p00, self.p01, self.p10, self.p11)[a * 2 + b]

    @property
    def correlation_free(self) -> bool:
        """True when the law factors into independent marginals."""
        pa = self.p10 + self.p11
        pb = self.p01 + self.p11
        return abs(self.p11 - pa * pb) < 1e-12


def analyze_chain_correlated(
    cell: Union[CellSpec, Sequence[CellSpec]],
    joints: Sequence[JointBitDistribution],
    p_cin: Probability = 0.5,
    width: Optional[int] = None,
) -> Tuple[float, List[Tuple[float, float]]]:
    """Algorithm 1 with per-stage joint operand laws.

    Returns ``(p_success, trace)`` where *trace* holds the
    success-conditioned ``(P(C̄∩S), P(C∩S))`` entering each stage.
    """
    cells = resolve_chain(cell, width if width is not None else len(joints))
    if len(joints) != len(cells):
        raise ProbabilityError(
            f"need one joint distribution per stage: got {len(joints)} "
            f"for {len(cells)} stages"
        )
    pc = float(validate_probability(p_cin, "p_cin"))

    c1, c0 = pc, 1.0 - pc
    trace: List[Tuple[float, float]] = []
    p_success = 0.0
    n = len(cells)
    for i, (table, joint) in enumerate(zip(cells, joints)):
        trace.append((c0, c1))
        mkl = derive_matrices(table)
        ipm = [
            joint.weight(row >> 2, (row >> 1) & 1) * (c1 if row & 1 else c0)
            for row in range(8)
        ]
        if i == n - 1:
            p_success = sum(v for v, bit in zip(ipm, mkl.l) if bit)
        else:
            c1 = sum(v for v, bit in zip(ipm, mkl.m) if bit)
            c0 = sum(v for v, bit in zip(ipm, mkl.k) if bit)
    return p_success, trace


def error_probability_correlated(
    cell: Union[CellSpec, Sequence[CellSpec]],
    joints: Sequence[JointBitDistribution],
    p_cin: Probability = 0.5,
    width: Optional[int] = None,
) -> float:
    """``1 - P(Succ)`` under per-stage joint operand laws.

    .. deprecated::
        Call ``repro.engine.run(cell, width, p_cin=..., joints=...)``
        instead; :func:`analyze_chain_correlated` remains the
        non-deprecated primitive.
    """
    warn_deprecated("core.correlated.error_probability_correlated",
                    "repro.engine.run(..., joints=...)")
    p_success, _ = analyze_chain_correlated(cell, joints, p_cin, width)
    return 1.0 - p_success


def self_addition_error(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: int,
    p: Probability = 0.5,
    p_cin: Probability = 0.0,
) -> float:
    """Error probability of computing ``a + a`` (a doubling circuit).

    A common datapath special case with perfectly correlated operands:
    the independence assumption can be badly wrong here, which this
    exact analysis quantifies.
    """
    joints = [JointBitDistribution.identical(p)] * width
    p_success, _ = analyze_chain_correlated(cell, joints, p_cin, width)
    return 1.0 - p_success
