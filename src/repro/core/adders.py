"""Built-in approximate adder cells (paper Tables 1 and 2) and a registry.

The seven low-power approximate adder cells analysed in the paper come
from two prior works:

* **LPAA 1-5** -- Gupta et al., "Low-Power Digital Signal Processing
  using Approximate Adders", IEEE TCAD 2013 (paper ref [7]).
* **LPAA 6-7** -- Almurib et al., "Inexact Designs for Approximate Low
  Power Addition by Cell Replacement", DATE 2016 (paper ref [1]).
  (That work's "Approximate Adder 3" shares LPAA 2's truth table and is
  therefore folded into LPAA 2, exactly as the paper does.)

Rows are ordered ``(A, B, Cin) = 000 .. 111`` as everywhere in this
library.  :data:`CELL_CHARACTERISTICS` carries the published power/area
numbers of Table 2 verbatim; they are *inputs* to the paper, used here by
:mod:`repro.circuits.power` for calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .exceptions import RegistryError
from .truth_table import ACCURATE, FullAdderTruthTable

#: The exact full adder, re-exported for convenience.
ACCURATE_CELL = ACCURATE

LPAA1 = FullAdderTruthTable(
    [(0, 0), (1, 0), (0, 1), (0, 1), (0, 0), (0, 1), (0, 1), (1, 1)],
    name="LPAA 1",
)
LPAA2 = FullAdderTruthTable(
    [(1, 0), (1, 0), (1, 0), (0, 1), (1, 0), (0, 1), (0, 1), (0, 1)],
    name="LPAA 2",
)
LPAA3 = FullAdderTruthTable(
    [(1, 0), (1, 0), (0, 1), (0, 1), (1, 0), (0, 1), (0, 1), (0, 1)],
    name="LPAA 3",
)
LPAA4 = FullAdderTruthTable(
    [(0, 0), (1, 0), (0, 0), (1, 0), (0, 1), (0, 1), (0, 1), (1, 1)],
    name="LPAA 4",
)
LPAA5 = FullAdderTruthTable(
    [(0, 0), (0, 0), (1, 0), (1, 0), (0, 1), (0, 1), (1, 1), (1, 1)],
    name="LPAA 5",
)
LPAA6 = FullAdderTruthTable(
    [(0, 0), (1, 1), (1, 0), (0, 1), (1, 0), (0, 1), (0, 0), (1, 1)],
    name="LPAA 6",
)
LPAA7 = FullAdderTruthTable(
    [(0, 0), (1, 0), (1, 0), (1, 1), (1, 0), (1, 1), (0, 1), (1, 1)],
    name="LPAA 7",
)

#: The seven paper cells in index order (``PAPER_LPAAS[0]`` is LPAA 1).
PAPER_LPAAS: Tuple[FullAdderTruthTable, ...] = (
    LPAA1,
    LPAA2,
    LPAA3,
    LPAA4,
    LPAA5,
    LPAA6,
    LPAA7,
)


@dataclass(frozen=True)
class CellCharacteristics:
    """Published single-cell metrics from paper Table 2 (Gupta et al. [7]).

    ``power_nw`` is dynamic power in nanowatts and ``area_ge`` is area in
    gate equivalents, both as printed in the paper.  LPAA 6/7 come from a
    different process/flow in [1] and have no Table 2 row, hence
    ``None``.  LPAA 5's printed 0 nW / 0 GE reflects that the cell
    degenerates to wiring (sum = Cin is not literally true -- see its
    table -- but the published figure is kept verbatim).
    """

    error_cases: int
    power_nw: Optional[float]
    area_ge: Optional[float]
    source: str


#: Table 2 of the paper, keyed by canonical cell name.
CELL_CHARACTERISTICS: Dict[str, CellCharacteristics] = {
    "LPAA 1": CellCharacteristics(2, 771.0, 4.23, "Gupta et al. [7]"),
    "LPAA 2": CellCharacteristics(2, 294.0, 1.94, "Gupta et al. [7]"),
    "LPAA 3": CellCharacteristics(3, 198.0, 1.59, "Gupta et al. [7]"),
    "LPAA 4": CellCharacteristics(3, 416.0, 1.76, "Gupta et al. [7]"),
    "LPAA 5": CellCharacteristics(4, 0.0, 0.0, "Gupta et al. [7]"),
    "LPAA 6": CellCharacteristics(2, None, None, "Almurib et al. [1]"),
    "LPAA 7": CellCharacteristics(2, None, None, "Almurib et al. [1]"),
}


class CellRegistry:
    """Name -> :class:`FullAdderTruthTable` registry with alias support.

    The module-level :data:`registry` instance is pre-populated with the
    accurate adder and the seven paper cells; users may register custom
    cells to make them addressable from the CLI and exploration tools.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, FullAdderTruthTable] = {}

    @staticmethod
    def _canonical(name: str) -> str:
        return "".join(name.lower().split()).replace("_", "").replace("-", "")

    def register(
        self,
        cell: FullAdderTruthTable,
        aliases: Tuple[str, ...] = (),
        overwrite: bool = False,
    ) -> None:
        """Register *cell* under its own name plus any *aliases*."""
        for name in (cell.name, *aliases):
            key = self._canonical(name)
            if not key:
                raise RegistryError(f"empty cell name {name!r}")
            existing = self._cells.get(key)
            if existing is not None and existing != cell and not overwrite:
                raise RegistryError(f"cell name {name!r} already registered")
            self._cells[key] = cell

    def get(self, name: str) -> FullAdderTruthTable:
        """Look up a cell by (case/space/punctuation-insensitive) name."""
        key = self._canonical(name)
        try:
            return self._cells[key]
        except KeyError:
            known = ", ".join(sorted({c.name for c in self._cells.values()}))
            raise RegistryError(
                f"unknown adder cell {name!r}; known cells: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return self._canonical(name) in self._cells

    def names(self) -> List[str]:
        """Sorted unique canonical display names of registered cells."""
        return sorted({cell.name for cell in self._cells.values()})

    def cells(self) -> List[FullAdderTruthTable]:
        """Unique registered cells sorted by display name."""
        by_name = {cell.name: cell for cell in self._cells.values()}
        return [by_name[name] for name in sorted(by_name)]

    def __iter__(self) -> Iterator[FullAdderTruthTable]:
        return iter(self.cells())


#: The default registry with the accurate adder and all paper cells.
registry = CellRegistry()
registry.register(ACCURATE_CELL, aliases=("accurate", "exact", "fa"))
for _i, _cell in enumerate(PAPER_LPAAS, start=1):
    registry.register(_cell, aliases=(f"lpaa{_i}",))

#: Lower-part-OR cell (``sum = a | b``, no carry out) -- the lower part
#: of Mahdiani et al.'s LOA, used by the ``loa``/``loawa`` zoo families
#: (:mod:`repro.core.adder_zoo`).  Rows ordered by ``row_index(a, b, cin)``.
LOA_OR = FullAdderTruthTable(
    [(0, 0), (0, 0), (1, 0), (1, 0), (1, 0), (1, 0), (1, 0), (1, 0)],
    name="LOA-OR",
)

#: LOA boundary cell: ``sum = a | b`` with the carry-generate
#: speculation ``cout = a & b`` feeding the accurate upper part.
LOA_GEN = FullAdderTruthTable(
    [(0, 0), (0, 0), (1, 0), (1, 0), (1, 0), (1, 0), (1, 1), (1, 1)],
    name="LOA-GEN",
)

registry.register(LOA_OR, aliases=("loaor", "or"))
registry.register(LOA_GEN, aliases=("loagen",))


def get_cell(name: str) -> FullAdderTruthTable:
    """Convenience wrapper around ``registry.get`` (the main public entry)."""
    return registry.get(name)


def paper_cell(index: int) -> FullAdderTruthTable:
    """Return LPAA *index* (1-based, matching the paper's numbering)."""
    if not 1 <= index <= len(PAPER_LPAAS):
        raise RegistryError(
            f"paper defines LPAA 1..{len(PAPER_LPAAS)}, got {index}"
        )
    return PAPER_LPAAS[index - 1]
