"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to discriminate failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ProbabilityError(ReproError, ValueError):
    """A probability argument is outside ``[0, 1]`` or has a wrong shape."""


class TruthTableError(ReproError, ValueError):
    """A truth-table definition is malformed (wrong row count, non-bits...)."""


class ChainLengthError(ReproError, ValueError):
    """A multi-bit adder chain has an invalid or inconsistent length."""

    def __init__(self, message: str, length: int | None = None):
        super().__init__(message)
        self.length = length


class RegistryError(ReproError, KeyError):
    """An adder-cell name is unknown to the registry, or already taken."""


class GeArConfigError(ReproError, ValueError):
    """A GeAr (N, R, P) configuration violates the model constraints."""


class NetlistError(ReproError, ValueError):
    """A gate-level netlist is structurally invalid (cycle, missing net...)."""


class SynthesisError(ReproError, RuntimeError):
    """Logic synthesis (Quine-McCluskey / cell construction) failed."""


class AnalysisError(ReproError, RuntimeError):
    """A statistical analysis could not be carried out on the given inputs."""


class SupportLimitError(AnalysisError):
    """An exact distribution DP outgrew its support guard.

    Raised by :func:`repro.core.magnitude.error_pmf` (and friends) when
    the intermediate ``(state, delta)`` support exceeds ``max_entries``,
    and by :func:`repro.core.value_distribution.output_value_pmf` when
    the width exceeds its ``max_width`` guard.  Carries the structured
    context -- *width* of the chain, the offending support size
    (*entries*), the guard that tripped (*limit*) and the DP *stage* --
    so routers and services can degrade (truncate the support, fall back
    to Monte-Carlo) instead of string-matching the message.
    """

    def __init__(
        self,
        message: str,
        width: int | None = None,
        entries: int | None = None,
        limit: int | None = None,
        stage: int | None = None,
    ):
        super().__init__(message)
        self.width = width
        self.entries = entries
        self.limit = limit
        self.stage = stage


class ExplorationError(ReproError, ValueError):
    """A design-space exploration request is inconsistent or infeasible."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is corrupt, missing, or from a different run.

    Raised on resume when the on-disk document cannot be parsed, has the
    wrong format tag, or its configuration fingerprint does not match
    the run being resumed (resuming would silently mix two runs).
    """


class ValidationError(ReproError, RuntimeError):
    """The analytical engine disagrees with its simulation cross-check.

    Carries the structured evidence so callers can log or act on it:
    *analytical* is the recursive P(error), *estimate* the Monte-Carlo
    point estimate and *interval* the ``(lo, hi)`` acceptance interval
    the analytical value fell outside of.
    """

    def __init__(
        self,
        message: str,
        analytical: "float | None" = None,
        estimate: "float | None" = None,
        interval: "tuple[float, float] | None" = None,
    ):
        super().__init__(message)
        self.analytical = analytical
        self.estimate = estimate
        self.interval = interval
