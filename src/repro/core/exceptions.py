"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to discriminate failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ProbabilityError(ReproError, ValueError):
    """A probability argument is outside ``[0, 1]`` or has a wrong shape."""


class TruthTableError(ReproError, ValueError):
    """A truth-table definition is malformed (wrong row count, non-bits...)."""


class ChainLengthError(ReproError, ValueError):
    """A multi-bit adder chain has an invalid or inconsistent length."""

    def __init__(self, message: str, length: int | None = None):
        super().__init__(message)
        self.length = length


class RegistryError(ReproError, KeyError):
    """An adder-cell name is unknown to the registry, or already taken."""


class GeArConfigError(ReproError, ValueError):
    """A GeAr (N, R, P) configuration violates the model constraints."""


class NetlistError(ReproError, ValueError):
    """A gate-level netlist is structurally invalid (cycle, missing net...)."""


class SynthesisError(ReproError, RuntimeError):
    """Logic synthesis (Quine-McCluskey / cell construction) failed."""


class AnalysisError(ReproError, RuntimeError):
    """A statistical analysis could not be carried out on the given inputs."""


class ExplorationError(ReproError, ValueError):
    """A design-space exploration request is inconsistent or infeasible."""
