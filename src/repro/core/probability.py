"""Shared probability-vector normalisation.

Before this module existed, :mod:`repro.core.recursive`,
:mod:`repro.core.vectorized` and :mod:`repro.simulation.montecarlo` each
carried their own near-identical copy of "broadcast a scalar to a
per-bit vector, check the length, reject NaN/inf, cast to float".  They
now share the two helpers below:

* :func:`float_probability_vector` -- the scalar/list convention used by
  every float engine (simulators, GeAr DP, multi-operand analysis,
  hybrid search, the engine layer);
* :func:`probability_grid` / :func:`probability_row` -- the NumPy
  ``(batch, width)`` / ``(batch,)`` broadcasting convention used by the
  vectorised recursion.

The scalar engine keeps using
:func:`repro.core.types.validate_probability_vector` directly because it
alone must preserve ``fractions.Fraction`` exactness.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Union

import numpy as np

from .exceptions import ProbabilityError
from .types import Probability, validate_probability_vector


def float_probability_vector(
    values: Union[Probability, Sequence[Probability]],
    length: int,
    name: str = "probabilities",
) -> List[float]:
    """Validate/broadcast a probability spec to ``length`` floats.

    A scalar broadcasts to every position; a sequence must have exactly
    ``length`` entries.  Every entry is range-checked and NaN/inf are
    rejected with the offending index in the message.
    """
    out = [float(p) for p in validate_probability_vector(values, length, name)]
    for i, p in enumerate(out):
        # validate_probability already rejects non-finite floats; this
        # guards the Fraction->float cast path and keeps the invariant
        # local so future refactors cannot silently drop it.
        if not math.isfinite(p):
            raise ProbabilityError(
                f"{name}[{i}] must be a finite probability, got {p!r}"
            )
    return out


def probability_grid(
    p: object, batch: int, width: int, name: str
) -> np.ndarray:
    """Validate/broadcast a probability spec to a ``(batch, width)`` grid.

    Accepts a scalar, a ``(width,)`` per-bit vector, a ``(batch,)``
    per-point vector, or a full ``(batch, width)`` grid.  Rejects NaN
    and out-of-range entries.
    """
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim == 0:
        grid = np.full((batch, width), float(arr))
    elif arr.ndim == 1:
        if arr.shape[0] == width:
            grid = np.broadcast_to(arr, (batch, width)).copy()
        elif arr.shape[0] == batch:
            grid = np.repeat(arr[:, None], width, axis=1)
        else:
            raise ProbabilityError(
                f"{name}: 1-D input must have length width={width} or "
                f"batch={batch}, got {arr.shape[0]}"
            )
    elif arr.ndim == 2:
        if arr.shape != (batch, width):
            raise ProbabilityError(
                f"{name}: expected shape ({batch}, {width}), got {arr.shape}"
            )
        grid = arr.astype(np.float64, copy=True)
    else:
        raise ProbabilityError(f"{name}: at most 2 dimensions, got {arr.ndim}")
    if np.isnan(grid).any() or (grid < 0).any() or (grid > 1).any():
        raise ProbabilityError(f"{name}: all entries must lie in [0, 1]")
    return grid


def probability_row(p: object, batch: int, name: str) -> np.ndarray:
    """Validate/broadcast a scalar-or-``(batch,)`` spec to a ``(batch,)``
    row (the carry-in convention of the vectorised engines)."""
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim == 0:
        row = np.full(batch, float(arr))
    elif arr.shape == (batch,):
        row = arr.astype(np.float64, copy=True)
    else:
        raise ProbabilityError(
            f"{name}: expected scalar or shape ({batch},), got {arr.shape}"
        )
    if np.isnan(row).any() or (row < 0).any() or (row > 1).any():
        raise ProbabilityError(f"{name}: all entries must lie in [0, 1]")
    return row
