"""The adder-family zoo: published approximate adders as *configs*.

The paper analyses ripple chains of approximate full-adder cells; the
designs people actually benchmark against -- ACA-1/ACA-2, ETA-II, GDA,
GeAr, the lower-part-OR adder and truncated parallel-prefix (AxPPA
style) variants -- approximate the *carry network* instead of the cell.
This module makes every one of them a **config string**
(``"loa:16:8"``, ``"aca1:16:4"``, ``"axppa-ks:16:2"``) rather than a
code change:

* :class:`WindowedAdderSpec` -- one declarative description covering
  every block/segmented/truncated-prefix adder: result bit *i* is bit
  ``i - lows[i]`` of the exact sum of the operand window
  ``[lows[i], i]`` with carry-in 0, and the carry-out comes from the
  window ``[carry_low, N-1]``.  GeAr's overlapping sub-adders, the
  ACA/ETA/GDA block schemes and truncated prefix graphs are all
  instances.
* Exact analyses over the spec: because the windows active at step *i*
  are nested suffixes, their carries are *monotone* (a longer window's
  carry dominates a shorter one's), so the joint carry state collapses
  to a single **cut index** in the sorted window list -- polynomial,
  not exponential.  :func:`windowed_error_probability` (linear ER),
  :func:`windowed_error_pmf` (full error law, guarded),
  :func:`windowed_error_moments` (linear ``E[D]``/``E[D^2]``),
  :func:`windowed_worst_case_error` (linear interval DP, any width) and
  :func:`windowed_joint_error_pmf` (``(D, exact)`` law for MRED) mirror
  :mod:`repro.core.magnitude`'s five-function structure.
* Bit-true functional models (:func:`windowed_add`,
  :func:`windowed_add_array`) and the weighted enumeration oracle
  :func:`windowed_exhaustive_quality` used for cross-validation.
* Parallel-prefix graphs (:func:`prefix_levels`) for Brent-Kung,
  Kogge-Stone, Sklansky and Ladner-Fischer, truncated at a chosen level
  count to produce AxPPA-style approximate prefix adders
  (:func:`truncated_prefix_spec`); at full depth every topology reduces
  to the exact adder.
* The catalog itself: :func:`parse_adder` / :class:`ZooAdder` (config
  string grammar with a canonical render), :data:`ZOO_FAMILIES`
  metadata (grammar, source paper, representation), :func:`named_zoo`
  reference instances per width, and :func:`zoo_cost` -- an abstract
  unit-gate delay/area model for Pareto exploration.

Chain-shaped members (LOA and friends) build plain cell tuples and ride
the existing engines, caches and batch executor untouched; windowed
members are served by the ``zoo-*`` engine family
(:mod:`repro.engine.zoo`).  Every zoo adder adds with carry-in 0 (the
reference is ``a + b``), matching the published designs.

Layering: this module sits in ``core`` and never imports the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .adders import LOA_GEN, LOA_OR
from .exceptions import AnalysisError, SupportLimitError
from .magnitude import ErrorMoments, WorstCaseError
from .truth_table import ACCURATE, FullAdderTruthTable
from .types import Probability, validate_probability_vector

#: Width guard of the weighted-enumeration oracle
#: (:func:`windowed_exhaustive_quality`): ``2^(2N)`` operand pairs.
MAX_WINDOWED_EXHAUSTIVE_WIDTH = 16

#: Entry guard of the guarded DPs, matching
#: :mod:`repro.core.magnitude`'s default.
DEFAULT_MAX_ENTRIES = 2_000_000


# --------------------------------------------------------------------------
# The declarative spec
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WindowedAdderSpec:
    """A block/segmented approximate adder as per-bit operand windows.

    ``lows[i]`` is the lowest operand bit feeding result bit *i*: the
    bit equals ``((a[lows[i]..i] + b[lows[i]..i]) >> (i - lows[i])) & 1``
    with carry-in 0.  ``carry_low`` is the lowest operand bit feeding
    the carry-out (bit N of the result).  ``lows[i] == 0`` everywhere
    and ``carry_low == 0`` is the exact adder.

    Frozen and hashable, so specs key requests, caches and batches.

    >>> spec = WindowedAdderSpec("demo", (0, 0, 1, 2), 2)
    >>> spec.width, spec.is_exact, spec.max_window
    (4, False, 3)
    """

    name: str
    lows: Tuple[int, ...]
    carry_low: int

    def __post_init__(self) -> None:
        n = len(self.lows)
        if n < 1:
            raise AnalysisError("a windowed adder needs at least one bit")
        for i, low in enumerate(self.lows):
            if not 0 <= low <= i:
                raise AnalysisError(
                    f"lows[{i}] = {low} outside [0, {i}] for {self.name!r}"
                )
        if not 0 <= self.carry_low <= n - 1:
            raise AnalysisError(
                f"carry_low = {self.carry_low} outside [0, {n - 1}] "
                f"for {self.name!r}"
            )

    @property
    def width(self) -> int:
        return len(self.lows)

    @property
    def is_exact(self) -> bool:
        """Every window reaches bit 0: the adder is the exact adder."""
        return self.carry_low == 0 and all(low == 0 for low in self.lows)

    @property
    def max_window(self) -> int:
        """Longest operand window feeding any output bit."""
        spans = [i - low + 1 for i, low in enumerate(self.lows)]
        spans.append(self.width - self.carry_low + 1)
        return max(spans)

    def describe(self) -> str:
        return (f"windowed adder {self.name!r}: N={self.width}, "
                f"max window {self.max_window}"
                f"{', exact' if self.is_exact else ''}")


def from_gear(config: object, name: Optional[str] = None) -> WindowedAdderSpec:
    """The windowed spec of a :class:`~repro.gear.config.GeArConfig`.

    Result bit *t* belongs to sub-adder ``max(0, (t - P) // R)`` whose
    window starts at ``R * j``; the carry-out comes from the last
    sub-adder's window.  Bit-identical to
    :func:`repro.gear.functional.gear_add` (property-tested).
    """
    n, r, p = config.n, config.r, config.p  # type: ignore[attr-defined]
    lows = tuple(
        max(0, ((t - p) // r)) * r if t >= r + p else 0 for t in range(n)
    )
    k = config.num_subadders  # type: ignore[attr-defined]
    return WindowedAdderSpec(
        name=name or f"gear:{n}:{r}:{p}",
        lows=lows,
        carry_low=(k - 1) * r,
    )


# --------------------------------------------------------------------------
# Functional (bit-true) models
# --------------------------------------------------------------------------

def windowed_add(spec: WindowedAdderSpec, a: int, b: int) -> int:
    """Add two N-bit operands through a windowed adder (carry-in 0).

    Returns the (N+1)-bit result.  Matches ``a + b`` whenever no window
    misses an incoming carry.

    >>> spec = from_gear(__import__("repro.gear.config",
    ...                             fromlist=["GeArConfig"]).GeArConfig(4, 2, 0))
    >>> windowed_add(spec, 0b0101, 0b0001)
    6
    """
    n = spec.width
    if a < 0 or b < 0 or a >= 1 << n or b >= 1 << n:
        raise AnalysisError(
            f"operands must be in [0, 2^{n}), got {a}, {b}"
        )
    result = 0
    for i, low in enumerate(spec.lows):
        window_mask = (1 << (i - low + 1)) - 1
        window_sum = ((a >> low) & window_mask) + ((b >> low) & window_mask)
        result |= ((window_sum >> (i - low)) & 1) << i
    carry_mask = (1 << (n - spec.carry_low)) - 1
    carry_sum = ((a >> spec.carry_low) & carry_mask) \
        + ((b >> spec.carry_low) & carry_mask)
    carry = (carry_sum >> (n - spec.carry_low)) & 1
    return result | (carry << n)


def windowed_add_array(
    spec: WindowedAdderSpec, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`windowed_add` over NumPy int64 arrays
    (broadcasting allowed)."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    n = spec.width
    if (a < 0).any() or (b < 0).any() or (a >= 1 << n).any() \
            or (b >= 1 << n).any():
        raise AnalysisError(f"operands must be in [0, 2^{n})")
    result = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
    for i, low in enumerate(spec.lows):
        window_mask = (1 << (i - low + 1)) - 1
        window_sum = ((a >> low) & window_mask) + ((b >> low) & window_mask)
        result |= ((window_sum >> (i - low)) & 1) << i
    carry_mask = (1 << (n - spec.carry_low)) - 1
    carry_sum = ((a >> spec.carry_low) & carry_mask) \
        + ((b >> spec.carry_low) & carry_mask)
    return result | (((carry_sum >> (n - spec.carry_low)) & 1) << n)


# --------------------------------------------------------------------------
# The monotone-carry-cut DP
# --------------------------------------------------------------------------
#
# At step i the windows still in play are [l, i-1] for the distinct low
# values l that some later (or the current) output bit reads, plus low 0
# (the exact carry) and carry_low.  They are nested suffixes of the
# digit string t_j = a_j + b_j, so their carries are monotone
# non-increasing in l: a longer window can only see *more* carry.  The
# joint carry vector is therefore always of the form (1, ..., 1, 0,
# ..., 0) over the ascending-low list, fully described by the *cut*
# (how many leading windows carry 1).  Digit transitions act uniformly:
# t=0 clears every carry (cut -> 0), t=2 sets every carry (cut -> m),
# t=1 propagates (cut unchanged); a window activating at step l joins
# at the tail with carry 0, keeping the cut untouched.

@dataclass(frozen=True)
class _Step:
    """One step of the precomputed DP schedule."""

    insert: bool              # a window [i, ...] activates this step
    read_idx: int             # index of lows[i] in the active-low list
    removals: Tuple[int, ...]  # positions dropped afterwards (descending)
    size: int                 # active-window count during the transition


def _plan(spec: WindowedAdderSpec) -> Tuple[List[_Step], int, int]:
    """Schedule of the cut DP: per-step reads/activations/retirements,
    the carry-out window's final index, and the final active count."""
    n = spec.width
    last_read: Dict[int, int] = {}
    for j, low in enumerate(spec.lows):
        last_read[low] = max(last_read.get(low, -1), j)
    last_read[0] = n           # the exact carry is read at every step
    last_read[spec.carry_low] = n
    active: List[int] = []
    steps: List[_Step] = []
    for i in range(n):
        insert = i in last_read
        if insert:
            active.append(i)
        read_idx = active.index(spec.lows[i])
        removals = tuple(sorted(
            (pos for pos, low in enumerate(active) if last_read[low] == i),
            reverse=True,
        ))
        steps.append(_Step(insert, read_idx, removals, len(active)))
        for pos in removals:
            del active[pos]
    return steps, active.index(spec.carry_low), len(active)


def _digit_weights(
    p_a: Union[Probability, Sequence[Probability]],
    p_b: Union[Probability, Sequence[Probability]],
    n: int,
) -> List[Tuple[float, float, float]]:
    """Per-step probabilities of the digit ``t_i = a_i + b_i`` being
    0 / 1 / 2 (computed term-by-term so dyadic inputs stay exact)."""
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    return [
        (
            (1.0 - pa[i]) * (1.0 - pb[i]),
            pa[i] * (1.0 - pb[i]) + (1.0 - pa[i]) * pb[i],
            pa[i] * pb[i],
        )
        for i in range(n)
    ]


def _apply_removals(cut: int, removals: Tuple[int, ...]) -> int:
    """Re-index a cut after retiring the given positions (descending)."""
    for pos in removals:
        if cut > pos:
            cut -= 1
    return cut


def windowed_error_probability(
    spec: WindowedAdderSpec,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> float:
    """Exact word-level ``P(error)`` of a windowed adder, O(N * cuts).

    Tracks the probability mass of *still fully correct* paths per cut:
    output bit i errs exactly when the exact carry and the window's
    carry disagree (windowed adders only ever drop carries, so the
    disagreement is one-sided), and likewise for the carry-out.
    """
    steps, carry_idx, _ = _plan(spec)
    weights = _digit_weights(p_a, p_b, spec.width)
    mass: List[float] = [1.0]
    for i, step in enumerate(steps):
        if step.insert:
            mass.append(0.0)
        q0, q1, q2 = weights[i]
        m = step.size
        nxt = [0.0] * (m + 1)
        for cut, w in enumerate(mass):
            if w == 0.0:
                continue
            if (cut > 0) != (cut > step.read_idx):
                continue  # this output bit is wrong: drop the path
            if q0 > 0.0:
                nxt[0] += w * q0
            if q1 > 0.0:
                nxt[cut] += w * q1
            if q2 > 0.0:
                nxt[m] += w * q2
        for pos in step.removals:
            merged = [0.0] * (len(nxt) - 1)
            for cut, w in enumerate(nxt):
                merged[cut - 1 if cut > pos else cut] += w
            nxt = merged
        mass = nxt
    p_success = sum(
        w for cut, w in enumerate(mass)
        if (cut > 0) == (cut > carry_idx)
    )
    return 1.0 - min(1.0, max(0.0, p_success))


def windowed_error_pmf(
    spec: WindowedAdderSpec,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    prune_below: float = 0.0,
    quantize: Optional[Callable[[int], int]] = None,
) -> Dict[int, float]:
    """Exact PMF of ``D = approx - exact`` for a windowed adder.

    Mirrors :func:`repro.core.magnitude.error_pmf`: guarded by
    *max_entries* (raising
    :class:`~repro.core.exceptions.SupportLimitError` with the stage),
    optionally pruned, and -- for the engine's truncated rung --
    optionally *quantize*\\ d per accumulated delta (mass-preserving, so
    the PMF still sums to 1 and ER stays exact).
    """
    steps, carry_idx, _ = _plan(spec)
    n = spec.width
    weights = _digit_weights(p_a, p_b, n)
    keep = quantize if quantize is not None else (lambda delta: delta)
    dists: Dict[int, Dict[int, float]] = {0: {0: 1.0}}
    for i, step in enumerate(steps):
        q = weights[i]
        m = step.size
        weight_bit = 1 << i
        nxt: Dict[int, Dict[int, float]] = {}
        for cut, dist in dists.items():
            if not dist:
                continue
            c_exact = 1 if cut > 0 else 0
            c_approx = 1 if cut > step.read_idx else 0
            for t in (0, 1, 2):
                w = q[t]
                if w == 0.0:
                    continue
                delta_inc = (((t + c_approx) & 1) - ((t + c_exact) & 1)) \
                    * weight_bit
                new_cut = 0 if t == 0 else (m if t == 2 else cut)
                new_cut = _apply_removals(new_cut, step.removals)
                bucket = nxt.setdefault(new_cut, {})
                for delta, prob in dist.items():
                    key = keep(delta + delta_inc)
                    bucket[key] = bucket.get(key, 0.0) + prob * w
        if prune_below > 0.0:
            for bucket in nxt.values():
                stale = [d for d, p in bucket.items() if p < prune_below]
                for d in stale:
                    del bucket[d]
        size = sum(len(bucket) for bucket in nxt.values())
        if size > max_entries:
            raise SupportLimitError(
                f"windowed_error_pmf support for {spec.name!r} (width "
                f"{n}) exceeded max_entries={max_entries} at stage {i} "
                f"({size} (cut, delta) pairs); raise the limit, set "
                "prune_below, or use windowed_error_moments()",
                width=n, entries=size, limit=max_entries, stage=i,
            )
        dists = nxt
    weight_carry = 1 << n
    pmf: Dict[int, float] = {}
    for cut, dist in dists.items():
        delta_inc = ((1 if cut > carry_idx else 0)
                     - (1 if cut > 0 else 0)) * weight_carry
        for delta, prob in dist.items():
            key = keep(delta + delta_inc)
            pmf[key] = pmf.get(key, 0.0) + prob
    return {d: p for d, p in pmf.items() if p > 0.0}


def windowed_error_moments(
    spec: WindowedAdderSpec,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> ErrorMoments:
    """Exact ``E[D]`` / ``E[D^2]`` in O(N * cuts) time and O(cuts)
    memory, mirroring :func:`repro.core.magnitude.error_moments`."""
    steps, carry_idx, final_size = _plan(spec)
    n = spec.width
    weights = _digit_weights(p_a, p_b, n)
    stats: Dict[int, Tuple[float, float, float]] = {0: (1.0, 0.0, 0.0)}
    for i, step in enumerate(steps):
        q = weights[i]
        m = step.size
        weight_bit = float(1 << i)
        nxt: Dict[int, List[float]] = {}
        for cut, (p, m1, m2) in stats.items():
            if p == 0.0 and m1 == 0.0 and m2 == 0.0:
                continue
            c_exact = 1 if cut > 0 else 0
            c_approx = 1 if cut > step.read_idx else 0
            for t in (0, 1, 2):
                w = q[t]
                if w == 0.0:
                    continue
                delta = (((t + c_approx) & 1) - ((t + c_exact) & 1)) \
                    * weight_bit
                new_cut = 0 if t == 0 else (m if t == 2 else cut)
                new_cut = _apply_removals(new_cut, step.removals)
                acc = nxt.setdefault(new_cut, [0.0, 0.0, 0.0])
                acc[0] += w * p
                acc[1] += w * (m1 + delta * p)
                acc[2] += w * (m2 + 2.0 * delta * m1 + delta * delta * p)
        stats = {cut: (v[0], v[1], v[2]) for cut, v in nxt.items()}
    weight_carry = float(1 << n)
    mean = 0.0
    second = 0.0
    for cut, (p, m1, m2) in stats.items():
        delta = ((1 if cut > carry_idx else 0)
                 - (1 if cut > 0 else 0)) * weight_carry
        mean += m1 + delta * p
        second += m2 + 2.0 * delta * m1 + delta * delta * p
    return ErrorMoments(mean=mean, second_moment=second, width=n)


def windowed_worst_case_error(
    spec: WindowedAdderSpec,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
) -> WorstCaseError:
    """Exact ``max |D|`` at any width: the reachable ``[min, max]``
    delta interval per cut, in exact integer arithmetic."""
    steps, carry_idx, _ = _plan(spec)
    n = spec.width
    weights = _digit_weights(p_a, p_b, n)
    spans: Dict[int, Tuple[int, int]] = {0: (0, 0)}
    for i, step in enumerate(steps):
        q = weights[i]
        m = step.size
        weight_bit = 1 << i
        nxt: Dict[int, Tuple[int, int]] = {}
        for cut, (lo, hi) in spans.items():
            c_exact = 1 if cut > 0 else 0
            c_approx = 1 if cut > step.read_idx else 0
            for t in (0, 1, 2):
                if q[t] == 0.0:
                    continue
                inc = (((t + c_approx) & 1) - ((t + c_exact) & 1)) \
                    * weight_bit
                new_cut = 0 if t == 0 else (m if t == 2 else cut)
                new_cut = _apply_removals(new_cut, step.removals)
                cur = nxt.get(new_cut)
                if cur is None:
                    nxt[new_cut] = (lo + inc, hi + inc)
                else:
                    nxt[new_cut] = (min(cur[0], lo + inc),
                                    max(cur[1], hi + inc))
        spans = nxt
    weight_carry = 1 << n
    lo_all: Optional[int] = None
    hi_all: Optional[int] = None
    for cut, (lo, hi) in spans.items():
        inc = ((1 if cut > carry_idx else 0)
               - (1 if cut > 0 else 0)) * weight_carry
        lo_all = lo + inc if lo_all is None else min(lo_all, lo + inc)
        hi_all = hi + inc if hi_all is None else max(hi_all, hi + inc)
    return WorstCaseError(min_delta=int(lo_all or 0),
                          max_delta=int(hi_all or 0), width=n)


def windowed_joint_error_pmf(
    spec: WindowedAdderSpec,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    max_entries: int = DEFAULT_MAX_ENTRIES,
) -> Dict[Tuple[int, int], float]:
    """Exact joint PMF of ``(D, exact sum)`` -- MRED falls out via
    :func:`repro.core.magnitude.relative_error_from_joint`.

    The support scales with the ``2^(N+1)`` exact values, so the
    practical limit sits lower than the marginal PMF's (same guard
    behaviour as :func:`repro.core.magnitude.joint_error_pmf`).
    """
    steps, carry_idx, _ = _plan(spec)
    n = spec.width
    weights = _digit_weights(p_a, p_b, n)
    dists: Dict[int, Dict[Tuple[int, int], float]] = {0: {(0, 0): 1.0}}
    for i, step in enumerate(steps):
        q = weights[i]
        m = step.size
        weight_bit = 1 << i
        nxt: Dict[int, Dict[Tuple[int, int], float]] = {}
        for cut, dist in dists.items():
            if not dist:
                continue
            c_exact = 1 if cut > 0 else 0
            c_approx = 1 if cut > step.read_idx else 0
            for t in (0, 1, 2):
                w = q[t]
                if w == 0.0:
                    continue
                s_exact = (t + c_exact) & 1
                delta_inc = (((t + c_approx) & 1) - s_exact) * weight_bit
                value_inc = s_exact * weight_bit
                new_cut = 0 if t == 0 else (m if t == 2 else cut)
                new_cut = _apply_removals(new_cut, step.removals)
                bucket = nxt.setdefault(new_cut, {})
                for (delta, value), prob in dist.items():
                    key = (delta + delta_inc, value + value_inc)
                    bucket[key] = bucket.get(key, 0.0) + prob * w
        size = sum(len(bucket) for bucket in nxt.values())
        if size > max_entries:
            raise SupportLimitError(
                f"windowed_joint_error_pmf support for {spec.name!r} "
                f"(width {n}) exceeded max_entries={max_entries} at "
                f"stage {i} ({size} entries); estimate MRED by sampling",
                width=n, entries=size, limit=max_entries, stage=i,
            )
        dists = nxt
    weight_carry = 1 << n
    joint: Dict[Tuple[int, int], float] = {}
    for cut, dist in dists.items():
        c_exact = 1 if cut > 0 else 0
        delta_inc = ((1 if cut > carry_idx else 0) - c_exact) * weight_carry
        value_inc = c_exact * weight_carry
        for (delta, value), prob in dist.items():
            key = (delta + delta_inc, value + value_inc)
            joint[key] = joint.get(key, 0.0) + prob
    return {k: p for k, p in joint.items() if p > 0.0}


# --------------------------------------------------------------------------
# The enumeration oracle
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WindowedQualityReport:
    """One weighted enumeration pass over every operand pair."""

    pmf: Dict[int, float]
    mred: float
    bias: float
    cases: int


def windowed_exhaustive_quality(
    spec: WindowedAdderSpec,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    chunk: int = 1 << 12,
) -> WindowedQualityReport:
    """The oracle: enumerate all ``2^(2N)`` operand pairs (carry-in 0),
    weighted by the per-bit operand probabilities.

    Width-guarded at :data:`MAX_WINDOWED_EXHAUSTIVE_WIDTH`; the DPs
    above are cross-validated against this bit-for-bit at dyadic
    operand probabilities.
    """
    n = spec.width
    if n > MAX_WINDOWED_EXHAUSTIVE_WIDTH:
        raise AnalysisError(
            f"exhaustive enumeration is guarded at width "
            f"{MAX_WINDOWED_EXHAUSTIVE_WIDTH}; got {n}"
        )
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    values = np.arange(1 << n, dtype=np.int64)

    def value_weights(probs: List[float]) -> np.ndarray:
        w = np.ones(1 << n, dtype=np.float64)
        for i, p in enumerate(probs):
            bit = (values >> i) & 1
            w *= np.where(bit == 1, p, 1.0 - p)
        return w

    wa = value_weights(pa)
    wb = value_weights(pb)
    pmf: Dict[int, float] = {}
    mred = 0.0
    bias = 0.0
    for start in range(0, 1 << n, chunk):
        rows = values[start:start + chunk][:, None]
        exact = rows + values[None, :]
        delta = windowed_add_array(spec, rows, values[None, :]) - exact
        w = wa[start:start + chunk][:, None] * wb[None, :]
        uniques, inverse = np.unique(delta, return_inverse=True)
        sums = np.bincount(inverse.ravel(), weights=w.ravel(),
                           minlength=uniques.size)
        for d, p in zip(uniques, sums):
            if p > 0.0:
                key = int(d)
                pmf[key] = pmf.get(key, 0.0) + float(p)
        mred += float((np.abs(delta) / np.maximum(exact, 1) * w).sum())
        bias += float((delta * w).sum())
    return WindowedQualityReport(
        pmf=pmf, mred=mred, bias=bias, cases=1 << (2 * n)
    )


# --------------------------------------------------------------------------
# Parallel-prefix graphs (AxPPA-style truncation)
# --------------------------------------------------------------------------

#: Prefix topology keys -> display names.
PREFIX_TOPOLOGIES: Dict[str, str] = {
    "bk": "Brent-Kung",
    "ks": "Kogge-Stone",
    "sk": "Sklansky",
    "lf": "Ladner-Fischer",
}


def prefix_levels(topology: str, n: int) -> List[List[Tuple[int, int]]]:
    """The prefix graph as levels of ``(position, back)`` combines.

    Each combine merges ``span[back]`` (ending exactly at the current
    span's start minus one -- validated) into ``span[position]``.
    Running *all* levels leaves every position's span at ``[0, j]``:
    the graph computes every prefix carry and the adder is exact.

    >>> [len(level) for level in prefix_levels("bk", 8)]
    [4, 2, 1, 1, 3]
    >>> [len(level) for level in prefix_levels("ks", 8)]
    [7, 6, 4]
    """
    if n < 1:
        raise AnalysisError(f"prefix network width must be >= 1, got {n}")
    if topology not in PREFIX_TOPOLOGIES:
        raise AnalysisError(
            f"unknown prefix topology {topology!r}; known: "
            f"{', '.join(sorted(PREFIX_TOPOLOGIES))}"
        )
    depth = max(1, (n - 1).bit_length())
    lo = list(range(n))
    levels: List[List[Tuple[int, int]]] = []

    def emit(pairs: List[Tuple[int, int]]) -> None:
        # Combines within a level are simultaneous: every one reads the
        # spans as they stood *before* the level.
        before = list(lo)
        level = []
        for j, back in pairs:
            if before[j] == 0:
                continue  # span already complete: the combine is a no-op
            if back != before[j] - 1:
                raise AnalysisError(
                    f"{topology} level builder produced a non-adjacent "
                    f"combine ({j} <- {back}, span starts at {before[j]})"
                )
            lo[j] = before[back]
            level.append((j, back))
        if level:
            levels.append(level)

    if topology == "ks":
        for k in range(1, depth + 1):
            emit([(j, j - (1 << (k - 1)))
                  for j in range(1 << (k - 1), n)])
    elif topology == "sk":
        for k in range(1, depth + 1):
            emit([(j, ((j >> (k - 1)) << (k - 1)) - 1)
                  for j in range(n) if (j >> (k - 1)) & 1])
    elif topology == "bk":
        for k in range(1, depth + 1):
            emit([(j, j - (1 << (k - 1)))
                  for j in range((1 << k) - 1, n, 1 << k)])
        for k in range(depth - 1, 0, -1):
            emit([(j, j - (1 << (k - 1)))
                  for j in range((1 << k) + (1 << (k - 1)) - 1, n, 1 << k)])
    else:  # lf: Sklansky on the odd positions, then one even fix-up level
        for k in range(1, depth + 1):
            emit([(j, ((j >> (k - 1)) << (k - 1)) - 1)
                  for j in range(1, n, 2) if (j >> (k - 1)) & 1])
        emit([(j, j - 1) for j in range(2, n, 2)])
    return levels


def prefix_depth(topology: str, n: int) -> int:
    """Level count of the full prefix graph (the maximum truncation)."""
    return len(prefix_levels(topology, n))


def truncated_prefix_spec(
    topology: str, n: int, levels_used: int, name: Optional[str] = None
) -> WindowedAdderSpec:
    """AxPPA-style approximate prefix adder: run only the first
    *levels_used* levels of the graph.

    Each position's accumulated span ``[lo_j, j]`` becomes the carry
    window: result bit ``i`` reads the group carry of
    ``[lo_{i-1}, i-1]``.  ``levels_used = 0`` degrades every carry to
    the previous bit's generate; the full depth reproduces the exact
    adder (property-tested for every topology).
    """
    levels = prefix_levels(topology, n)
    if not 0 <= levels_used <= len(levels):
        raise AnalysisError(
            f"{topology} at width {n} has {len(levels)} levels; "
            f"got truncation {levels_used}"
        )
    lo = list(range(n))
    for level in levels[:levels_used]:
        before = list(lo)
        for j, back in level:
            lo[j] = before[back]
    lows = (0,) + tuple(lo[i - 1] for i in range(1, n))
    return WindowedAdderSpec(
        name=name or f"axppa-{topology}:{n}:{levels_used}",
        lows=lows,
        carry_low=lo[n - 1],
    )


# --------------------------------------------------------------------------
# The config-string grammar and catalog
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ZooFamily:
    """Catalog metadata for one adder family."""

    key: str
    title: str
    grammar: str
    source: str
    representation: str   # "chain" | "windowed"
    summary: str


ZOO_FAMILIES: Dict[str, ZooFamily] = {
    family.key: family for family in (
        ZooFamily(
            "rca", "Ripple-carry adder", "rca:<N>",
            "baseline (exact)", "chain",
            "The exact reference every zoo member is compared against.",
        ),
        ZooFamily(
            "loa", "Lower-part-OR adder (LOA)", "loa:<N>:<L>",
            "Mahdiani et al., TCAS-I 2010", "chain",
            "Low L bits OR'd; an AND of the top lower bits speculates "
            "the carry into the accurate upper part.",
        ),
        ZooFamily(
            "loawa", "LOA without carry speculation", "loawa:<N>:<L>",
            "chiselverify LOAWA variant", "chain",
            "Low L bits OR'd with carry-in 0 to the upper part.",
        ),
        ZooFamily(
            "aca1", "Almost-correct adder ACA-1", "aca1:<N>:<Q>",
            "Verma et al., DATE 2008 (= GeAr(N, 1, Q-1))", "windowed",
            "Every result bit from a sliding Q-bit carry window.",
        ),
        ZooFamily(
            "aca2", "Almost-correct adder ACA-2", "aca2:<N>:<Q>",
            "Kahng & Kang, DAC 2012 (= GeAr(N, Q/2, Q/2))", "windowed",
            "Q-bit sub-adders advancing Q/2 bits per step (Q even).",
        ),
        ZooFamily(
            "eta", "Error-tolerant adder ETA-II", "eta:<N>:<X>",
            "Zhu et al., TVLSI 2010 (= GeAr(N, X, X))", "windowed",
            "X-bit result blocks, each predicted by the X bits below.",
        ),
        ZooFamily(
            "gda", "Gracefully-degrading adder", "gda:<N>:<B>:<K>",
            "Ye et al., DAC 2013", "windowed",
            "B equal partitions; each reads K extra prediction bits "
            "below its block.",
        ),
        ZooFamily(
            "gear", "Generic accuracy-reconfigurable adder",
            "gear:<N>:<R>:<P>",
            "Shafique et al., DAC 2015 (paper ref [17])", "windowed",
            "k overlapping (R+P)-bit sub-adders, R result bits each.",
        ),
        ZooFamily(
            "axppa-bk", "Truncated Brent-Kung prefix adder",
            "axppa-bk:<N>:<LVL>",
            "AxPPA (arXiv:2210.10408) / Brent & Kung 1982", "windowed",
            "Brent-Kung carry tree cut after LVL levels.",
        ),
        ZooFamily(
            "axppa-ks", "Truncated Kogge-Stone prefix adder",
            "axppa-ks:<N>:<LVL>",
            "AxPPA (arXiv:2210.10408) / Kogge & Stone 1973", "windowed",
            "Kogge-Stone carry tree cut after LVL levels.",
        ),
        ZooFamily(
            "axppa-sk", "Truncated Sklansky prefix adder",
            "axppa-sk:<N>:<LVL>",
            "AxPPA (arXiv:2210.10408) / Sklansky 1960", "windowed",
            "Sklansky carry tree cut after LVL levels.",
        ),
        ZooFamily(
            "axppa-lf", "Truncated Ladner-Fischer prefix adder",
            "axppa-lf:<N>:<LVL>",
            "AxPPA (arXiv:2210.10408) / Ladner & Fischer 1980",
            "windowed",
            "Ladner-Fischer carry tree cut after LVL levels.",
        ),
    )
}

#: Accepted family spellings -> canonical keys (after lowercasing and
#: stripping spaces/underscores/hyphens).
_FAMILY_ALIASES: Dict[str, str] = {
    "rca": "rca", "accurate": "rca", "exact": "rca",
    "loa": "loa", "loawa": "loawa",
    "aca1": "aca1", "acai": "aca1",
    "aca2": "aca2", "acaii": "aca2",
    "eta": "eta", "etaii": "eta", "eta2": "eta",
    "gda": "gda", "gear": "gear",
    "axppabk": "axppa-bk", "axppaks": "axppa-ks",
    "axppask": "axppa-sk", "axppalf": "axppa-lf",
}

#: Parameter count per family (beyond the width).
_FAMILY_PARAMS: Dict[str, int] = {
    "rca": 0, "loa": 1, "loawa": 1, "aca1": 1, "aca2": 1, "eta": 1,
    "gda": 2, "gear": 2, "axppa-bk": 1, "axppa-ks": 1, "axppa-sk": 1,
    "axppa-lf": 1,
}


@dataclass(frozen=True)
class ZooAdder:
    """One parsed zoo config: a family key, the width, and parameters.

    ``build()`` produces the analysable object -- a tuple of truth-table
    cells for chain families (served by every existing chain engine) or
    a :class:`WindowedAdderSpec` for block/prefix families (served by
    the ``zoo-*`` engines).  Construction validates the parameters.

    >>> parse_adder("ACA_1:8:4").config_string
    'aca1:8:4'
    """

    family: str
    n: int
    params: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.family not in ZOO_FAMILIES:
            raise AnalysisError(
                f"unknown adder family {self.family!r}; known: "
                f"{', '.join(sorted(ZOO_FAMILIES))}"
            )
        expected = _FAMILY_PARAMS[self.family]
        if len(self.params) != expected:
            raise AnalysisError(
                f"{ZOO_FAMILIES[self.family].grammar} takes {expected} "
                f"parameter(s) after the width; got {len(self.params)}"
            )
        if self.n < 1:
            raise AnalysisError(f"width must be >= 1, got {self.n}")
        self.build()  # validate eagerly: a ZooAdder is always buildable

    @property
    def config_string(self) -> str:
        """Canonical render; ``parse_adder`` round-trips it exactly."""
        return ":".join([self.family, str(self.n),
                         *[str(p) for p in self.params]])

    @property
    def representation(self) -> str:
        return ZOO_FAMILIES[self.family].representation

    def describe(self) -> str:
        meta = ZOO_FAMILIES[self.family]
        return f"{meta.title} {self.config_string} (N={self.n})"

    def build(self) -> Union[Tuple[FullAdderTruthTable, ...],
                             WindowedAdderSpec]:
        """The cell chain or windowed spec this config denotes."""
        from ..gear.config import GeArConfig

        n, params = self.n, self.params
        if self.family == "rca":
            return (ACCURATE,) * n
        if self.family in ("loa", "loawa"):
            l = params[0]
            if not 1 <= l < n:
                raise AnalysisError(
                    f"{self.family}: lower part L must satisfy "
                    f"1 <= L < N, got L={l}, N={n}"
                )
            if self.family == "loa":
                return (LOA_OR,) * (l - 1) + (LOA_GEN,) \
                    + (ACCURATE,) * (n - l)
            return (LOA_OR,) * l + (ACCURATE,) * (n - l)
        if self.family == "aca1":
            q = params[0]
            if not 1 <= q <= n:
                raise AnalysisError(
                    f"aca1: window Q must satisfy 1 <= Q <= N, got {q}"
                )
            return from_gear(GeArConfig(n, 1, q - 1),
                             name=self.config_string)
        if self.family == "aca2":
            q = params[0]
            if q < 2 or q % 2:
                raise AnalysisError(
                    f"aca2: the partition size Q must be an even number "
                    f">= 2, got {q}"
                )
            return from_gear(GeArConfig(n, q // 2, q // 2),
                             name=self.config_string)
        if self.family == "eta":
            x = params[0]
            if x < 1 or n % x or 2 * x > n:
                raise AnalysisError(
                    f"eta: block X must divide N with 2X <= N, got "
                    f"X={x}, N={n}"
                )
            return from_gear(GeArConfig(n, x, x), name=self.config_string)
        if self.family == "gear":
            return from_gear(GeArConfig(n, params[0], params[1]),
                             name=self.config_string)
        if self.family == "gda":
            parts, pred = params
            if parts < 1 or n % parts:
                raise AnalysisError(
                    f"gda: partitions B must divide N, got B={parts}, "
                    f"N={n}"
                )
            if pred < 0:
                raise AnalysisError(f"gda: prediction bits K must be "
                                    f">= 0, got {pred}")
            m = n // parts
            lows = tuple(max(0, (t // m) * m - pred) for t in range(n))
            return WindowedAdderSpec(
                name=self.config_string, lows=lows,
                carry_low=max(0, (parts - 1) * m - pred),
            )
        topology = self.family.split("-")[1]
        if params[0] < 1:
            raise AnalysisError(
                f"{self.family}: the level count LVL must be >= 1, "
                f"got {params[0]} (the config grammar has no "
                "zero-level adder; use the functional "
                "truncated_prefix_spec for that degenerate case)"
            )
        return truncated_prefix_spec(topology, n, params[0],
                                     name=self.config_string)


def parse_adder(spec: Union[str, ZooAdder]) -> ZooAdder:
    """Parse a zoo config string (``"loa:16:8"``) into a
    :class:`ZooAdder`.

    Family spellings are case/punctuation-insensitive (``"ACA-1"``,
    ``"aca_1"``, ``"etaii"`` all resolve); the rendered
    ``config_string`` is canonical, and ``parse -> render -> parse`` is
    the identity (property-tested).

    >>> parse_adder("loa:16:8").describe()
    'Lower-part-OR adder (LOA) loa:16:8 (N=16)'
    """
    if isinstance(spec, ZooAdder):
        return spec
    tokens = [t.strip() for t in str(spec).strip().split(":")]
    if len(tokens) < 2:
        raise AnalysisError(
            f"bad adder config {spec!r}: expected "
            "family:<N>[:<param>...], e.g. 'loa:16:8'"
        )
    canonical = "".join(tokens[0].lower().split()) \
        .replace("_", "").replace("-", "")
    family = _FAMILY_ALIASES.get(canonical)
    if family is None:
        raise AnalysisError(
            f"unknown adder family {tokens[0]!r}; known: "
            f"{', '.join(sorted(ZOO_FAMILIES))}"
        )
    try:
        numbers = [int(t) for t in tokens[1:]]
    except ValueError:
        raise AnalysisError(
            f"bad adder config {spec!r}: parameters must be integers"
        ) from None
    return ZooAdder(family, numbers[0], tuple(numbers[1:]))


def named_zoo(n: int) -> List[ZooAdder]:
    """Reference instances of every family at width *n*, for sweeps,
    catalogs and cross-validation matrices.

    Parameter choices that are invalid at *n* are skipped, so the list
    is always buildable.

    >>> [a.config_string for a in named_zoo(8)][:4]
    ['rca:8', 'loa:8:2', 'loawa:8:2', 'loa:8:4']
    """
    candidates: List[str] = [f"rca:{n}"]
    for l in sorted({max(1, n // 4), n // 2, 3 * n // 4}):
        candidates += [f"loa:{n}:{l}", f"loawa:{n}:{l}"]
    for q in sorted({2, max(2, n // 4), max(2, n // 2)}):
        candidates += [f"aca1:{n}:{q}", f"aca2:{n}:{q}"]
    for x in sorted({1, 2, n // 4, n // 2}):
        candidates.append(f"eta:{n}:{x}")
    for parts in (2, 4):
        if parts <= n:
            for pred in sorted({1, max(1, n // parts // 2)}):
                candidates.append(f"gda:{n}:{parts}:{pred}")
    candidates.append(f"gear:{n}:2:2")
    for topology in PREFIX_TOPOLOGIES:
        try:
            depth = prefix_depth(topology, n)
        except AnalysisError:
            continue
        for lvl in sorted({1, depth // 2, depth - 1, depth}):
            candidates.append(f"axppa-{topology}:{n}:{lvl}")
    out: List[ZooAdder] = []
    seen = set()
    for candidate in candidates:
        try:
            adder = parse_adder(candidate)
        except Exception:
            continue
        if adder.config_string not in seen:
            seen.add(adder.config_string)
            out.append(adder)
    return out


# --------------------------------------------------------------------------
# Abstract cost model
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ZooCost:
    """Unit-gate delay and area of one zoo config.

    An *abstract* model for Pareto exploration, not a technology
    estimate: a ripple stage costs 2 delay units and 5 area units
    (accurate cell), OR cells 1/1, the LOA generate cell 1/2; windowed
    adders cost 2 units per bit of their longest window (the critical
    sub-adder ripple) and 5 area units per sub-adder bit; prefix adders
    cost ``2 + levels`` delay and ``2N + 2 * combines`` area.
    """

    delay_units: float
    area_units: float


def zoo_cost(adder: Union[str, ZooAdder]) -> ZooCost:
    """The unit-gate :class:`ZooCost` of one config string.

    >>> zoo_cost("rca:8").delay_units
    17.0
    >>> zoo_cost("loa:8:4").delay_units < zoo_cost("rca:8").delay_units
    True
    """
    adder = parse_adder(adder)
    built = adder.build()
    if adder.family.startswith("axppa-"):
        topology = adder.family.split("-")[1]
        levels = prefix_levels(topology, adder.n)[:adder.params[0]]
        combines = sum(len(level) for level in levels)
        return ZooCost(
            delay_units=float(2 + len(levels)),
            area_units=float(2 * adder.n + 2 * combines),
        )
    if isinstance(built, WindowedAdderSpec):
        spans: Dict[int, int] = {}
        for i, low in enumerate(built.lows):
            spans[low] = max(spans.get(low, 0), i - low + 1)
        spans[built.carry_low] = max(
            spans.get(built.carry_low, 0), built.width - built.carry_low
        )
        return ZooCost(
            delay_units=float(2 * built.max_window),
            area_units=float(5 * sum(spans.values())),
        )
    per_cell = {"LOA-OR": (1.0, 1.0), "LOA-GEN": (1.0, 2.0)}
    delay = 1.0
    area = 0.0
    for cell in built:
        d, a = per_cell.get(cell.name, (2.0, 5.0))
        area += a
        if d >= 2.0:
            delay += d
    # The OR part contributes one parallel gate delay, not a ripple.
    return ZooCost(delay_units=max(delay, 2.0), area_units=area)
