"""Symbolic closed-form error expressions (paper §5's "generic error
equations").

The paper emphasises that its method yields *analytically derived
generic error equations* that "can be instantiated to obtain the error
for any given value of the input probabilities".  This module delivers
exactly that: run Algorithm 1 over a tiny exact multivariate polynomial
algebra instead of floats, and the result **is** the closed-form
expression -- with integer (``fractions.Fraction``) coefficients, since
the recursion only ever multiplies and adds its inputs.

Two instantiations:

* ``mode="uniform"`` -- one symbol ``p`` for every operand/carry bit:
  ``P(Error)`` of an N-bit chain as a univariate polynomial in ``p``
  (degree ``2N + 1``), the form the paper's Fig. 5 sweeps sample;
* ``mode="per-bit"`` -- symbols ``a0..a{N-1}, b0.., c`` for every input
  bit: the fully general multilinear expression (term count grows
  quickly; guarded).

The returned :class:`Polynomial` evaluates exactly (Fractions in,
Fraction out) and agrees with the numeric engine to float precision at
every point -- property-tested.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .exceptions import AnalysisError
from .matrices import derive_matrices
from .recursive import CellSpec, resolve_chain

#: A monomial: sorted ((variable, exponent), ...) pairs; () is the unit.
Monomial = Tuple[Tuple[str, int], ...]

Scalar = Union[int, float, Fraction]


def _as_fraction(value: Scalar) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10 ** 12)
    raise AnalysisError(f"cannot coerce {value!r} to an exact coefficient")


class Polynomial:
    """A sparse multivariate polynomial with exact rational coefficients.

    Immutable by convention: arithmetic returns new instances.  Supports
    ``+``, ``-``, ``*`` with other polynomials and plain scalars (also
    reflected, so ``1 - p`` works inside the generic recursion code).
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, Fraction]] = None):
        cleaned: Dict[Monomial, Fraction] = {}
        for monomial, coeff in (terms or {}).items():
            if coeff != 0:
                cleaned[monomial] = Fraction(coeff)
        self._terms = cleaned

    # -- constructors -----------------------------------------------------------

    @classmethod
    def constant(cls, value: Scalar) -> "Polynomial":
        """The constant polynomial *value*."""
        frac = _as_fraction(value)
        return cls({(): frac} if frac else {})

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        """The polynomial ``name``."""
        if not name:
            raise AnalysisError("variable name must be non-empty")
        return cls({((name, 1),): Fraction(1)})

    # -- protocol ----------------------------------------------------------------

    @property
    def terms(self) -> Dict[Monomial, Fraction]:
        """Monomial -> coefficient mapping (non-zero entries only)."""
        return dict(self._terms)

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self._terms

    def degree(self) -> int:
        """Total degree (0 for constants, including zero)."""
        return max(
            (sum(exp for _, exp in mono) for mono in self._terms),
            default=0,
        )

    def variables(self) -> List[str]:
        """Sorted variable names that actually occur."""
        names = {var for mono in self._terms for var, _ in mono}
        return sorted(names)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Polynomial):
            return self._terms == other._terms
        if isinstance(other, (int, float, Fraction)):
            return self == Polynomial.constant(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    # -- arithmetic -----------------------------------------------------------------

    def _coerce(self, other: object) -> Optional["Polynomial"]:
        if isinstance(other, Polynomial):
            return other
        if isinstance(other, (int, float, Fraction)):
            return Polynomial.constant(other)
        return None

    def __add__(self, other: object) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        terms = dict(self._terms)
        for mono, coeff in rhs._terms.items():
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
        return Polynomial(terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self._terms.items()})

    def __sub__(self, other: object) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: object) -> "Polynomial":
        lhs = self._coerce(other)
        if lhs is None:
            return NotImplemented
        return lhs + (-self)

    @staticmethod
    def _merge(a: Monomial, b: Monomial) -> Monomial:
        powers: Dict[str, int] = {}
        for var, exp in a + b:
            powers[var] = powers.get(var, 0) + exp
        return tuple(sorted(powers.items()))

    def __mul__(self, other: object) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        terms: Dict[Monomial, Fraction] = {}
        for mono_a, coeff_a in self._terms.items():
            for mono_b, coeff_b in rhs._terms.items():
                key = self._merge(mono_a, mono_b)
                terms[key] = terms.get(key, Fraction(0)) + coeff_a * coeff_b
        return Polynomial(terms)

    __rmul__ = __mul__

    # -- evaluation / rendering -------------------------------------------------------

    def evaluate(self, **values: Scalar) -> Fraction:
        """Exact evaluation; every occurring variable must be supplied."""
        missing = [v for v in self.variables() if v not in values]
        if missing:
            raise AnalysisError(f"missing values for variables {missing}")
        total = Fraction(0)
        for mono, coeff in self._terms.items():
            term = coeff
            for var, exp in mono:
                term *= _as_fraction(values[var]) ** exp
            total += term
        return total

    def substitute(self, **values: Scalar) -> "Polynomial":
        """Partial evaluation: replace some variables by constants."""
        result = Polynomial()
        for mono, coeff in self._terms.items():
            factor = Polynomial.constant(coeff)
            for var, exp in mono:
                if var in values:
                    factor = factor * (_as_fraction(values[var]) ** exp)
                else:
                    for _ in range(exp):
                        factor = factor * Polynomial.variable(var)
            result = result + factor
        return result

    def to_string(self, sort_by_degree: bool = True) -> str:
        """Readable rendering, e.g. ``"1 - 2*p^2 + p^3"``."""
        if not self._terms:
            return "0"

        def mono_text(mono: Monomial) -> str:
            parts = [
                var if exp == 1 else f"{var}^{exp}" for var, exp in mono
            ]
            return "*".join(parts)

        items = sorted(
            self._terms.items(),
            key=lambda kv: (sum(e for _, e in kv[0]), kv[0]),
        )
        if not sort_by_degree:
            items = sorted(self._terms.items())
        pieces = []
        for mono, coeff in items:
            body = mono_text(mono)
            magnitude = abs(coeff)
            if not body:
                text = str(magnitude)
            elif magnitude == 1:
                text = body
            else:
                text = f"{magnitude}*{body}"
            sign = "-" if coeff < 0 else "+"
            pieces.append((sign, text))
        first_sign, first_text = pieces[0]
        out = ("-" if first_sign == "-" else "") + first_text
        for sign, text in pieces[1:]:
            out += f" {sign} {text}"
        return out

    def __repr__(self) -> str:
        return f"Polynomial({self.to_string()})"


def symbolic_error_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    mode: str = "uniform",
    max_terms: int = 100_000,
) -> Polynomial:
    """Closed-form ``P(Error)`` of a chain as an exact polynomial.

    Parameters
    ----------
    mode:
        ``"uniform"`` -- one symbol ``p`` shared by all operand bits and
        the carry-in (the Fig. 5 setting);
        ``"per-bit"`` -- symbols ``a0.., b0.., c`` (multilinear; large).
    max_terms:
        Guard on intermediate expression size.

    Examples
    --------
    >>> symbolic_error_probability("LPAA 5", 1).to_string()
    '2*p - 2*p^2'
    """
    cells = resolve_chain(cell, width)
    n = len(cells)

    if mode == "uniform":
        p = Polynomial.variable("p")
        pa = [p] * n
        pb = [p] * n
        pc = p
    elif mode == "per-bit":
        pa = [Polynomial.variable(f"a{i}") for i in range(n)]
        pb = [Polynomial.variable(f"b{i}") for i in range(n)]
        pc = Polynomial.variable("c")
    else:
        raise AnalysisError(f"unknown mode {mode!r} (uniform or per-bit)")

    one = Polynomial.constant(1)
    c1 = pc
    c0 = one - pc
    p_success = Polynomial()
    for i, (table) in enumerate(cells):
        mkl = derive_matrices(table)
        qa = one - pa[i]
        qb = one - pb[i]
        ipm = [
            qa * qb * c0,
            qa * qb * c1,
            qa * pb[i] * c0,
            qa * pb[i] * c1,
            pa[i] * qb * c0,
            pa[i] * qb * c1,
            pa[i] * pb[i] * c0,
            pa[i] * pb[i] * c1,
        ]
        if i == n - 1:
            acc = Polynomial()
            for value, bit in zip(ipm, mkl.l):
                if bit:
                    acc = acc + value
            p_success = acc
        else:
            next_c1 = Polynomial()
            next_c0 = Polynomial()
            for value, m_bit, k_bit in zip(ipm, mkl.m, mkl.k):
                if m_bit:
                    next_c1 = next_c1 + value
                if k_bit:
                    next_c0 = next_c0 + value
            c1, c0 = next_c1, next_c0
        if len(c1.terms) + len(c0.terms) > max_terms:
            raise AnalysisError(
                f"symbolic expression exceeded max_terms={max_terms} at "
                f"stage {i}; use mode='uniform' or a smaller width"
            )
    return one - p_success
