"""Full-adder truth-table model (paper Table 1).

A :class:`FullAdderTruthTable` captures the complete behaviour of a
single-bit (approximate) full adder: for each of the eight input
combinations ``(A, B, Cin)`` it stores the produced ``(Sum, Cout)`` pair.
Everything else in the library -- the M/K/L analysis masks, the
functional simulators, the gate-level synthesis -- is derived from this
one object, so a user can analyse any custom cell by writing down its
eight rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from .exceptions import TruthTableError
from .types import (
    NUM_ROWS,
    Bit,
    RowOutput,
    all_rows,
    row_index,
    row_inputs,
    validate_bit,
)

#: The accurate full adder outputs, row-ordered (A,B,Cin) = 000..111.
_ACCURATE_ROWS: Tuple[RowOutput, ...] = (
    (0, 0),
    (1, 0),
    (1, 0),
    (0, 1),
    (1, 0),
    (0, 1),
    (0, 1),
    (1, 1),
)


@dataclass(frozen=True)
class ErrorCase:
    """One erroneous truth-table row of an approximate cell."""

    index: int
    a: Bit
    b: Bit
    cin: Bit
    sum_out: Bit
    cout: Bit
    expected_sum: Bit
    expected_cout: Bit

    @property
    def sum_wrong(self) -> bool:
        """``True`` when the sum bit deviates from the accurate adder."""
        return self.sum_out != self.expected_sum

    @property
    def cout_wrong(self) -> bool:
        """``True`` when the carry-out bit deviates from the accurate adder."""
        return self.cout != self.expected_cout


class FullAdderTruthTable:
    """Behaviour of a single-bit full adder as eight ``(sum, cout)`` rows.

    Parameters
    ----------
    rows:
        Eight ``(sum, cout)`` pairs ordered by ``row_index(a, b, cin)``
        (i.e. ``000, 001, ..., 111`` with ``Cin`` as the least
        significant input), exactly like Table 1 of the paper.
    name:
        Human-readable cell name used in reports and reprs.

    The instance is immutable and hashable, so tables can key dicts and
    be shared freely between analyses.
    """

    __slots__ = ("_rows", "_name")

    def __init__(self, rows: Sequence[RowOutput], name: str = "custom"):
        rows = tuple(rows)
        if len(rows) != NUM_ROWS:
            raise TruthTableError(
                f"a full-adder truth table needs exactly {NUM_ROWS} rows, "
                f"got {len(rows)}"
            )
        cleaned: List[RowOutput] = []
        for i, row in enumerate(rows):
            try:
                s, c = row
            except (TypeError, ValueError) as exc:
                raise TruthTableError(
                    f"row {i} must be a (sum, cout) pair, got {row!r}"
                ) from exc
            cleaned.append(
                (validate_bit(s, f"row {i} sum"), validate_bit(c, f"row {i} cout"))
            )
        object.__setattr__(self, "_rows", tuple(cleaned))
        object.__setattr__(self, "_name", str(name))

    # -- alternate constructors -------------------------------------------------

    @classmethod
    def accurate(cls) -> "FullAdderTruthTable":
        """Return the exact full adder (``sum = a^b^cin``, majority carry)."""
        return cls(_ACCURATE_ROWS, name="AccuFA")

    @classmethod
    def from_mapping(
        cls,
        mapping: Mapping[Tuple[Bit, Bit, Bit], RowOutput],
        name: str = "custom",
    ) -> "FullAdderTruthTable":
        """Build a table from a ``{(a, b, cin): (sum, cout)}`` mapping.

        The mapping must cover all eight input combinations.
        """
        rows: List[RowOutput] = [(0, 0)] * NUM_ROWS
        seen = set()
        for key, value in mapping.items():
            try:
                a, b, cin = key
            except (TypeError, ValueError) as exc:
                raise TruthTableError(f"bad input key {key!r}") from exc
            idx = row_index(
                validate_bit(a, "a"), validate_bit(b, "b"), validate_bit(cin, "cin")
            )
            rows[idx] = value
            seen.add(idx)
        if len(seen) != NUM_ROWS:
            missing = sorted(set(range(NUM_ROWS)) - seen)
            raise TruthTableError(
                f"mapping misses input rows {[row_inputs(i) for i in missing]}"
            )
        return cls(rows, name=name)

    @classmethod
    def from_functions(cls, sum_fn, cout_fn, name: str = "custom") -> "FullAdderTruthTable":
        """Build a table by evaluating ``sum_fn(a,b,cin)``/``cout_fn(a,b,cin)``."""
        rows = [
            (validate_bit(int(bool(sum_fn(a, b, c))), "sum"),
             validate_bit(int(bool(cout_fn(a, b, c))), "cout"))
            for _, a, b, c in all_rows()
        ]
        return cls(rows, name=name)

    # -- basic protocol ----------------------------------------------------------

    @property
    def name(self) -> str:
        """The cell name (e.g. ``"LPAA 1"``)."""
        return self._name

    @property
    def rows(self) -> Tuple[RowOutput, ...]:
        """The eight ``(sum, cout)`` rows in canonical order."""
        return self._rows

    def __len__(self) -> int:
        return NUM_ROWS

    def __iter__(self) -> Iterable[RowOutput]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> RowOutput:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FullAdderTruthTable):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        return f"FullAdderTruthTable(name={self._name!r}, rows={self._rows!r})"

    def renamed(self, name: str) -> "FullAdderTruthTable":
        """Return a copy of this table carrying a different *name*."""
        return FullAdderTruthTable(self._rows, name=name)

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, a: Bit, b: Bit, cin: Bit) -> RowOutput:
        """Return ``(sum, cout)`` for one input combination."""
        return self._rows[
            row_index(
                validate_bit(a, "a"), validate_bit(b, "b"), validate_bit(cin, "cin")
            )
        ]

    def sum_bit(self, a: Bit, b: Bit, cin: Bit) -> Bit:
        """Return only the sum output for one input combination."""
        return self.evaluate(a, b, cin)[0]

    def carry_out(self, a: Bit, b: Bit, cin: Bit) -> Bit:
        """Return only the carry output for one input combination."""
        return self.evaluate(a, b, cin)[1]

    # -- comparison against the accurate adder ------------------------------------

    def is_accurate(self) -> bool:
        """``True`` when this table equals the exact full adder."""
        return self._rows == _ACCURATE_ROWS

    def success_rows(self) -> Tuple[bool, ...]:
        """Per-row success flags: row is a *success* iff both outputs match
        the accurate full adder (the paper's definition behind M/K/L)."""
        return tuple(row == acc for row, acc in zip(self._rows, _ACCURATE_ROWS))

    def error_cases(self) -> List[ErrorCase]:
        """All erroneous rows, in canonical row order (bold-red in Table 1)."""
        cases: List[ErrorCase] = []
        for idx, a, b, cin in all_rows():
            got = self._rows[idx]
            expected = _ACCURATE_ROWS[idx]
            if got != expected:
                cases.append(
                    ErrorCase(
                        index=idx,
                        a=a,
                        b=b,
                        cin=cin,
                        sum_out=got[0],
                        cout=got[1],
                        expected_sum=expected[0],
                        expected_cout=expected[1],
                    )
                )
        return cases

    def num_error_cases(self) -> int:
        """Number of erroneous rows (the "Error Cases" column of Table 2)."""
        return sum(1 for ok in self.success_rows() if not ok)

    # -- structural bit-level views ------------------------------------------------

    def sum_minterms(self) -> List[int]:
        """Row indices where the sum output is 1 (for logic synthesis)."""
        return [i for i, (s, _) in enumerate(self._rows) if s == 1]

    def cout_minterms(self) -> List[int]:
        """Row indices where the carry output is 1 (for logic synthesis)."""
        return [i for i, (_, c) in enumerate(self._rows) if c == 1]

    def as_dict(self) -> Dict[str, Union[str, List[List[int]]]]:
        """JSON-friendly representation (used by the CLI and exporters)."""
        return {
            "name": self._name,
            "rows": [[s, c] for s, c in self._rows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FullAdderTruthTable":
        """Inverse of :meth:`as_dict`."""
        try:
            rows = [(int(s), int(c)) for s, c in data["rows"]]  # type: ignore[index,union-attr]
            name = str(data.get("name", "custom"))  # type: ignore[union-attr]
        except (KeyError, TypeError, ValueError) as exc:
            raise TruthTableError(f"bad truth-table dict: {data!r}") from exc
        return cls(rows, name=name)


#: Module-level singleton for the exact adder; cheap to share since immutable.
ACCURATE = FullAdderTruthTable.accurate()
