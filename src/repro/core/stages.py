"""Stage-by-stage analysis traces (reproduces paper Table 4).

Table 4 of the paper walks a 4-bit LPAA 1 chain through the recursion
and prints, per stage, the operand probabilities, the incoming and
outgoing success-conditioned carry probabilities, and (at the last
stage) ``P(Succ)``.  :func:`trace_chain` produces exactly that data and
:func:`format_trace_table` renders it in the paper's layout with "NR"
(not required) markers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .recursive import (
    CellSpec,
    ChainAnalysisResult,
    StageRecord,
    analyze_chain,
)
from .types import Probability


def trace_chain(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> ChainAnalysisResult:
    """Run :func:`repro.core.recursive.analyze_chain` with tracing enabled."""
    return analyze_chain(cell, width, p_a, p_b, p_cin, keep_trace=True)


#: Row labels in Table 4's order.
_ROW_LABELS = (
    "P(A_i)",
    "P(B_i)",
    "P(~C_curr & Succ)",
    "P(C_curr & Succ)",
    "P(~C_next & Succ)",
    "P(C_next & Succ)",
    "P(Succ)",
)


def _fmt(value: Optional[Probability], digits: int) -> str:
    if value is None:
        return "NR"
    return f"{float(value):.{digits}g}"


def trace_rows(
    result: ChainAnalysisResult, digits: int = 6
) -> List[Tuple[str, List[str]]]:
    """Return Table 4's rows as ``(label, per-stage values)`` pairs.

    The final stage's carry-out entries and every non-final ``P(Succ)``
    are rendered as ``"NR"``, matching the paper's presentation.
    """
    if not result.trace:
        raise ValueError("result carries no trace; use trace_chain()")
    records: Sequence[StageRecord] = result.trace
    columns = [
        [
            _fmt(r.p_a, digits),
            _fmt(r.p_b, digits),
            _fmt(r.p_c0_curr_succ, digits),
            _fmt(r.p_c1_curr_succ, digits),
            _fmt(r.p_c0_next_succ, digits),
            _fmt(r.p_c1_next_succ, digits),
            _fmt(r.p_success, digits),
        ]
        for r in records
    ]
    return [
        (label, [col[row] for col in columns])
        for row, label in enumerate(_ROW_LABELS)
    ]


def format_trace_table(result: ChainAnalysisResult, digits: int = 6) -> str:
    """Render a trace as a paper-style ASCII table (Table 4 layout)."""
    rows = trace_rows(result, digits)
    header = ["Stage (i)"] + [str(r.index) for r in result.trace]
    table = [header] + [[label, *values] for label, values in rows]
    widths = [
        max(len(line[col]) for line in table) for col in range(len(header))
    ]
    lines = []
    for line in table:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(line, widths)).rstrip()
        )
    return "\n".join(lines)
