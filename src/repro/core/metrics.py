"""Standard approximate-arithmetic quality metrics.

Computes the metrics commonly reported alongside error probability in
the approximate-adder literature, either from an exact error PMF
(:func:`metrics_from_pmf`, fed by :func:`repro.core.magnitude.error_pmf`)
or from paired sample arrays (:func:`metrics_from_samples`, fed by the
simulators):

* **ER** -- error rate, ``P(D != 0)`` (the paper's ``P(Error)``);
* **MED** -- mean error distance, ``E[|D|]``;
* **NMED** -- MED normalised by the maximum exact output;
* **MSE** -- mean squared error, ``E[D^2]``;
* **WCE** -- worst-case error, ``max |D|`` over the support;
* **MRED** -- mean relative error distance, ``E[|D| / max(exact, 1)]``
  (samples only, since it needs the exact value, not just ``D``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from .exceptions import AnalysisError


@dataclass(frozen=True)
class QualityMetrics:
    """A bundle of approximate-adder quality metrics.

    ``mred`` is ``None`` when the metrics came from a PMF over ``D``
    (relative error needs the exact operand values).
    """

    error_rate: float
    med: float
    nmed: float
    mse: float
    wce: int
    mred: Optional[float] = None

    @property
    def rmse(self) -> float:
        """Root of :attr:`mse`."""
        return float(self.mse) ** 0.5

    def as_dict(self) -> Dict[str, Optional[float]]:
        """Plain-dict view for reporting/CSV export."""
        return {
            "error_rate": self.error_rate,
            "med": self.med,
            "nmed": self.nmed,
            "mse": self.mse,
            "wce": float(self.wce),
            "mred": self.mred,
        }


def max_exact_output(width: int) -> int:
    """Largest exact sum of a *width*-bit addition: ``2^(width+1) - 1``
    (two all-ones operands plus carry-in)."""
    if width < 1:
        raise AnalysisError(f"width must be >= 1, got {width}")
    return (1 << (width + 1)) - 1


def metrics_from_pmf(pmf: Mapping[int, float], width: int) -> QualityMetrics:
    """Compute metrics from an exact ``{delta: probability}`` PMF.

    The PMF must (approximately) sum to 1; a drift beyond 1e-6 raises,
    catching accidentally pruned or partial distributions.
    """
    if not pmf:
        raise AnalysisError("empty PMF")
    total = float(sum(pmf.values()))
    if abs(total - 1.0) > 1e-6:
        raise AnalysisError(f"PMF sums to {total!r}, expected 1.0")
    error_rate = float(sum(p for d, p in pmf.items() if d != 0))
    med = float(sum(abs(d) * p for d, p in pmf.items()))
    mse = float(sum(d * d * p for d, p in pmf.items()))
    wce = max((abs(d) for d, p in pmf.items() if p > 0.0), default=0)
    return QualityMetrics(
        error_rate=error_rate,
        med=med,
        nmed=med / max_exact_output(width),
        mse=mse,
        wce=int(wce),
        mred=None,
    )


def metrics_from_samples(
    approx: np.ndarray, exact: np.ndarray, width: int
) -> QualityMetrics:
    """Compute metrics from paired output samples of the two adders.

    Parameters
    ----------
    approx, exact:
        Equal-length integer arrays of approximate and exact sums for
        the same operand samples.
    width:
        Operand width in bits (for NMED normalisation).
    """
    approx = np.asarray(approx, dtype=np.int64)
    exact = np.asarray(exact, dtype=np.int64)
    if approx.shape != exact.shape or approx.ndim != 1:
        raise AnalysisError(
            f"approx/exact must be equal-length 1-D arrays, got "
            f"{approx.shape} and {exact.shape}"
        )
    if approx.size == 0:
        raise AnalysisError("empty sample arrays")
    delta = approx - exact
    abs_delta = np.abs(delta)
    med = float(abs_delta.mean())
    return QualityMetrics(
        error_rate=float((delta != 0).mean()),
        med=med,
        nmed=med / max_exact_output(width),
        mse=float((delta.astype(np.float64) ** 2).mean()),
        wce=int(abs_delta.max()),
        mred=float((abs_delta / np.maximum(exact, 1)).mean()),
    )
