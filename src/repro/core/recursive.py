"""The paper's recursive analytical engine (Algorithm 1, §4.1-4.2).

This is the reference implementation: a readable, scalar, single pass
over the adder stages.  For every stage it builds the eight-entry input
probability vector (IPM, Eq. 10) and contracts it with the cell's
M/K/L masks to propagate the success-conditioned carry probabilities
(Eq. 11); the last stage yields ``P(Succ)`` via the L mask (Eq. 12) and
``P(Error) = 1 - P(Succ)`` (Eq. 9).

The engine natively supports *hybrid* chains (a different cell at every
stage) and exact rational arithmetic (pass probabilities as
``fractions.Fraction`` with ``exact=True`` inputs) -- the recursion only
ever multiplies and adds, so `Fraction` flows through untouched.

For large batches of probability points, prefer
:mod:`repro.core.vectorized` which evaluates thousands of sweeps at once
with NumPy; it is validated against this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from .._compat import warn_deprecated
from ..obs import metrics as _metrics
from ..obs.tracing import trace_span
from .adders import get_cell
from .exceptions import ChainLengthError
from .matrices import AnalysisMatrices, derive_matrices
from .truth_table import FullAdderTruthTable
from .types import (
    Probability,
    complement,
    validate_probability,
    validate_probability_vector,
)

CellSpec = Union[str, FullAdderTruthTable]


def resolve_cell(cell: CellSpec) -> FullAdderTruthTable:
    """Accept either a cell name (registry lookup) or a truth table."""
    if isinstance(cell, FullAdderTruthTable):
        return cell
    return get_cell(cell)


def resolve_chain(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
) -> List[FullAdderTruthTable]:
    """Normalise a cell spec to a per-stage list of truth tables.

    * a single cell + ``width`` -> uniform chain of that width;
    * a sequence of cells -> hybrid chain, ``width`` (if given) must match.
    """
    if isinstance(cell, (str, FullAdderTruthTable)):
        if width is None:
            raise ChainLengthError("width is required for a uniform chain")
        if width < 1:
            raise ChainLengthError(f"width must be >= 1, got {width}", width)
        table = resolve_cell(cell)
        return [table] * width
    cells = [resolve_cell(c) for c in cell]
    if not cells:
        raise ChainLengthError("a chain needs at least one stage", 0)
    if width is not None and width != len(cells):
        raise ChainLengthError(
            f"width={width} does not match the {len(cells)}-stage cell list",
            width,
        )
    return cells


def build_ipm(
    p_a: Probability,
    p_b: Probability,
    p_c1_succ: Probability,
    p_c0_succ: Probability,
) -> List[Probability]:
    """Build the eight-entry Input Probability Matrix of Eq. 10.

    ``p_c1_succ``/``p_c0_succ`` are ``P(C_curr ∩ Succ)`` and
    ``P(C̄_curr ∩ Succ)``; rows are ordered ``(A,B,Cin) = 000..111``.
    """
    qa = complement(p_a)
    qb = complement(p_b)
    return [
        qa * qb * p_c0_succ,
        qa * qb * p_c1_succ,
        qa * p_b * p_c0_succ,
        qa * p_b * p_c1_succ,
        p_a * qb * p_c0_succ,
        p_a * qb * p_c1_succ,
        p_a * p_b * p_c0_succ,
        p_a * p_b * p_c1_succ,
    ]


def mask_dot(ipm: Sequence[Probability], mask: Sequence[int]) -> Probability:
    """Dot product of an IPM with a 0/1 mask, skipping zero entries.

    Written as a masked sum (rather than ``sum(p*m ...)``) so that exact
    `Fraction` inputs are never multiplied by floats.
    """
    total: Probability = 0
    for value, bit in zip(ipm, mask):
        if bit:
            total = total + value
    return total


@dataclass(frozen=True)
class StageRecord:
    """Per-stage quantities produced by the recursion (one Table 4 column)."""

    index: int
    cell_name: str
    p_a: Probability
    p_b: Probability
    p_c0_curr_succ: Probability   # P(C̄_curr ∩ Succ) entering the stage
    p_c1_curr_succ: Probability   # P(C_curr ∩ Succ) entering the stage
    p_c0_next_succ: Optional[Probability]  # None at the final stage ("NR")
    p_c1_next_succ: Optional[Probability]
    p_success: Optional[Probability]       # only set at the final stage

    @property
    def survival(self) -> Probability:
        """Total success-conditioned mass entering this stage,
        ``P(C∩Succ) + P(C̄∩Succ)`` -- non-increasing along the chain."""
        return self.p_c0_curr_succ + self.p_c1_curr_succ


@dataclass(frozen=True)
class ChainAnalysisResult:
    """Outcome of analysing one multi-bit chain at one probability point."""

    p_success: Probability
    width: int
    cell_names: Tuple[str, ...]
    p_a: Tuple[Probability, ...]
    p_b: Tuple[Probability, ...]
    p_cin: Probability
    trace: Tuple[StageRecord, ...] = field(default=(), repr=False)

    @property
    def p_error(self) -> Probability:
        """``P(Error) = 1 - P(Succ)`` (Eq. 9)."""
        return complement(self.p_success)

    def is_uniform(self) -> bool:
        """``True`` when every stage uses the same cell."""
        return len(set(self.cell_names)) == 1


def analyze_chain(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    keep_trace: bool = False,
) -> ChainAnalysisResult:
    """Analyse an N-bit (possibly hybrid) chain of approximate full adders.

    Parameters
    ----------
    cell:
        A cell name (``"LPAA 1"``), a :class:`FullAdderTruthTable`, or a
        per-stage sequence of either for hybrid chains (stage 0 = LSB).
    width:
        Number of stages N.  Required for a uniform chain; optional (and
        cross-checked) for a hybrid list.
    p_a, p_b:
        Probability that each operand bit is 1; a scalar broadcasts to
        all stages, a sequence gives per-bit probabilities (index 0 =
        LSB).
    p_cin:
        Probability that the stage-0 carry-in is 1.
    keep_trace:
        Record per-stage carry probabilities (reproduces paper Table 4).

    Returns
    -------
    ChainAnalysisResult
        With ``p_success`` = probability that *every* stage produces the
        exact sum and carry.  For cells where carry divergence always
        corrupts an output bit (all seven paper LPAAs -- see
        :mod:`repro.core.masking`), this equals the probability that the
        (N+1)-bit output is exactly correct.

    Examples
    --------
    >>> round(analyze_chain("LPAA 1", width=4,
    ...                     p_a=[0.9, 0.5, 0.4, 0.8],
    ...                     p_b=[0.8, 0.7, 0.6, 0.9],
    ...                     p_cin=0.5).p_success, 6)
    0.738476
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = validate_probability_vector(p_a, n, "p_a")
    pb = validate_probability_vector(p_b, n, "p_b")
    pc = validate_probability(p_cin, "p_cin")

    matrices: List[AnalysisMatrices] = [derive_matrices(t) for t in cells]

    with _metrics.timed("core.recursive.analyze_chain"), \
            trace_span("core.recursive.analyze_chain", width=n):
        # Initialisation (Eq. 5): before any stage can fail, "success" is
        # certain, so the carry-in splits the full unit mass.
        p_c1 = pc
        p_c0 = complement(pc)

        trace: List[StageRecord] = []
        p_success: Probability = 0
        for i, (table, mkl) in enumerate(zip(cells, matrices)):
            ipm = build_ipm(pa[i], pb[i], p_c1, p_c0)
            last = i == n - 1
            if last:
                p_success = mask_dot(ipm, mkl.l)
                next_c1: Optional[Probability] = None
                next_c0: Optional[Probability] = None
            else:
                next_c1 = mask_dot(ipm, mkl.m)
                next_c0 = mask_dot(ipm, mkl.k)
            if keep_trace:
                trace.append(
                    StageRecord(
                        index=i,
                        cell_name=table.name,
                        p_a=pa[i],
                        p_b=pb[i],
                        p_c0_curr_succ=p_c0,
                        p_c1_curr_succ=p_c1,
                        p_c0_next_succ=next_c0,
                        p_c1_next_succ=next_c1,
                        p_success=p_success if last else None,
                    )
                )
            if not last:
                p_c1 = next_c1  # Eq. 6: carry-out of i is carry-in of i+1
                p_c0 = next_c0

    if _metrics.is_enabled():
        registry = _metrics.get_registry()
        registry.counter("core.recursive.calls").add(1)
        registry.counter("core.recursive.stages").add(n)

    return ChainAnalysisResult(
        p_success=p_success,
        width=n,
        cell_names=tuple(t.name for t in cells),
        p_a=tuple(pa),
        p_b=tuple(pb),
        p_cin=pc,
        trace=tuple(trace),
    )


def error_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> Probability:
    """Shortcut returning only ``P(Error)`` of :func:`analyze_chain`.

    .. deprecated::
        Call ``repro.engine.run(cell, width, p_a, p_b, p_cin).p_error``
        instead (cached, registry-routed); :func:`analyze_chain` remains
        the non-deprecated digit-exact primitive.
    """
    warn_deprecated("core.recursive.error_probability",
                    "repro.engine.run(...).p_error")
    return analyze_chain(cell, width, p_a, p_b, p_cin).p_error


def success_probability(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> Probability:
    """Shortcut returning only ``P(Succ)`` of :func:`analyze_chain`.

    .. deprecated::
        Call ``repro.engine.run(cell, width, p_a, p_b, p_cin).p_success``
        instead (cached, registry-routed); :func:`analyze_chain` remains
        the non-deprecated digit-exact primitive.
    """
    warn_deprecated("core.recursive.success_probability",
                    "repro.engine.run(...).p_success")
    return analyze_chain(cell, width, p_a, p_b, p_cin).p_success
