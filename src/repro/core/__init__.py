"""Core of the library: the paper's recursive statistical error analysis.

Public surface:

* cells and truth tables -- :mod:`repro.core.truth_table`,
  :mod:`repro.core.adders`;
* analysis masks -- :mod:`repro.core.matrices`;
* the recursion (scalar / traced / vectorised) --
  :mod:`repro.core.recursive`, :mod:`repro.core.stages`,
  :mod:`repro.core.vectorized`;
* extensions -- :mod:`repro.core.sum_analysis`,
  :mod:`repro.core.magnitude`, :mod:`repro.core.metrics`,
  :mod:`repro.core.hybrid`, :mod:`repro.core.masking`.
"""

from .adder_zoo import (
    PREFIX_TOPOLOGIES,
    ZOO_FAMILIES,
    WindowedAdderSpec,
    WindowedQualityReport,
    ZooAdder,
    ZooCost,
    ZooFamily,
    from_gear,
    named_zoo,
    parse_adder,
    prefix_depth,
    prefix_levels,
    truncated_prefix_spec,
    windowed_add,
    windowed_add_array,
    windowed_error_moments,
    windowed_error_pmf,
    windowed_error_probability,
    windowed_exhaustive_quality,
    windowed_joint_error_pmf,
    windowed_worst_case_error,
    zoo_cost,
)
from .adders import (
    ACCURATE_CELL,
    CELL_CHARACTERISTICS,
    LPAA1,
    LPAA2,
    LPAA3,
    LPAA4,
    LPAA5,
    LPAA6,
    LPAA7,
    PAPER_LPAAS,
    CellCharacteristics,
    CellRegistry,
    LOA_GEN,
    LOA_OR,
    get_cell,
    paper_cell,
    registry,
)
from .exceptions import (
    AnalysisError,
    ChainLengthError,
    CheckpointError,
    ExplorationError,
    GeArConfigError,
    NetlistError,
    ProbabilityError,
    RegistryError,
    ReproError,
    SupportLimitError,
    SynthesisError,
    TruthTableError,
    ValidationError,
)
from .correlated import (
    JointBitDistribution,
    analyze_chain_correlated,
    error_probability_correlated,
    self_addition_error,
)
from .hybrid import HybridChain
from .magnitude import (
    ErrorMoments,
    WorstCaseError,
    error_moments,
    error_pmf,
    joint_error_pmf,
    relative_error_from_joint,
    worst_case_error,
)
from .masking import MaskingReport, chain_is_exact, masking_analysis
from .matrices import (
    TABLE5_MATRICES,
    AnalysisMatrices,
    derive_carry_matrices,
    derive_matrices,
    derive_sum_matrix,
)
from .metrics import QualityMetrics, metrics_from_pmf, metrics_from_samples
from .recursive import (
    ChainAnalysisResult,
    StageRecord,
    analyze_chain,
    error_probability,
    success_probability,
)
from .stages import format_trace_table, trace_chain, trace_rows
from .symbolic import Polynomial, symbolic_error_probability
from .sum_analysis import (
    JointCarryState,
    bit_error_probabilities,
    carry_profile,
    joint_carry_profile,
    sum_bit_probabilities,
)
from .truth_table import ACCURATE, ErrorCase, FullAdderTruthTable
from .value_distribution import (
    output_bias,
    output_mean,
    output_value_pmf,
    total_variation_distance,
)
from .vectorized import (
    analyze_batch,
    error_batch,
    error_by_width,
    success_by_width,
)

__all__ = [
    # cells / tables
    "ACCURATE",
    "ACCURATE_CELL",
    "FullAdderTruthTable",
    "ErrorCase",
    "LPAA1",
    "LPAA2",
    "LPAA3",
    "LPAA4",
    "LPAA5",
    "LPAA6",
    "LPAA7",
    "PAPER_LPAAS",
    "CELL_CHARACTERISTICS",
    "CellCharacteristics",
    "CellRegistry",
    "registry",
    "get_cell",
    "paper_cell",
    "LOA_OR",
    "LOA_GEN",
    # the adder-family zoo
    "WindowedAdderSpec",
    "WindowedQualityReport",
    "ZooAdder",
    "ZooCost",
    "ZooFamily",
    "ZOO_FAMILIES",
    "PREFIX_TOPOLOGIES",
    "from_gear",
    "named_zoo",
    "parse_adder",
    "prefix_depth",
    "prefix_levels",
    "truncated_prefix_spec",
    "windowed_add",
    "windowed_add_array",
    "windowed_error_moments",
    "windowed_error_pmf",
    "windowed_error_probability",
    "windowed_exhaustive_quality",
    "windowed_joint_error_pmf",
    "windowed_worst_case_error",
    "zoo_cost",
    # masks
    "AnalysisMatrices",
    "TABLE5_MATRICES",
    "derive_matrices",
    "derive_carry_matrices",
    "derive_sum_matrix",
    # recursion
    "analyze_chain",
    "error_probability",
    "success_probability",
    "ChainAnalysisResult",
    "StageRecord",
    "trace_chain",
    "trace_rows",
    "format_trace_table",
    # vectorised
    "analyze_batch",
    "error_batch",
    "success_by_width",
    "error_by_width",
    # extensions
    "carry_profile",
    "sum_bit_probabilities",
    "joint_carry_profile",
    "bit_error_probabilities",
    "JointCarryState",
    "error_pmf",
    "error_moments",
    "ErrorMoments",
    "WorstCaseError",
    "worst_case_error",
    "joint_error_pmf",
    "relative_error_from_joint",
    "QualityMetrics",
    "metrics_from_pmf",
    "metrics_from_samples",
    "Polynomial",
    "symbolic_error_probability",
    "JointBitDistribution",
    "analyze_chain_correlated",
    "error_probability_correlated",
    "self_addition_error",
    "output_value_pmf",
    "output_mean",
    "output_bias",
    "total_variation_distance",
    "HybridChain",
    "chain_is_exact",
    "masking_analysis",
    "MaskingReport",
    # exceptions
    "ReproError",
    "ProbabilityError",
    "TruthTableError",
    "ChainLengthError",
    "RegistryError",
    "GeArConfigError",
    "NetlistError",
    "SynthesisError",
    "AnalysisError",
    "ExplorationError",
    "CheckpointError",
    "SupportLimitError",
    "ValidationError",
]
