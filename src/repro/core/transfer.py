"""Segment transfer matrices: exact O(log N) composition of the recursion.

The paper's stage recursion (Eq. 11) advances the success-conditioned
carry vector ``v = (P(C̄∩Succ), P(C∩Succ))`` through one linear map per
stage, and contracts the final state with the L-mask functional
(Eq. 12).  Linear maps compose associatively, so any contiguous *segment*
of stages collapses into a single 2x2 matrix plus a final-row functional
-- and a whole chain becomes O(log N) compositions over a canonical
segment tree whose aligned sub-blocks are shared between every chain
that extends the same prefix (:mod:`repro.engine.segcache` stores them
content-addressed, like the disk result cache).

**Exactness contract.**  Floating-point summation is *not* associative,
so a float-matrix composition could never promise the same bits as the
stage-by-stage reference.  This module therefore computes in exact
dyadic arithmetic: every IEEE-754 probability is a dyadic rational
``num / 2**exp`` (:meth:`float.as_integer_ratio`), and products and sums
of dyadics are exact integer arithmetic.  Exact composition *is*
associative, which yields three guarantees at once:

* the evaluated ``P(Succ)`` is the correctly-rounded float of the exact
  rational value -- bit-identical to
  :func:`repro.core.recursive.analyze_chain` run in its documented exact
  mode (``fractions.Fraction`` operands flow through untouched);
* the segment-tree bracketing cannot change the answer, so any prefix /
  suffix split -- and therefore any cache hit pattern -- returns the
  same bits as a cold stage-by-stage evaluation (warm == cold);
* serial and parallel evaluations agree bit-for-bit with no
  fixed-order summation discipline needed (the `_masked_sum` contract
  of the float path is subsumed: exact sums have no rounding order).

Entry points: :func:`lower_stage` turns one ``(cell, P(A), P(B))`` stage
into a :class:`SegmentMatrix`; :func:`compose` joins two adjacent
segments; :func:`evaluate` contracts a segment with the carry-in law
into the correctly-rounded ``P(Succ)``; :func:`chain_matrix` builds the
canonical aligned decomposition of a whole chain (pluggable ``leaf`` /
``combine`` hooks are the cache's seam); :func:`analyze_chain_transfer`
is the convenience one-call form.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from .matrices import derive_matrices
from .recursive import CellSpec, resolve_chain
from .truth_table import FullAdderTruthTable
from .types import validate_probability, validate_probability_vector

#: Decimal digits kept when quantising probabilities into content keys
#: (the library-wide convention shared with ``engine.cache`` and the
#: disk result store -- see QUANT_DIGITS there; duplicated as a literal
#: to keep core free of engine imports).
KEY_QUANT_DIGITS = 12


def _dyadic(value: float) -> Tuple[int, int]:
    """*value* as ``(num, exp)`` with ``value = num / 2**exp``, exactly.

    Every finite IEEE-754 double is a dyadic rational; probabilities in
    ``[0, 1]`` always yield ``exp >= 0``.
    """
    num, den = float(value).as_integer_ratio()
    exp = den.bit_length() - 1
    if 1 << exp != den:  # pragma: no cover - impossible for finite floats
        raise ValueError(f"{value!r} is not a dyadic rational")
    return num, exp


@dataclass(frozen=True)
class SegmentMatrix:
    """The exact transfer map of one contiguous run of adder stages.

    The six integers encode, over the common power-of-two denominator
    ``2**exp``:

    * ``t00 t01 / t10 t11`` -- the 2x2 carry update ``v' = T v`` a
      non-final segment applies to ``v = (P(C̄∩Succ), P(C∩Succ))``
      (``T[out][in]``, matching
      :class:`repro.engine.cache.StageTransition`);
    * ``l0 l1`` -- the success functional of the segment's *last* stage
      composed with the stages before it: ``P(Succ) = l . v`` when the
      segment is the chain's tail (Eq. 12).

    ``span`` counts the stages covered; ``key`` is the segment's content
    address -- a Merkle hash over (truth-table rows, quantised operand
    probabilities) for leaves and over the child keys for composites, so
    equal keys mean equal stage content and the store can be shared
    across processes without trusting pickles.

    Representations are canonical: the common power of two dividing all
    six numerators is stripped (:func:`_normalise`), so equal values
    have equal fields and composition is associative at the field level,
    not just the value level.
    """

    span: int
    exp: int
    t00: int
    t01: int
    t10: int
    t11: int
    l0: int
    l1: int
    key: str

    def entries(self) -> Tuple[int, int, int, int, int, int]:
        return (self.t00, self.t01, self.t10, self.t11, self.l0, self.l1)


def _normalise(entries: Sequence[int], exp: int) -> Tuple[Tuple[int, ...], int]:
    """Strip the largest common power of two (canonical dyadic form)."""
    lowest: Optional[int] = None
    for value in entries:
        if value:
            bits = (value & -value).bit_length() - 1
            lowest = bits if lowest is None else min(lowest, bits)
            if lowest == 0:
                break
    if lowest is None:  # all-zero matrix: denominator is meaningless
        return tuple(entries), 0
    shift = min(lowest, exp)
    if shift == 0:
        return tuple(entries), exp
    return tuple(value >> shift for value in entries), exp - shift


def leaf_key(table: FullAdderTruthTable, p_a: float, p_b: float) -> str:
    """Content address of a single-stage segment.

    Probabilities are quantised to :data:`KEY_QUANT_DIGITS` decimal
    digits -- the library-wide keying convention (stage-matrix LRU, disk
    result store), well below the 1e-12 parity tolerance of the
    analytical engines.
    """
    doc = repr(("sealpaa-segment-leaf-v1", table.rows,
                round(float(p_a), KEY_QUANT_DIGITS),
                round(float(p_b), KEY_QUANT_DIGITS)))
    return hashlib.sha256(doc.encode()).hexdigest()


def node_key(left_key: str, right_key: str) -> str:
    """Content address of the composition of two adjacent segments."""
    doc = f"sealpaa-segment-node-v1:{left_key}:{right_key}"
    return hashlib.sha256(doc.encode()).hexdigest()


def lower_stage(
    table: FullAdderTruthTable, p_a: float, p_b: float
) -> SegmentMatrix:
    """Lower one ``(cell, P(A), P(B))`` stage to its exact transfer map.

    Expands the M/K/L mask contraction of
    :func:`repro.engine.cache._build_transition` in dyadic integers: the
    four operand-pair weights ``(q_a q_b, q_a p_b, p_a q_b, p_a p_b)``
    are brought to one common denominator, then routed to the ``T`` rows
    (K mask -> row 0, M mask -> row 1) and the ``l`` functional by carry
    bit, exactly as the float path does -- but with no rounding.
    """
    mkl = derive_matrices(table)
    an, ae = _dyadic(p_a)
    bn, be = _dyadic(p_b)
    # Complements in integer space: (2**e - n) / 2**e is exact for every
    # operand, where float ``1.0 - p`` would round for p below ~2**-53.
    qan, qbn = (1 << ae) - an, (1 << be) - bn
    exp = ae + be
    weights = [qan * qbn, qan * bn, an * qbn, an * bn]
    t = [0, 0, 0, 0, 0, 0]  # t00 t01 t10 t11 l0 l1
    for row in range(8):
        weight = weights[row >> 1]  # (a<<1 | b) indexes the pair weights
        cin = row & 1
        if mkl.k[row]:
            t[0 + cin] += weight
        if mkl.m[row]:
            t[2 + cin] += weight
        if mkl.l[row]:
            t[4 + cin] += weight
    entries, exp = _normalise(t, exp)
    return SegmentMatrix(1, exp, *entries, key=leaf_key(table, p_a, p_b))


def compose(left: SegmentMatrix, right: SegmentMatrix) -> SegmentMatrix:
    """The transfer map of *left* followed by *right* (exact).

    The carry block is the matrix product ``T = T_right @ T_left``; the
    success functional is *right*'s functional pulled back through
    *left*'s carry block (``l = l_right . T_left``), because only the
    chain's final stage contributes its L row.  Associative by
    construction: integer arithmetic has no rounding to reorder.
    """
    a00, a01, a10, a11, al0, al1 = left.entries()
    b00, b01, b10, b11, bl0, bl1 = right.entries()
    entries, exp = _normalise(
        (b00 * a00 + b01 * a10, b00 * a01 + b01 * a11,
         b10 * a00 + b11 * a10, b10 * a01 + b11 * a11,
         bl0 * a00 + bl1 * a10, bl0 * a01 + bl1 * a11),
        left.exp + right.exp,
    )
    return SegmentMatrix(left.span + right.span, exp, *entries,
                         key=node_key(left.key, right.key))


def evaluate(segment: SegmentMatrix, p_cin: float) -> float:
    """``P(Succ)`` of the chain *segment* covers, correctly rounded.

    Contracts the success functional with the exact carry-in law
    ``v = (1 - p_cin, p_cin)`` and performs the one and only rounding of
    the whole pipeline: Python's big-int true division, which rounds
    correctly to nearest-even -- the same float ``fractions.Fraction``
    conversion produces, hence bit-identity with the exact-mode
    reference recursion.
    """
    cn, ce = _dyadic(p_cin)
    c0 = (1 << ce) - cn  # exact complement (see lower_stage)
    num = segment.l0 * c0 + segment.l1 * cn
    if num == 0:
        return 0.0
    return num / (1 << (segment.exp + ce))


LeafFn = Callable[[FullAdderTruthTable, float, float], SegmentMatrix]
CombineFn = Callable[[SegmentMatrix, SegmentMatrix], SegmentMatrix]


def aligned_blocks(n: int) -> Iterator[Tuple[int, int]]:
    """The canonical decomposition of ``[0, n)`` into aligned blocks.

    Yields left-to-right ``(lo, hi)`` spans where each span is a power
    of two and ``lo`` is a multiple of the span (Fenwick alignment).
    Alignment is what makes sub-blocks shareable: every chain longer
    than ``k`` decomposes the prefix ``[0, k_aligned)`` into the *same*
    blocks, so a content-addressed store hits them regardless of total
    chain length.  At most ``2*log2(n)`` blocks are yielded.
    """
    if n < 1:
        raise ValueError(f"need at least one stage, got {n}")
    lo = 0
    while lo < n:
        limit = 1 << ((n - lo).bit_length() - 1)  # largest pow2 <= rest
        align = lo & -lo or limit                 # alignment of lo
        size = min(align, limit)
        yield lo, lo + size
        lo += size


def _block(
    cells: Sequence[FullAdderTruthTable],
    p_a: Sequence[float],
    p_b: Sequence[float],
    lo: int,
    hi: int,
    leaf: LeafFn,
    combine: CombineFn,
) -> SegmentMatrix:
    """One aligned power-of-two block, built from its aligned halves.

    The recursion shape is fixed by ``(lo, hi)`` alone, so every process
    asks the cache for the same node keys in the same places.
    """
    if hi - lo == 1:
        return leaf(cells[lo], p_a[lo], p_b[lo])
    mid = (lo + hi) // 2
    return combine(_block(cells, p_a, p_b, lo, mid, leaf, combine),
                   _block(cells, p_a, p_b, mid, hi, leaf, combine))


def chain_matrix(
    cells: Sequence[FullAdderTruthTable],
    p_a: Sequence[float],
    p_b: Sequence[float],
    leaf: Optional[LeafFn] = None,
    combine: Optional[CombineFn] = None,
) -> SegmentMatrix:
    """The whole-chain transfer map over the canonical segment tree.

    Aligned power-of-two blocks are built bottom-up from aligned halves
    and folded left to right.  *leaf* and *combine* default (``None``)
    to the pure builders :func:`lower_stage` / :func:`compose`;
    :class:`repro.engine.segcache.SegmentCache` passes its memoised
    versions, which is the entire integration seam -- the tree shape
    (and, by exactness, the value) is identical either way.
    """
    leaf = lower_stage if leaf is None else leaf
    combine = compose if combine is None else combine
    n = len(cells)
    if not (len(p_a) == len(p_b) == n):
        raise ValueError(
            f"need one probability pair per stage: got {len(p_a)}/{len(p_b)} "
            f"for {n} stages"
        )
    out: Optional[SegmentMatrix] = None
    for lo, hi in aligned_blocks(n):
        block = _block(cells, p_a, p_b, lo, hi, leaf, combine)
        out = block if out is None else combine(out, block)
    assert out is not None
    return out


def analyze_chain_transfer(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[float, Sequence[float]] = 0.5,
    p_b: Union[float, Sequence[float]] = 0.5,
    p_cin: float = 0.5,
    leaf: Optional[LeafFn] = None,
    combine: Optional[CombineFn] = None,
) -> float:
    """``P(Succ)`` of a chain via segment transfer matrices.

    Accepts the library-wide ``(cell, width, p_a, p_b, p_cin)``
    convention of :func:`~repro.core.recursive.analyze_chain` and
    returns the identical bits that function produces in exact
    (``Fraction``-operand) mode -- see the module docstring for why the
    float-mode recursion cannot be the bit reference.

    >>> from fractions import Fraction
    >>> from repro.core.recursive import analyze_chain
    >>> exact = analyze_chain("LPAA 2", 16, Fraction(3, 10),
    ...                       Fraction(3, 10), Fraction(1, 2)).p_success
    >>> analyze_chain_transfer("LPAA 2", 16, 0.3, 0.3, 0.5) == float(exact)
    True
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))
    return evaluate(chain_matrix(cells, pa, pb, leaf, combine), pc)
