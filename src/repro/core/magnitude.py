"""Exact arithmetic-error *magnitude* analysis (extension beyond the paper).

The paper reports the word-level error probability ``P(Error)``.  Error-
resilient applications usually also care about *how wrong* an erroneous
sum is (mean error distance, MSE...).  Because each stage's operand bits
are independent of its carry-in, the pair ``(approximate carry, exact
carry)`` is a Markov state, and the numeric difference

``D = approx_output - exact_output
    = sum_i (s_approx_i - s_exact_i) * 2^i  +  (c_approx_N - c_exact_N) * 2^N``

can be tracked exactly alongside it:

* :func:`error_pmf` -- the full probability mass function of ``D``
  (a DP over ``{(carry state) -> {delta: prob}}``); exponential worst
  case in width, practical to ~20 bits, guarded by ``max_entries``.
* :func:`error_moments` -- exact ``E[D]`` and ``E[D^2]`` for *any*
  width in linear time, by propagating per-state first/second moments
  instead of full distributions.

Both support hybrid chains and per-bit probabilities, and are
cross-validated against exhaustive enumeration and each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from .exceptions import AnalysisError
from .recursive import CellSpec, resolve_chain
from .truth_table import ACCURATE
from .types import (
    Probability,
    validate_probability,
    validate_probability_vector,
)

#: Carry-pair Markov states ``(c_approx, c_exact)``.
_STATES: Tuple[Tuple[int, int], ...] = ((0, 0), (0, 1), (1, 0), (1, 1))


def _weights(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int],
    p_a: Union[Probability, Sequence[Probability]],
    p_b: Union[Probability, Sequence[Probability]],
    p_cin: Probability,
):
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))
    return cells, n, pa, pb, pc


def error_pmf(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    max_entries: int = 2_000_000,
    prune_below: float = 0.0,
) -> Dict[int, float]:
    """Exact PMF of ``D = approx - exact`` for the whole adder output.

    Parameters
    ----------
    max_entries:
        Abort (``AnalysisError``) if the intermediate support grows past
        this many ``(state, delta)`` pairs -- a guard against
        pathological very wide adders.
    prune_below:
        Optionally drop deltas whose accumulated mass is below this
        threshold (default 0: fully exact).  When pruning, the returned
        PMF may sum to slightly less than 1.

    Returns
    -------
    dict
        ``{delta: probability}`` with strictly positive probabilities.
    """
    cells, n, pa, pb, pc = _weights(cell, width, p_a, p_b, p_cin)

    # state -> {delta: prob}; both chains share the carry-in.
    dists: Dict[Tuple[int, int], Dict[int, float]] = {
        (0, 0): {0: 1.0 - pc} if pc < 1.0 else {},
        (1, 1): {0: pc} if pc > 0.0 else {},
    }

    for i, table in enumerate(cells):
        weight_bit = 1 << i
        nxt: Dict[Tuple[int, int], Dict[int, float]] = {}
        for (ca, ce), dist in dists.items():
            if not dist:
                continue
            for a in (0, 1):
                wa = pa[i] if a else 1.0 - pa[i]
                if wa == 0.0:
                    continue
                for b in (0, 1):
                    wb = pb[i] if b else 1.0 - pb[i]
                    w = wa * wb
                    if w == 0.0:
                        continue
                    sa, ca_next = table.evaluate(a, b, ca)
                    se, ce_next = ACCURATE.evaluate(a, b, ce)
                    delta_inc = (sa - se) * weight_bit
                    bucket = nxt.setdefault((ca_next, ce_next), {})
                    for delta, prob in dist.items():
                        key = delta + delta_inc
                        bucket[key] = bucket.get(key, 0.0) + prob * w
        if prune_below > 0.0:
            for bucket in nxt.values():
                stale = [d for d, p in bucket.items() if p < prune_below]
                for d in stale:
                    del bucket[d]
        size = sum(len(bucket) for bucket in nxt.values())
        if size > max_entries:
            raise AnalysisError(
                f"error_pmf support exceeded max_entries={max_entries} at "
                f"stage {i}; raise the limit, set prune_below, or use "
                "error_moments() for wide adders"
            )
        dists = nxt

    weight_carry = 1 << n
    pmf: Dict[int, float] = {}
    for (ca, ce), dist in dists.items():
        delta_inc = (ca - ce) * weight_carry
        for delta, prob in dist.items():
            key = delta + delta_inc
            pmf[key] = pmf.get(key, 0.0) + prob
    return {d: p for d, p in pmf.items() if p > 0.0}


@dataclass(frozen=True)
class ErrorMoments:
    """Exact first/second moments of the arithmetic error ``D``."""

    mean: float
    second_moment: float
    width: int

    @property
    def variance(self) -> float:
        """``Var[D] = E[D^2] - E[D]^2`` (clamped at 0 for rounding)."""
        return max(self.second_moment - self.mean * self.mean, 0.0)

    @property
    def rms(self) -> float:
        """Root-mean-square error ``sqrt(E[D^2])``."""
        return self.second_moment ** 0.5

    @property
    def normalized_rms(self) -> float:
        """RMS divided by the maximum exact output ``2^(N+1) - 1``."""
        return self.rms / float((1 << (self.width + 1)) - 1)


def error_moments(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> ErrorMoments:
    """Exact ``E[D]`` and ``E[D^2]`` in O(width) time and O(1) memory.

    Per carry-pair state ``s`` we propagate ``(p_s, m1_s, m2_s)`` where
    ``m1_s = E[D * 1_s]`` and ``m2_s = E[D^2 * 1_s]``; an increment
    ``delta`` on a transition of weight ``w`` updates them linearly:

    ``p' += w p``, ``m1' += w (m1 + delta p)``,
    ``m2' += w (m2 + 2 delta m1 + delta^2 p)``.
    """
    cells, n, pa, pb, pc = _weights(cell, width, p_a, p_b, p_cin)

    stats: Dict[Tuple[int, int], Tuple[float, float, float]] = {
        (0, 0): (1.0 - pc, 0.0, 0.0),
        (0, 1): (0.0, 0.0, 0.0),
        (1, 0): (0.0, 0.0, 0.0),
        (1, 1): (pc, 0.0, 0.0),
    }

    for i, table in enumerate(cells):
        weight_bit = float(1 << i)
        nxt = {state: [0.0, 0.0, 0.0] for state in _STATES}
        for (ca, ce), (p, m1, m2) in stats.items():
            if p == 0.0 and m1 == 0.0 and m2 == 0.0:
                continue
            for a in (0, 1):
                wa = pa[i] if a else 1.0 - pa[i]
                if wa == 0.0:
                    continue
                for b in (0, 1):
                    wb = pb[i] if b else 1.0 - pb[i]
                    w = wa * wb
                    if w == 0.0:
                        continue
                    sa, ca_next = table.evaluate(a, b, ca)
                    se, ce_next = ACCURATE.evaluate(a, b, ce)
                    delta = (sa - se) * weight_bit
                    acc = nxt[(ca_next, ce_next)]
                    acc[0] += w * p
                    acc[1] += w * (m1 + delta * p)
                    acc[2] += w * (m2 + 2.0 * delta * m1 + delta * delta * p)
        stats = {state: tuple(vals) for state, vals in nxt.items()}  # type: ignore[misc]

    weight_carry = float(1 << n)
    mean = 0.0
    second = 0.0
    for (ca, ce), (p, m1, m2) in stats.items():
        delta = (ca - ce) * weight_carry
        mean += m1 + delta * p
        second += m2 + 2.0 * delta * m1 + delta * delta * p
    return ErrorMoments(mean=mean, second_moment=second, width=n)
