"""Exact arithmetic-error *magnitude* analysis (extension beyond the paper).

The paper reports the word-level error probability ``P(Error)``.  Error-
resilient applications usually also care about *how wrong* an erroneous
sum is (mean error distance, MSE...).  Because each stage's operand bits
are independent of its carry-in, the pair ``(approximate carry, exact
carry)`` is a Markov state, and the numeric difference

``D = approx_output - exact_output
    = sum_i (s_approx_i - s_exact_i) * 2^i  +  (c_approx_N - c_exact_N) * 2^N``

can be tracked exactly alongside it:

* :func:`error_pmf` -- the full probability mass function of ``D``
  (a DP over ``{(carry state) -> {delta: prob}}``); exponential worst
  case in width, practical to ~20 bits, guarded by ``max_entries``.
* :func:`error_moments` -- exact ``E[D]`` and ``E[D^2]`` for *any*
  width in linear time, by propagating per-state first/second moments
  instead of full distributions.
* :func:`worst_case_error` -- exact ``max |D|`` (WCE) for *any* width
  in linear time, by propagating the reachable ``[min, max]`` delta
  interval per carry-pair state (extremes compose stage-by-stage even
  though the full distribution does not).
* :func:`joint_error_pmf` -- the joint law of ``(D, exact sum)``,
  from which the mean *relative* error distance (MRED) falls out
  exactly; support is bounded by ``2^(N+1)`` exact values times the
  delta support, so the same ``max_entries`` guard applies.

All support hybrid chains and per-bit probabilities, and are
cross-validated against exhaustive enumeration and each other.  When a
guarded DP outgrows ``max_entries`` it raises
:class:`~repro.core.exceptions.SupportLimitError` carrying the width,
support size and stage, so callers (the engine's distribution router)
can degrade to a truncated DP or Monte-Carlo instead of parsing the
message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from .exceptions import AnalysisError, SupportLimitError
from .recursive import CellSpec, resolve_chain
from .truth_table import ACCURATE
from .types import (
    Probability,
    validate_probability,
    validate_probability_vector,
)

#: Carry-pair Markov states ``(c_approx, c_exact)``.
_STATES: Tuple[Tuple[int, int], ...] = ((0, 0), (0, 1), (1, 0), (1, 1))


def _weights(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int],
    p_a: Union[Probability, Sequence[Probability]],
    p_b: Union[Probability, Sequence[Probability]],
    p_cin: Probability,
):
    cells = resolve_chain(cell, width)
    n = len(cells)
    pa = [float(p) for p in validate_probability_vector(p_a, n, "p_a")]
    pb = [float(p) for p in validate_probability_vector(p_b, n, "p_b")]
    pc = float(validate_probability(p_cin, "p_cin"))
    return cells, n, pa, pb, pc


def error_pmf(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    max_entries: int = 2_000_000,
    prune_below: float = 0.0,
) -> Dict[int, float]:
    """Exact PMF of ``D = approx - exact`` for the whole adder output.

    Parameters
    ----------
    max_entries:
        Abort (``AnalysisError``) if the intermediate support grows past
        this many ``(state, delta)`` pairs -- a guard against
        pathological very wide adders.
    prune_below:
        Optionally drop deltas whose accumulated mass is below this
        threshold (default 0: fully exact).  When pruning, the returned
        PMF may sum to slightly less than 1.

    Returns
    -------
    dict
        ``{delta: probability}`` with strictly positive probabilities.
    """
    cells, n, pa, pb, pc = _weights(cell, width, p_a, p_b, p_cin)

    # state -> {delta: prob}; both chains share the carry-in.
    dists: Dict[Tuple[int, int], Dict[int, float]] = {
        (0, 0): {0: 1.0 - pc} if pc < 1.0 else {},
        (1, 1): {0: pc} if pc > 0.0 else {},
    }

    for i, table in enumerate(cells):
        weight_bit = 1 << i
        nxt: Dict[Tuple[int, int], Dict[int, float]] = {}
        for (ca, ce), dist in dists.items():
            if not dist:
                continue
            for a in (0, 1):
                wa = pa[i] if a else 1.0 - pa[i]
                if wa == 0.0:
                    continue
                for b in (0, 1):
                    wb = pb[i] if b else 1.0 - pb[i]
                    w = wa * wb
                    if w == 0.0:
                        continue
                    sa, ca_next = table.evaluate(a, b, ca)
                    se, ce_next = ACCURATE.evaluate(a, b, ce)
                    delta_inc = (sa - se) * weight_bit
                    bucket = nxt.setdefault((ca_next, ce_next), {})
                    for delta, prob in dist.items():
                        key = delta + delta_inc
                        bucket[key] = bucket.get(key, 0.0) + prob * w
        if prune_below > 0.0:
            for bucket in nxt.values():
                stale = [d for d, p in bucket.items() if p < prune_below]
                for d in stale:
                    del bucket[d]
        size = sum(len(bucket) for bucket in nxt.values())
        if size > max_entries:
            raise SupportLimitError(
                f"error_pmf support for the width-{n} chain exceeded "
                f"max_entries={max_entries} at stage {i} ({size} "
                f"(state, delta) pairs); raise the limit, set "
                "prune_below, or use error_moments() for wide adders",
                width=n, entries=size, limit=max_entries, stage=i,
            )
        dists = nxt

    weight_carry = 1 << n
    pmf: Dict[int, float] = {}
    for (ca, ce), dist in dists.items():
        delta_inc = (ca - ce) * weight_carry
        for delta, prob in dist.items():
            key = delta + delta_inc
            pmf[key] = pmf.get(key, 0.0) + prob
    return {d: p for d, p in pmf.items() if p > 0.0}


@dataclass(frozen=True)
class ErrorMoments:
    """Exact first/second moments of the arithmetic error ``D``."""

    mean: float
    second_moment: float
    width: int

    @property
    def variance(self) -> float:
        """``Var[D] = E[D^2] - E[D]^2`` (clamped at 0 for rounding)."""
        return max(self.second_moment - self.mean * self.mean, 0.0)

    @property
    def rms(self) -> float:
        """Root-mean-square error ``sqrt(E[D^2])``."""
        return self.second_moment ** 0.5

    @property
    def normalized_rms(self) -> float:
        """RMS divided by the maximum exact output ``2^(N+1) - 1``."""
        return self.rms / float((1 << (self.width + 1)) - 1)


def error_moments(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> ErrorMoments:
    """Exact ``E[D]`` and ``E[D^2]`` in O(width) time and O(1) memory.

    Per carry-pair state ``s`` we propagate ``(p_s, m1_s, m2_s)`` where
    ``m1_s = E[D * 1_s]`` and ``m2_s = E[D^2 * 1_s]``; an increment
    ``delta`` on a transition of weight ``w`` updates them linearly:

    ``p' += w p``, ``m1' += w (m1 + delta p)``,
    ``m2' += w (m2 + 2 delta m1 + delta^2 p)``.
    """
    cells, n, pa, pb, pc = _weights(cell, width, p_a, p_b, p_cin)

    stats: Dict[Tuple[int, int], Tuple[float, float, float]] = {
        (0, 0): (1.0 - pc, 0.0, 0.0),
        (0, 1): (0.0, 0.0, 0.0),
        (1, 0): (0.0, 0.0, 0.0),
        (1, 1): (pc, 0.0, 0.0),
    }

    for i, table in enumerate(cells):
        weight_bit = float(1 << i)
        nxt = {state: [0.0, 0.0, 0.0] for state in _STATES}
        for (ca, ce), (p, m1, m2) in stats.items():
            if p == 0.0 and m1 == 0.0 and m2 == 0.0:
                continue
            for a in (0, 1):
                wa = pa[i] if a else 1.0 - pa[i]
                if wa == 0.0:
                    continue
                for b in (0, 1):
                    wb = pb[i] if b else 1.0 - pb[i]
                    w = wa * wb
                    if w == 0.0:
                        continue
                    sa, ca_next = table.evaluate(a, b, ca)
                    se, ce_next = ACCURATE.evaluate(a, b, ce)
                    delta = (sa - se) * weight_bit
                    acc = nxt[(ca_next, ce_next)]
                    acc[0] += w * p
                    acc[1] += w * (m1 + delta * p)
                    acc[2] += w * (m2 + 2.0 * delta * m1 + delta * delta * p)
        stats = {state: tuple(vals) for state, vals in nxt.items()}  # type: ignore[misc]

    weight_carry = float(1 << n)
    mean = 0.0
    second = 0.0
    for (ca, ce), (p, m1, m2) in stats.items():
        delta = (ca - ce) * weight_carry
        mean += m1 + delta * p
        second += m2 + 2.0 * delta * m1 + delta * delta * p
    return ErrorMoments(mean=mean, second_moment=second, width=n)


@dataclass(frozen=True)
class WorstCaseError:
    """Exact extremes of the arithmetic error ``D`` (all exact integers)."""

    min_delta: int
    max_delta: int
    width: int

    @property
    def wce(self) -> int:
        """Worst-case error ``max |D|`` over the reachable support."""
        return max(abs(self.min_delta), abs(self.max_delta))

    @property
    def normalized_wce(self) -> float:
        """WCE divided by the maximum exact output ``2^(N+1) - 1``."""
        return self.wce / float((1 << (self.width + 1)) - 1)


def worst_case_error(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
) -> WorstCaseError:
    """Exact ``max |D|`` (WCE) in O(width) time and O(1) memory.

    The full delta *distribution* does not compose linearly, but its
    reachable ``[min, max]`` interval does: per carry-pair state we
    track the extreme deltas attainable with positive probability, and
    each stage shifts them by the extreme ``(s_approx - s_exact) * 2^i``
    increments of its reachable transitions.  Zero-probability operand
    values (``p == 0`` or ``p == 1`` bits) are excluded, so the answer
    is the exact worst case *under the given input distribution*, in
    exact integer arithmetic at any width.
    """
    cells, n, pa, pb, pc = _weights(cell, width, p_a, p_b, p_cin)

    # state -> (min reachable delta, max reachable delta); states with
    # zero probability mass are simply absent.
    spans: Dict[Tuple[int, int], Tuple[int, int]] = {}
    if pc < 1.0:
        spans[(0, 0)] = (0, 0)
    if pc > 0.0:
        spans[(1, 1)] = (0, 0)

    for i, table in enumerate(cells):
        weight_bit = 1 << i
        nxt: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for (ca, ce), (lo, hi) in spans.items():
            for a in (0, 1):
                if (pa[i] if a else 1.0 - pa[i]) == 0.0:
                    continue
                for b in (0, 1):
                    if (pb[i] if b else 1.0 - pb[i]) == 0.0:
                        continue
                    sa, ca_next = table.evaluate(a, b, ca)
                    se, ce_next = ACCURATE.evaluate(a, b, ce)
                    inc = (sa - se) * weight_bit
                    key = (ca_next, ce_next)
                    cur = nxt.get(key)
                    if cur is None:
                        nxt[key] = (lo + inc, hi + inc)
                    else:
                        nxt[key] = (min(cur[0], lo + inc),
                                    max(cur[1], hi + inc))
        spans = nxt

    weight_carry = 1 << n
    lo_all: Optional[int] = None
    hi_all: Optional[int] = None
    for (ca, ce), (lo, hi) in spans.items():
        inc = (ca - ce) * weight_carry
        lo_all = lo + inc if lo_all is None else min(lo_all, lo + inc)
        hi_all = hi + inc if hi_all is None else max(hi_all, hi + inc)
    return WorstCaseError(min_delta=int(lo_all or 0),
                          max_delta=int(hi_all or 0), width=n)


def joint_error_pmf(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: Union[Probability, Sequence[Probability]] = 0.5,
    p_b: Union[Probability, Sequence[Probability]] = 0.5,
    p_cin: Probability = 0.5,
    max_entries: int = 2_000_000,
    prune_below: float = 0.0,
) -> Dict[Tuple[int, int], float]:
    """Exact joint PMF of ``(D, exact sum)``.

    Extends the :func:`error_pmf` DP with the exact adder's partial
    value, so relative-error metrics (MRED: ``E[|D| / max(exact, 1)]``)
    come out exactly instead of sample-only.  Support is bounded by the
    ``2^(N+1)`` exact values times the per-value delta support, so the
    practical width limit is lower than :func:`error_pmf`'s (~12 bits at
    the default guard); past it a :class:`SupportLimitError` is raised.

    Returns ``{(delta, exact_sum): probability}``.
    """
    cells, n, pa, pb, pc = _weights(cell, width, p_a, p_b, p_cin)

    # state -> {(delta, exact partial value): prob}
    dists: Dict[Tuple[int, int], Dict[Tuple[int, int], float]] = {
        (0, 0): {(0, 0): 1.0 - pc} if pc < 1.0 else {},
        (1, 1): {(0, 0): pc} if pc > 0.0 else {},
    }

    for i, table in enumerate(cells):
        weight_bit = 1 << i
        nxt: Dict[Tuple[int, int], Dict[Tuple[int, int], float]] = {}
        for (ca, ce), dist in dists.items():
            if not dist:
                continue
            for a in (0, 1):
                wa = pa[i] if a else 1.0 - pa[i]
                if wa == 0.0:
                    continue
                for b in (0, 1):
                    wb = pb[i] if b else 1.0 - pb[i]
                    w = wa * wb
                    if w == 0.0:
                        continue
                    sa, ca_next = table.evaluate(a, b, ca)
                    se, ce_next = ACCURATE.evaluate(a, b, ce)
                    delta_inc = (sa - se) * weight_bit
                    value_inc = se * weight_bit
                    bucket = nxt.setdefault((ca_next, ce_next), {})
                    for (delta, value), prob in dist.items():
                        key = (delta + delta_inc, value + value_inc)
                        bucket[key] = bucket.get(key, 0.0) + prob * w
        if prune_below > 0.0:
            for bucket in nxt.values():
                stale = [k for k, p in bucket.items() if p < prune_below]
                for k in stale:
                    del bucket[k]
        size = sum(len(bucket) for bucket in nxt.values())
        if size > max_entries:
            raise SupportLimitError(
                f"joint_error_pmf support for the width-{n} chain "
                f"exceeded max_entries={max_entries} at stage {i} "
                f"({size} (state, delta, value) entries); raise the "
                "limit, set prune_below, or estimate MRED by sampling",
                width=n, entries=size, limit=max_entries, stage=i,
            )
        dists = nxt

    weight_carry = 1 << n
    joint: Dict[Tuple[int, int], float] = {}
    for (ca, ce), dist in dists.items():
        delta_inc = (ca - ce) * weight_carry
        value_inc = ce * weight_carry
        for (delta, value), prob in dist.items():
            key = (delta + delta_inc, value + value_inc)
            joint[key] = joint.get(key, 0.0) + prob
    return {k: p for k, p in joint.items() if p > 0.0}


def relative_error_from_joint(
    joint: Dict[Tuple[int, int], float]
) -> float:
    """MRED ``E[|D| / max(exact, 1)]`` from a :func:`joint_error_pmf`."""
    return float(sum(
        abs(delta) / float(max(value, 1)) * prob
        for (delta, value), prob in joint.items()
    ))
