"""NumPy-vectorised batch version of the recursive engine.

The scalar engine in :mod:`repro.core.recursive` analyses one
probability point at a time.  Design-space sweeps (paper Fig. 5, the
exploration tools, Monte-Carlo cross-validation) want thousands of
points, so this module evaluates the same recursion over a whole batch
simultaneously:

* :func:`analyze_batch` -- arbitrary ``(batch, width)`` probability
  grids, returns ``P(Succ)`` per batch element;
* :func:`success_by_width` -- one recursion pass that reports
  ``P(Succ)`` for *every* prefix width ``1..N`` (exactly what Fig. 5's
  x-axis needs), optionally over a batch of probability points at once.

Both are validated against the scalar engine to ~1e-12 in the tests.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .._compat import warn_deprecated
from ..obs import metrics as _metrics
from ..obs.tracing import trace_span
from .exceptions import ProbabilityError
from .matrices import derive_matrices
from .probability import probability_grid, probability_row
from .recursive import CellSpec, resolve_chain

#: Per-stage ``(m, k, l)`` mask arrays, as produced by
#: ``AnalysisMatrices.as_arrays()``.  ``analyze_batch`` accepts a
#: precomputed sequence of these (one per stage) so callers with a
#: matrix cache -- the :mod:`repro.engine` executor -- skip the
#: per-stage mask derivation entirely.
MaskArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _ipm_batch(
    pa: np.ndarray, pb: np.ndarray, c1: np.ndarray, c0: np.ndarray
) -> np.ndarray:
    """Vectorised Eq. 10: build a ``(batch, 8)`` IPM block.

    Row order is the canonical ``(A,B,Cin) = 000..111``.
    """
    qa = 1.0 - pa
    qb = 1.0 - pb
    return np.stack(
        [
            qa * qb * c0,
            qa * qb * c1,
            qa * pb * c0,
            qa * pb * c1,
            pa * qb * c0,
            pa * qb * c1,
            pa * pb * c0,
            pa * pb * c1,
        ],
        axis=1,
    )


def _masked_sum(ipm: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``ipm @ mask`` with a fixed left-to-right reduction order.

    ``numpy``'s matmul hands the contraction to BLAS kernels whose
    summation order varies with the batch shape, so the same
    probability row can land on a different last ulp depending on which
    rows happen to share its batch.  The parallel executor
    (:mod:`repro.engine.parallel`) shards batches across worker
    processes and promises results bit-identical to the serial path, so
    the 8-term reduction is accumulated explicitly in canonical row
    order instead: elementwise multiplies and adds are exactly rounded,
    which makes every row's value independent of its batch mates.
    """
    out = ipm[:, 0] * mask[0]
    for j in range(1, ipm.shape[1]):
        out += ipm[:, j] * mask[j]
    return out


def analyze_batch(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: object = 0.5,
    batch: Optional[int] = None,
    matrices: Optional[Sequence[MaskArrays]] = None,
) -> np.ndarray:
    """Run the recursion over a batch of probability points.

    Parameters
    ----------
    cell, width:
        As in :func:`repro.core.recursive.analyze_chain` (hybrid chains
        supported).
    p_a, p_b:
        Scalar, ``(width,)``, ``(batch,)`` or ``(batch, width)`` arrays
        of per-bit one-probabilities.
    p_cin:
        Scalar or ``(batch,)`` array.
    batch:
        Batch size; inferred from array arguments when omitted.
    matrices:
        Optional per-stage ``(m, k, l)`` mask arrays (cache-supplied);
        derived from the truth tables when omitted.

    Returns
    -------
    numpy.ndarray
        ``(batch,)`` array of ``P(Succ)``.
    """
    cells = resolve_chain(cell, width)
    n = len(cells)
    if matrices is not None and len(matrices) != n:
        raise ProbabilityError(
            f"matrices: need one (m, k, l) triple per stage, got "
            f"{len(matrices)} for {n} stages"
        )

    if batch is None:
        batch = 1
        for p in (p_a, p_b, p_cin):
            arr = np.asarray(p)
            if arr.ndim >= 1:
                candidate = arr.shape[0]
                if arr.ndim == 1 and candidate == n and n != 1:
                    continue  # 1-D of length width: per-bit, not a batch
                batch = max(batch, candidate)

    pa = probability_grid(p_a, batch, n, "p_a")
    pb = probability_grid(p_b, batch, n, "p_b")
    pc = probability_row(p_cin, batch, "p_cin")

    with _metrics.timed("core.vectorized.analyze_batch"), \
            trace_span("core.vectorized.analyze_batch", width=n, batch=batch):
        c1 = pc.copy()
        c0 = 1.0 - pc
        p_success = np.zeros(batch)
        for i, table in enumerate(cells):
            if matrices is not None:
                m, k, l = matrices[i]
            else:
                m, k, l = derive_matrices(table).as_arrays()
            ipm = _ipm_batch(pa[:, i], pb[:, i], c1, c0)
            if i == n - 1:
                p_success = _masked_sum(ipm, l)
            else:
                c1 = _masked_sum(ipm, m)
                c0 = _masked_sum(ipm, k)
    if _metrics.is_enabled():
        _metrics.get_registry().counter("core.vectorized.points").add(batch)
    return p_success


def error_batch(
    cell: Union[CellSpec, Sequence[CellSpec]],
    width: Optional[int] = None,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: object = 0.5,
    batch: Optional[int] = None,
) -> np.ndarray:
    """``1 - analyze_batch(...)``: batched error probabilities.

    .. deprecated::
        Use ``repro.engine.run_batch`` (one request per probability
        point) instead; it reuses cached stage matrices across requests.
    """
    warn_deprecated("core.vectorized.error_batch", "repro.engine.run_batch")
    return 1.0 - analyze_batch(cell, width, p_a, p_b, p_cin, batch)


def success_by_width(
    cell: CellSpec,
    max_width: int,
    p: object = 0.5,
    p_cin: object = 0.5,
) -> np.ndarray:
    """``P(Succ)`` of a uniform chain for every width ``1..max_width``.

    A single recursion pass suffices: the success probability of the
    width-``n`` adder is ``IPM_n . L`` evaluated with the carry state
    after ``n - 1`` stages, so each stage contributes one output.

    Parameters
    ----------
    cell:
        The (single) cell used at every stage.
    max_width:
        Largest adder width to report.
    p:
        Operand one-probability, scalar or a ``(batch,)`` grid --
        applied to every ``A_i`` and ``B_i`` (the Fig. 5 setting).
    p_cin:
        Carry-in one-probability, scalar or ``(batch,)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(max_width,)`` for scalar *p*, else
        ``(batch, max_width)``; entry ``[..., n-1]`` is ``P(Succ)`` of
        the ``n``-bit adder.
    """
    if max_width < 1:
        raise ProbabilityError(f"max_width must be >= 1, got {max_width}")
    p_arr = np.atleast_1d(np.asarray(p, dtype=np.float64))
    scalar_input = np.asarray(p).ndim == 0
    if p_arr.ndim != 1:
        raise ProbabilityError(f"p must be scalar or 1-D, got shape {p_arr.shape}")
    if np.isnan(p_arr).any() or (p_arr < 0).any() or (p_arr > 1).any():
        raise ProbabilityError("p: all entries must lie in [0, 1]")
    batch = p_arr.shape[0]
    pc = probability_row(p_cin, batch, "p_cin")

    table = resolve_chain(cell, 1)[0]
    m, k, l = derive_matrices(table).as_arrays()

    with _metrics.timed("core.vectorized.success_by_width"), \
            trace_span("core.vectorized.success_by_width",
                       max_width=max_width, batch=batch):
        c1 = pc.copy()
        c0 = 1.0 - pc
        out = np.zeros((batch, max_width))
        for i in range(max_width):
            ipm = _ipm_batch(p_arr, p_arr, c1, c0)
            out[:, i] = _masked_sum(ipm, l)
            c1, c0 = _masked_sum(ipm, m), _masked_sum(ipm, k)
    if _metrics.is_enabled():
        _metrics.get_registry().counter("core.vectorized.points").add(
            batch * max_width
        )
    return out[0] if scalar_input else out


def error_by_width(
    cell: CellSpec,
    max_width: int,
    p: object = 0.5,
    p_cin: object = 0.5,
) -> np.ndarray:
    """``1 - success_by_width(...)``: Fig. 5's error curves.

    .. deprecated::
        Use ``repro.engine.error_curves`` instead; same values, shared
        stage-matrix cache, obs counters under ``engine.*``.
    """
    warn_deprecated("core.vectorized.error_by_width",
                    "repro.engine.error_curves")
    return 1.0 - success_by_width(cell, max_width, p, p_cin)
