"""Serialisation: cell libraries and result exports.

JSON is the interchange format for user-defined cells (so custom adders
can be analysed from the CLI without writing Python) and for exporting
sweep/exploration results to downstream tooling.

Cell-library file format::

    {
      "format": "sealpaa-cells-v1",
      "cells": [
        {"name": "MyAdder", "rows": [[0,0], [1,0], ... 8 rows ...]},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union

from .core.adders import CellRegistry, registry
from .core.exceptions import TruthTableError
from .core.truth_table import FullAdderTruthTable
from .explore.design_space import DesignPoint
from .reporting import records_to_csv, records_to_json

CELL_FORMAT = "sealpaa-cells-v1"


def cells_to_json(cells: Iterable[FullAdderTruthTable]) -> str:
    """Serialise cells as a library document."""
    return json.dumps(
        {
            "format": CELL_FORMAT,
            "cells": [cell.as_dict() for cell in cells],
        },
        indent=2,
    )


def cells_from_json(text: str) -> List[FullAdderTruthTable]:
    """Parse a cell-library document."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TruthTableError(f"invalid JSON cell library: {exc}") from exc
    if not isinstance(data, Mapping) or data.get("format") != CELL_FORMAT:
        raise TruthTableError(
            f"expected a {CELL_FORMAT!r} document, got "
            f"{data.get('format') if isinstance(data, Mapping) else type(data).__name__!r}"
        )
    cells_field = data.get("cells")
    if not isinstance(cells_field, list) or not cells_field:
        raise TruthTableError("cell library contains no cells")
    return [FullAdderTruthTable.from_dict(entry) for entry in cells_field]


def save_cell_library(
    cells: Iterable[FullAdderTruthTable],
    path: Union[str, Path],
) -> None:
    """Write a cell library to *path*."""
    Path(path).write_text(cells_to_json(cells))


def load_cell_library(
    path: Union[str, Path],
    target: CellRegistry = registry,
    register: bool = True,
) -> List[FullAdderTruthTable]:
    """Read a cell library; optionally register every cell for lookup."""
    cells = cells_from_json(Path(path).read_text())
    if register:
        for cell in cells:
            target.register(cell, overwrite=True)
    return cells


def export_design_points(
    points: Sequence[DesignPoint],
    path: Union[str, Path],
    fmt: str = "csv",
) -> None:
    """Write design points as CSV or JSON (by *fmt* or file suffix)."""
    records = [point.as_dict() for point in points]
    fmt = (fmt or Path(path).suffix.lstrip(".")).lower()
    if fmt == "csv":
        Path(path).write_text(records_to_csv(records))
    elif fmt == "json":
        Path(path).write_text(records_to_json(records))
    else:
        raise ValueError(f"unknown export format {fmt!r} (csv or json)")
