"""Serialisation: cell libraries, result documents and exports.

JSON is the interchange format for user-defined cells (so custom adders
can be analysed from the CLI without writing Python) and for exporting
sweep/exploration results to downstream tooling.

Cell-library file format::

    {
      "format": "sealpaa-cells-v1",
      "cells": [
        {"name": "MyAdder", "rows": [[0,0], [1,0], ... 8 rows ...]},
        ...
      ]
    }

Expensive results (Monte-Carlo estimates, exhaustive enumerations,
hybrid-search outcomes) round-trip through ``sealpaa-result-v1``
documents via :func:`save_result` / :func:`load_result`, carrying their
:class:`repro.obs.RunManifest` so a saved number stays traceable to the
seed, cell chain, package version and git commit that produced it.
Tabular exports get the same provenance as a ``<path>.manifest.json``
sidecar (the main CSV/JSON stays format-stable for downstream parsers).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence, Union

from .core.adders import CellRegistry, registry
from .core.exceptions import TruthTableError
from .core.truth_table import FullAdderTruthTable
from .explore.design_space import DesignPoint
from .obs.provenance import RunManifest
from .reporting import records_to_csv, records_to_json

CELL_FORMAT = "sealpaa-cells-v1"
RESULT_FORMAT = "sealpaa-result-v1"

#: Bounded retry policy for :func:`atomic_write_text` (transient
#: ``OSError`` -- NFS hiccups, AV scanners holding the file, chaos shim).
ATOMIC_WRITE_RETRIES = 3
ATOMIC_WRITE_RETRY_WAIT_S = 0.05


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    retries: int = ATOMIC_WRITE_RETRIES,
    retry_wait_s: float = ATOMIC_WRITE_RETRY_WAIT_S,
) -> Path:
    """Crash-safe text write: temp file in the target directory + rename.

    The destination either keeps its previous content or holds the
    complete new content -- a crash (or an injected fault) mid-write can
    never leave a truncated result/checkpoint on disk, because the data
    is first written and flushed to a temporary file in the *same*
    directory and then committed with the atomic ``os.replace``.

    Transient ``OSError`` during write or commit is retried up to
    *retries* extra times with a short pause; the temp file is always
    cleaned up on failure.  Returns the destination path.
    """
    path = Path(path)
    last_error: Optional[OSError] = None
    for attempt in range(retries + 1):
        tmp_name = None
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent) or ".",
                prefix=f".{path.name}.",
                suffix=".tmp",
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            # Chaos hook: lets the fault-injection suite fail the commit
            # without monkey-patching os internals (lazy import -- the
            # runtime package depends on this module, not vice versa).
            from .runtime.chaos import io_fault_check

            io_fault_check(str(path))
            os.replace(tmp_name, path)
            return path
        except OSError as exc:
            last_error = exc
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if attempt < retries:
                time.sleep(retry_wait_s)
    raise OSError(
        f"could not write {path} after {retries + 1} attempts: {last_error}"
    ) from last_error


def cells_to_json(cells: Iterable[FullAdderTruthTable]) -> str:
    """Serialise cells as a library document."""
    return json.dumps(
        {
            "format": CELL_FORMAT,
            "cells": [cell.as_dict() for cell in cells],
        },
        indent=2,
    )


def cells_from_json(text: str) -> List[FullAdderTruthTable]:
    """Parse a cell-library document."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TruthTableError(f"invalid JSON cell library: {exc}") from exc
    if not isinstance(data, Mapping) or data.get("format") != CELL_FORMAT:
        raise TruthTableError(
            f"expected a {CELL_FORMAT!r} document, got "
            f"{data.get('format') if isinstance(data, Mapping) else type(data).__name__!r}"
        )
    cells_field = data.get("cells")
    if not isinstance(cells_field, list) or not cells_field:
        raise TruthTableError("cell library contains no cells")
    return [FullAdderTruthTable.from_dict(entry) for entry in cells_field]


def save_cell_library(
    cells: Iterable[FullAdderTruthTable],
    path: Union[str, Path],
) -> None:
    """Write a cell library to *path* (atomically)."""
    atomic_write_text(path, cells_to_json(cells))


def load_cell_library(
    path: Union[str, Path],
    target: CellRegistry = registry,
    register: bool = True,
) -> List[FullAdderTruthTable]:
    """Read a cell library; optionally register every cell for lookup."""
    cells = cells_from_json(Path(path).read_text())
    if register:
        for cell in cells:
            target.register(cell, overwrite=True)
    return cells


def export_design_points(
    points: Sequence[DesignPoint],
    path: Union[str, Path],
    fmt: str = "csv",
    manifest: Optional[RunManifest] = None,
) -> None:
    """Write design points as CSV or JSON (by *fmt* or file suffix).

    With a *manifest*, provenance lands in a ``<path>.manifest.json``
    sidecar; the main file keeps its flat, parser-friendly shape.
    """
    records = [point.as_dict() for point in points]
    fmt = (fmt or Path(path).suffix.lstrip(".")).lower()
    if fmt == "csv":
        atomic_write_text(path, records_to_csv(records))
    elif fmt == "json":
        atomic_write_text(path, records_to_json(records))
    else:
        raise ValueError(f"unknown export format {fmt!r} (csv or json)")
    if manifest is not None:
        write_manifest_sidecar(path, manifest)


def manifest_sidecar_path(path: Union[str, Path]) -> Path:
    """``<path>.manifest.json`` companion of an exported artifact."""
    path = Path(path)
    return path.with_name(path.name + ".manifest.json")


def write_manifest_sidecar(
    path: Union[str, Path], manifest: RunManifest
) -> Path:
    """Write the provenance sidecar for the artifact at *path*."""
    sidecar = manifest_sidecar_path(path)
    atomic_write_text(sidecar, json.dumps(manifest.as_dict(), indent=2) + "\n")
    return sidecar


def load_manifest_sidecar(path: Union[str, Path]) -> RunManifest:
    """Read the provenance sidecar of the artifact at *path*."""
    return RunManifest.from_dict(
        json.loads(manifest_sidecar_path(path).read_text())
    )


# -- result documents ----------------------------------------------------------

def result_to_dict(result: object) -> Mapping[str, object]:
    """Serialise a Monte-Carlo / exhaustive / hybrid-search result.

    The ``type`` tag drives :func:`result_from_dict` dispatch; the
    attached manifest (if any) is embedded under ``manifest``.
    """
    from .explore.hybrid_search import HybridSearchResult
    from .simulation.exhaustive import ExhaustiveResult
    from .simulation.montecarlo import MonteCarloResult

    manifest = getattr(result, "manifest", None)
    doc: dict = {"format": RESULT_FORMAT}
    if isinstance(result, MonteCarloResult):
        doc.update(
            type="montecarlo",
            p_error=result.p_error,
            samples=result.samples,
            errors=result.errors,
            seed=result.seed,
        )
        if result.truncated:
            doc.update(
                truncated=True,
                stop_reason=result.stop_reason,
                requested_samples=result.requested_samples,
            )
    elif isinstance(result, ExhaustiveResult):
        doc.update(
            type="exhaustive",
            p_error=result.p_error,
            width=result.width,
            cases=result.cases,
        )
        if result.truncated:
            doc.update(
                truncated=True,
                stop_reason=result.stop_reason,
                total_cases=result.total_cases,
            )
    elif isinstance(result, HybridSearchResult):
        doc.update(
            type="hybrid-search",
            chain_spec=result.chain.spec(),
            p_error=result.p_error,
            objective=result.objective,
            exact=result.exact,
            power_nw=result.power_nw,
        )
        if result.truncated:
            doc.update(truncated=True, stop_reason=result.stop_reason)
    else:
        raise TypeError(
            f"cannot serialise result of type {type(result).__name__}"
        )
    if manifest is not None:
        doc["manifest"] = manifest.as_dict()
    return doc


def result_from_dict(data: Mapping[str, object]) -> object:
    """Rebuild a result dataclass from :func:`result_to_dict` output.

    Hybrid-search chains are resolved by cell *name* through the active
    registry, so custom cells must be loaded (see
    :func:`load_cell_library`) before their results.
    """
    from .core.hybrid import HybridChain
    from .explore.hybrid_search import HybridSearchResult
    from .simulation.exhaustive import ExhaustiveResult
    from .simulation.montecarlo import MonteCarloResult

    if data.get("format") != RESULT_FORMAT:
        raise ValueError(
            f"expected a {RESULT_FORMAT!r} document, got "
            f"{data.get('format')!r}"
        )
    manifest_doc = data.get("manifest")
    manifest = (
        RunManifest.from_dict(manifest_doc)  # type: ignore[arg-type]
        if manifest_doc is not None
        else None
    )
    kind = data.get("type")
    truncated = bool(data.get("truncated", False))
    stop_reason = data.get("stop_reason")
    if kind == "montecarlo":
        requested = data.get("requested_samples")
        return MonteCarloResult(
            p_error=float(data["p_error"]),  # type: ignore[arg-type]
            samples=int(data["samples"]),  # type: ignore[arg-type]
            errors=int(data["errors"]),  # type: ignore[arg-type]
            seed=data.get("seed"),  # type: ignore[arg-type]
            manifest=manifest,
            truncated=truncated,
            stop_reason=stop_reason,  # type: ignore[arg-type]
            requested_samples=(
                int(requested) if requested is not None else None  # type: ignore[arg-type]
            ),
        )
    if kind == "exhaustive":
        total = data.get("total_cases")
        return ExhaustiveResult(
            p_error=float(data["p_error"]),  # type: ignore[arg-type]
            width=int(data["width"]),  # type: ignore[arg-type]
            cases=int(data["cases"]),  # type: ignore[arg-type]
            manifest=manifest,
            truncated=truncated,
            stop_reason=stop_reason,  # type: ignore[arg-type]
            total_cases=int(total) if total is not None else None,  # type: ignore[arg-type]
        )
    if kind == "hybrid-search":
        power = data.get("power_nw")
        return HybridSearchResult(
            chain=HybridChain.from_spec(str(data["chain_spec"])),
            p_error=float(data["p_error"]),  # type: ignore[arg-type]
            objective=float(data["objective"]),  # type: ignore[arg-type]
            exact=bool(data["exact"]),
            power_nw=float(power) if power is not None else None,
            manifest=manifest,
            truncated=truncated,
            stop_reason=stop_reason,  # type: ignore[arg-type]
        )
    raise ValueError(f"unknown result type {kind!r}")


def save_result(result: object, path: Union[str, Path]) -> None:
    """Write a result (with its manifest) as a JSON document (atomically)."""
    atomic_write_text(
        path, json.dumps(result_to_dict(result), indent=2) + "\n"
    )


def load_result(path: Union[str, Path]) -> object:
    """Read a result document written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))
