"""Report rendering: paper-style ASCII tables and CSV/JSON export.

All benchmark scripts print through these helpers so their output lines
up with the paper's tables visually and is machine-readable on request.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_value(value: Cell, digits: int = 5) -> str:
    """Paper-style cell formatting: fixed decimals for probabilities,
    plain text otherwise, em-dash for missing values."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1e7:
            return f"{value:.3g}"
        return f"{value:.{digits}f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    digits: int = 5,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table with a rule under the header."""
    text_rows = [
        [format_value(cell, digits) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in text_rows))
        if text_rows
        else len(str(headers[c]))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(w) for h, w in zip(headers, widths)
    ).rstrip()
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def records_to_csv(
    records: Sequence[Mapping[str, Cell]],
    header_comment: Optional[str] = None,
) -> str:
    """Serialise homogeneous record dicts as CSV text.

    *header_comment* (e.g. a provenance line) is prepended as a ``#``
    comment; omit it for strict-CSV consumers.
    """
    if not records:
        return ""
    fieldnames = list(records[0].keys())
    buffer = io.StringIO()
    if header_comment:
        for line in header_comment.splitlines():
            buffer.write(f"# {line}\n")
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for record in records:
        writer.writerow({k: record.get(k) for k in fieldnames})
    return buffer.getvalue()


def records_to_json(
    records: Sequence[Mapping[str, Cell]],
    indent: int = 2,
    manifest: Optional[Mapping[str, object]] = None,
) -> str:
    """Serialise record dicts as pretty JSON.

    With a *manifest* dict the document becomes
    ``{"manifest": ..., "records": [...]}``; otherwise it stays a plain
    list for backwards compatibility.
    """
    if manifest is not None:
        return json.dumps(
            {"manifest": dict(manifest), "records": list(records)},
            indent=indent, sort_keys=False,
        )
    return json.dumps(list(records), indent=indent, sort_keys=False)


def write_text(path: str, content: str) -> None:
    """Write *content* to *path* (tiny wrapper kept for symmetry)."""
    with open(path, "w") as handle:
        handle.write(content)


def comparison_table(
    labels: Sequence[str],
    analytical: Sequence[float],
    simulated: Sequence[float],
    digits: int = 5,
    label_header: str = "Case",
) -> str:
    """Two-column "Analyt. vs Sim." table in the paper's Table 7 style."""
    if not (len(labels) == len(analytical) == len(simulated)):
        raise ValueError("labels/analytical/simulated lengths differ")
    rows: List[List[Cell]] = [
        [label, a, s, abs(a - s)]
        for label, a, s in zip(labels, analytical, simulated)
    ]
    return ascii_table(
        [label_header, "Analyt.", "Sim.", "|diff|"], rows, digits=digits
    )
