"""Pareto exploration over the adder-family zoo.

The classic LPAA sweep (:mod:`repro.explore.design_space`) varies the
*cell*; this module varies the *architecture*: every named zoo config
(:func:`repro.core.adder_zoo.named_zoo` -- LOA, ACA-1/ACA-2, ETA, GDA,
GeAr, truncated prefix trees) at one width, each measured on error rate,
MED, WCE and MRED through the engine's batch executor, plus the
abstract unit-gate delay/area of :func:`repro.core.adder_zoo.zoo_cost`.

:func:`sweep_zoo_space` builds all (adder, kind) requests into one
:func:`repro.engine.run_batch` call -- so result caches, budgets and
the parallel executor apply exactly as in any other sweep -- and
:func:`zoo_pareto_front` extracts the non-dominated subset under any
selection of minimised objectives (quality vs delay vs area).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.adder_zoo import ZooAdder, named_zoo, parse_adder, zoo_cost
from ..core.exceptions import ExplorationError
from ..engine import AnalysisRequest, run_batch
from ..runtime.budget import RunBudget
from .pareto import dominates

#: The kinds every zoo point is measured on, in request order.
_SWEEP_KINDS = ("chain", "med", "wce", "mred")


@dataclass(frozen=True)
class ZooDesignPoint:
    """One zoo adder's measured quality and abstract cost at a width."""

    adder: str                 # canonical config string
    width: int
    representation: str        # "chain" | "windowed"
    p_error: float
    med: Optional[float]
    wce: Optional[float]
    mred: Optional[float]
    delay_units: float
    area_units: float
    engine: str                # engine that answered the ER question

    @property
    def is_exact_adder(self) -> bool:
        return self.p_error == 0.0


#: Named objectives -> extractor over :class:`ZooDesignPoint`.
#: All minimised.
_ZOO_OBJECTIVES = {
    "error": lambda p: p.p_error,
    "med": lambda p: p.med,
    "wce": lambda p: p.wce,
    "mred": lambda p: p.mred,
    "delay": lambda p: p.delay_units,
    "area": lambda p: p.area_units,
}


def sweep_zoo_space(
    width: int,
    adders: Optional[Sequence[Union[str, ZooAdder]]] = None,
    p: object = 0.5,
    budget: Optional[RunBudget] = None,
    parallelism: object = "off",
) -> List[ZooDesignPoint]:
    """Measure every zoo adder at *width* across ER/MED/WCE/MRED.

    *adders* defaults to the reference catalog
    (:func:`~repro.core.adder_zoo.named_zoo`); pass config strings or
    parsed :class:`~repro.core.adder_zoo.ZooAdder` instances to sweep a
    custom set.  All requests go through one :func:`repro.engine
    .run_batch` call, so the segment/result caches and the process pool
    (*parallelism*) serve the sweep exactly like any other batch.
    Requests a budget truncates leave their metric ``None``.
    """
    zoo = ([parse_adder(a) for a in adders] if adders is not None
           else named_zoo(width))
    for adder in zoo:
        if adder.n != width:
            raise ExplorationError(
                f"adder {adder.config_string!r} has width {adder.n}, "
                f"sweep is at width {width}"
            )
    requests = [
        AnalysisRequest.zoo(adder, p_a=p, p_b=p, kind=kind)
        for adder in zoo
        for kind in _SWEEP_KINDS
    ]
    results = run_batch(requests, budget=budget, parallelism=parallelism)
    points: List[ZooDesignPoint] = []
    for i, adder in enumerate(zoo):
        chain, med, wce, mred = results[4 * i:4 * i + 4]
        if chain is None:
            continue  # budget stopped before this adder's ER answer
        cost = zoo_cost(adder)
        points.append(ZooDesignPoint(
            adder=adder.config_string,
            width=width,
            representation=adder.representation,
            p_error=float(chain.p_error),
            med=None if med is None or med.med is None
                else float(med.med),
            wce=None if wce is None or wce.wce is None
                else float(wce.wce),
            mred=None if mred is None or mred.mred is None
                else float(mred.mred),
            delay_units=cost.delay_units,
            area_units=cost.area_units,
            engine=chain.engine,
        ))
    return points


def zoo_objective_vector(
    point: ZooDesignPoint, objectives: Sequence[str]
) -> Tuple[float, ...]:
    """The point's objective values, raising on missing data."""
    values = []
    for name in objectives:
        try:
            extractor = _ZOO_OBJECTIVES[name]
        except KeyError:
            raise ExplorationError(
                f"unknown zoo objective {name!r}; known: "
                f"{sorted(_ZOO_OBJECTIVES)}"
            ) from None
        value = extractor(point)
        if value is None:
            raise ExplorationError(
                f"point {point.adder} lacks {name!r} data "
                "(budget-truncated sweep?)"
            )
        values.append(float(value))
    return tuple(values)


def zoo_pareto_front(
    points: Sequence[ZooDesignPoint],
    objectives: Sequence[str] = ("error", "delay", "area"),
) -> List[ZooDesignPoint]:
    """Non-dominated subset of *points* under the given minimised
    objectives, in input order."""
    if not points:
        return []
    vectors = [zoo_objective_vector(p, objectives) for p in points]
    front = []
    for i, (point, vec) in enumerate(zip(points, vectors)):
        if not any(
            dominates(other, vec)
            for j, other in enumerate(vectors)
            if j != i
        ):
            front.append(point)
    return front
