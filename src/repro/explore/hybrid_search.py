"""Optimal hybrid-chain search (makes paper §5's hybrid proposal concrete).

The paper observes that cells specialise by input probability and
suggests "optimally designing a hybrid multistage adder using more than
one type of LPAA", evaluated with the same recursion.  This module
actually finds such designs.

The key structure: the recursion's per-stage update is *linear* in the
success-carry state ``v = (P(C̄∩Succ), P(C∩Succ))`` -- stage *i* with
cell *c* applies a non-negative 2x2 matrix ``T_{c,i}`` (built from the
cell's K/M masks and the stage's operand probabilities), and the final
success is a linear functional ``l_{c,N-1} . v``.  Choosing the best
cell sequence is therefore a deterministic controlled linear system, and
the classic value-vector backward induction applies:

* carry a set of affine value functions ``f(v) = w . v + k`` from the
  MSB backwards, expanding each by every cell choice and pruning
  dominated vectors (sound because ``v >= 0`` componentwise);
* at the front, pick the maximising vector for the initial state and
  replay its provenance to recover the cell per stage.

With pointwise domination pruning the exact frontier stays tiny for the
7-cell paper library (tests cross-check against brute force).  A
``power_weight`` folds a per-stage power penalty into the constant part,
giving error/power trade-off designs; greedy and brute-force searchers
are provided as ablation baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice, product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..circuits.power import PowerModel
from ..core.exceptions import ExplorationError
from ..core.hybrid import HybridChain
from ..core.probability import float_probability_vector
from ..core.recursive import CellSpec, resolve_cell
from ..core.truth_table import FullAdderTruthTable
from ..core.types import validate_probability
from ..engine.cache import stage_transition
from ..obs import metrics as _metrics
from ..obs.log import get_logger, log_event
from ..obs.provenance import RunManifest, StopWatch, build_manifest
from ..obs.tracing import trace_span
from ..runtime import chaos as _chaos
from ..runtime.budget import RunBudget, make_meter
from ..runtime.checkpoint import (
    Checkpoint,
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
)

_logger = get_logger("explore.hybrid_search")


def _stage_matrix(
    table: FullAdderTruthTable, p_a: float, p_b: float
) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """2x2 map ``v_next = T v`` of one stage (rows: next c0/c1 mass).

    ``T[out][in]``: contribution of incoming mass with carry *in* to the
    outgoing success mass with carry *out*.  Served from the
    process-wide stage-matrix cache -- the DP revisits the same
    ``(cell, p_a, p_b)`` combination once per frontier vector.
    """
    return stage_transition(table, p_a, p_b).matrix


def _final_vector(
    table: FullAdderTruthTable, p_a: float, p_b: float
) -> Tuple[float, float]:
    """Functional ``l`` with ``P(Succ) = l . v`` at the last stage."""
    return stage_transition(table, p_a, p_b).final


@dataclass(frozen=True)
class _ValueVector:
    """Affine value function ``f(v) = w0*v0 + w1*v1 + const`` with the
    cell choices (from this stage to the MSB) that realise it."""

    w0: float
    w1: float
    const: float
    choices: Tuple[int, ...]

    def dominated_by(self, other: "_ValueVector") -> bool:
        return (
            other.w0 >= self.w0
            and other.w1 >= self.w1
            and other.const >= self.const
            and (other.w0, other.w1, other.const)
            != (self.w0, self.w1, self.const)
        )


def _prune(
    vectors: List[_ValueVector], cap: int
) -> Tuple[List[_ValueVector], bool]:
    """Drop dominated/duplicate value vectors; cap the frontier size.

    Returns ``(kept, truncated)`` -- *truncated* means the cap forced a
    lossy cut and the overall search degrades to a wide beam.
    """
    kept: List[_ValueVector] = []
    for vec in vectors:
        if any(vec.dominated_by(other) for other in vectors):
            continue
        kept.append(vec)
    # Deduplicate identical functionals (keep first provenance).
    unique: Dict[Tuple[float, float, float], _ValueVector] = {}
    for vec in kept:
        unique.setdefault((vec.w0, vec.w1, vec.const), vec)
    result = list(unique.values())
    truncated = len(result) > cap
    if truncated:
        # Keep the strongest by a fixed probe state.
        result.sort(key=lambda v: v.w0 + v.w1 + 2 * v.const, reverse=True)
        result = result[:cap]
    return result, truncated


@dataclass(frozen=True)
class HybridSearchResult:
    """Outcome of a hybrid-chain optimisation.

    ``truncated=True`` marks a search stopped early by its
    :class:`~repro.runtime.RunBudget`: the chain is the best design
    found so far (always a valid, analysable chain), not a proven
    optimum -- ``exact`` is False in that case and ``stop_reason``
    records why the search stopped.
    """

    chain: HybridChain
    p_error: float
    objective: float
    exact: bool
    power_nw: Optional[float] = None
    manifest: Optional[RunManifest] = None
    truncated: bool = False
    stop_reason: Optional[str] = None


def optimal_hybrid(
    cells: Sequence[CellSpec],
    width: int,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: float = 0.5,
    power_weight: float = 0.0,
    power_model: Optional[PowerModel] = None,
    max_vectors: int = 4096,
    budget: Optional[RunBudget] = None,
) -> HybridSearchResult:
    """Exact optimal per-stage cell assignment by value-vector DP.

    Maximises ``P(Succ) - power_weight * total_power_nw`` (pure error
    minimisation at the default weight 0).  ``exact`` in the result is
    False only if the vector frontier had to be truncated
    (*max_vectors*), which does not occur for the paper's cell library
    at practical widths.

    With a *budget* whose deadline expires mid-induction, the search
    degrades gracefully: it falls back to :func:`greedy_hybrid` (always
    fast, always yields a valid chain) and returns that design flagged
    ``truncated=True`` with ``degraded_from="optimal"`` recorded in the
    manifest, instead of erroring with nothing to show.
    """
    if width < 1:
        raise ExplorationError(f"width must be >= 1, got {width}")
    tables = [resolve_cell(c) for c in cells]
    if not tables:
        raise ExplorationError("need at least one candidate cell")
    if power_weight < 0:
        raise ExplorationError("power_weight must be >= 0")
    if power_weight > 0 and power_model is None:
        power_model = PowerModel()
    pa = float_probability_vector(p_a, width, "p_a")
    pb = float_probability_vector(p_b, width, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))

    def stage_penalty(table: FullAdderTruthTable, i: int) -> float:
        if power_weight == 0.0:
            return 0.0
        return power_weight * power_model.power_nw(table, pa[i], pb[i], 0.5)

    watch = StopWatch()
    meter = make_meter(budget)
    degrade_reason: Optional[str] = None
    exact = True
    vectors_expanded = 0
    peak_frontier = 0
    with _metrics.timed("explore.hybrid.optimal"), \
            trace_span("explore.hybrid.optimal",
                       width=width, candidates=len(tables)):
        # Backward induction from the last stage.
        frontier: List[_ValueVector] = []
        for ci, table in enumerate(tables):
            l0, l1 = _final_vector(table, pa[width - 1], pb[width - 1])
            frontier.append(
                _ValueVector(
                    w0=l0, w1=l1,
                    const=-stage_penalty(table, width - 1),
                    choices=(ci,),
                )
            )
        vectors_expanded += len(frontier)
        frontier, truncated = _prune(frontier, max_vectors)
        exact = exact and not truncated
        peak_frontier = len(frontier)

        for i in range(width - 2, -1, -1):
            degrade_reason = meter.stop_reason()
            if degrade_reason is not None:
                break
            _chaos.tick("hybrid.optimal.stage")
            expanded: List[_ValueVector] = []
            for ci, table in enumerate(tables):
                t = _stage_matrix(table, pa[i], pb[i])
                penalty = stage_penalty(table, i)
                for vec in frontier:
                    # compose: f(T v) + const - penalty
                    w0 = vec.w0 * t[0][0] + vec.w1 * t[1][0]
                    w1 = vec.w0 * t[0][1] + vec.w1 * t[1][1]
                    expanded.append(
                        _ValueVector(
                            w0=w0,
                            w1=w1,
                            const=vec.const - penalty,
                            choices=(ci, *vec.choices),
                        )
                    )
            vectors_expanded += len(expanded)
            frontier, truncated = _prune(expanded, max_vectors)
            exact = exact and not truncated
            peak_frontier = max(peak_frontier, len(frontier))

    if _metrics.is_enabled():
        registry = _metrics.get_registry()
        registry.counter("explore.hybrid.vectors_expanded").add(
            vectors_expanded
        )
        registry.gauge("explore.hybrid.peak_frontier").set(peak_frontier)

    if degrade_reason is not None:
        # Budget expired mid-induction: a partial DP frontier cannot
        # name a full chain, so degrade to the greedy heuristic -- it
        # always returns a valid design in O(width * cells).
        greedy = greedy_hybrid(cells, width, pa, pb, pc)
        log_event(_logger, "hybrid.optimal.degraded", width=width,
                  reason=degrade_reason, p_error=greedy.p_error)
        if _metrics.is_enabled():
            _metrics.get_registry().counter(
                "explore.hybrid.degraded_runs"
            ).add(1)
        manifest = build_manifest(
            "hybrid-search",
            cells=[t.name for t in tables],
            wall_time_s=watch.elapsed(),
            budget=budget.as_dict() if budget is not None else None,
            truncated=True,
            stop_reason=degrade_reason,
            degraded_from="optimal",
            width=width, p_a=pa, p_b=pb, p_cin=pc,
            power_weight=power_weight, strategy="greedy",
        )
        return HybridSearchResult(
            chain=greedy.chain, p_error=greedy.p_error,
            objective=greedy.objective, exact=False,
            power_nw=(
                power_model.chain_power_nw(
                    list(greedy.chain.cells), None, pa, pb, pc)
                if power_model is not None else None
            ),
            manifest=manifest, truncated=True, stop_reason=degrade_reason,
        )

    v0, v1 = 1.0 - pc, pc
    best = max(frontier, key=lambda vec: vec.w0 * v0 + vec.w1 * v1 + vec.const)
    chain = HybridChain([tables[ci] for ci in best.choices])
    p_error = float(chain.error_probability(pa, pb, pc))
    power = (
        power_model.chain_power_nw(list(chain.cells), None, pa, pb, pc)
        if power_model is not None
        else None
    )
    objective = best.w0 * v0 + best.w1 * v1 + best.const
    manifest = build_manifest(
        "hybrid-search",
        cells=[t.name for t in tables],
        wall_time_s=watch.elapsed(),
        budget=budget.as_dict() if budget is not None else None,
        width=width, p_a=pa, p_b=pb, p_cin=pc,
        power_weight=power_weight, strategy="optimal",
    )
    log_event(_logger, "hybrid.optimal.done", width=width,
              vectors=vectors_expanded, frontier=peak_frontier,
              p_error=p_error, wall_s=manifest.wall_time_s)
    return HybridSearchResult(
        chain=chain, p_error=p_error, objective=objective,
        exact=exact, power_nw=power, manifest=manifest,
    )


def brute_force_hybrid(
    cells: Sequence[CellSpec],
    width: int,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: float = 0.5,
    max_combinations: int = 500_000,
    budget: Optional[RunBudget] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 1024,
    resume: bool = False,
) -> HybridSearchResult:
    """Enumerate every cell assignment (ablation oracle for small sizes).

    Assignments are visited in deterministic ``itertools.product``
    order, so the visited-config frontier (count enumerated + best so
    far) checkpoints and resumes exactly: a resumed sweep evaluates
    precisely the configurations an uninterrupted one would have.  A
    *budget* (deadline / ``max_configs``) stops the sweep cleanly after
    the current configuration and returns the best design found so far
    flagged ``truncated=True``.
    """
    tables = [resolve_cell(c) for c in cells]
    total = len(tables) ** width
    if total > max_combinations:
        raise ExplorationError(
            f"{len(tables)}^{width} = {total} assignments exceeds "
            f"max_combinations={max_combinations}"
        )
    if checkpoint_every < 1:
        raise ExplorationError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if resume and checkpoint_path is None:
        raise ExplorationError("resume=True requires checkpoint_path")
    pa = float_probability_vector(p_a, width, "p_a")
    pb = float_probability_vector(p_b, width, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))
    watch = StopWatch()
    fingerprint = config_fingerprint(
        kind="hybrid-brute", cells=[t.name for t in tables], width=width,
        p_a=pa, p_b=pb, p_cin=pc,
    )
    configs_done = 0
    best_assignment: Optional[Tuple[int, ...]] = None
    best_error = float("inf")
    sequence = 0
    if resume:
        saved = load_checkpoint(checkpoint_path, expect_kind="hybrid-brute",
                                expect_fingerprint=fingerprint)
        configs_done = int(saved.payload["configs_done"])  # type: ignore[arg-type]
        best_error = float(saved.payload["best_error"])  # type: ignore[arg-type]
        best = saved.payload.get("best_assignment")
        best_assignment = tuple(best) if best is not None else None  # type: ignore[arg-type]
        sequence = saved.sequence
        log_event(_logger, "hybrid.brute.resumed", configs_done=configs_done,
                  best_error=best_error, path=checkpoint_path)

    # The meter bounds *this* invocation's work; resumed progress was
    # paid for by the earlier session.
    meter = make_meter(budget)
    stop_reason: Optional[str] = None
    latest_payload: Optional[dict] = None
    since_save = 0

    def snapshot() -> dict:
        return {
            "configs_done": configs_done,
            "best_error": best_error,
            "best_assignment": (
                list(best_assignment) if best_assignment is not None else None
            ),
        }

    def flush(payload: dict) -> None:
        nonlocal sequence, since_save
        sequence += 1
        save_checkpoint(
            checkpoint_path,
            Checkpoint(kind="hybrid-brute", fingerprint=fingerprint,
                       payload=payload, sequence=sequence),
        )
        since_save = 0

    assignments: Iterator[Tuple[int, ...]] = islice(
        product(range(len(tables)), repeat=width), configs_done, None
    )
    progressed = False
    try:
        with _metrics.timed("explore.hybrid.brute_force"), \
                trace_span("explore.hybrid.brute_force",
                           width=width, combinations=total):
            for assignment in assignments:
                if progressed:
                    stop_reason = meter.stop_reason()
                    if stop_reason is not None:
                        break
                chain = [tables[i] for i in assignment]
                err = float(HybridChain(chain).error_probability(pa, pb, pc))
                if err < best_error - 1e-15:
                    best_error = err
                    best_assignment = assignment
                configs_done += 1
                progressed = True
                meter.charge(configs=1)
                latest_payload = snapshot()
                since_save += 1
                if (checkpoint_path is not None
                        and since_save >= checkpoint_every):
                    flush(latest_payload)
                _chaos.tick("hybrid.brute_force.config")
    except KeyboardInterrupt:
        if checkpoint_path is not None and latest_payload is not None:
            flush(latest_payload)
        raise
    if checkpoint_path is not None and since_save > 0 \
            and latest_payload is not None:
        flush(latest_payload)

    if best_assignment is None:
        raise ExplorationError(
            "budget exhausted before any configuration was evaluated"
        )
    truncated = configs_done < total
    if _metrics.is_enabled():
        _metrics.get_registry().counter(
            "explore.hybrid.assignments_enumerated"
        ).add(configs_done)
    manifest = build_manifest(
        "hybrid-search",
        cells=[t.name for t in tables],
        wall_time_s=watch.elapsed(),
        budget=budget.as_dict() if budget is not None else None,
        truncated=True if truncated else None,
        stop_reason=stop_reason if truncated else None,
        width=width, p_a=pa, p_b=pb, p_cin=pc, strategy="brute-force",
        configs_evaluated=configs_done,
    )
    best_chain = [tables[i] for i in best_assignment]
    return HybridSearchResult(
        chain=HybridChain(best_chain),
        p_error=best_error,
        objective=1.0 - best_error,
        exact=not truncated,
        manifest=manifest,
        truncated=truncated,
        stop_reason=stop_reason if truncated else None,
    )


class ParetoFront(Sequence[HybridSearchResult]):
    """A (possibly partial) error/power Pareto front.

    Behaves like the plain ``list`` the curve sweep used to return
    (indexing, iteration, ``len``, truthiness), plus resilience
    metadata: ``truncated=True`` means the sweep's budget expired and
    only a prefix of the requested weights was explored -- every result
    present is still a fully valid design, and the manifest records the
    weights actually swept and the stop reason.
    """

    def __init__(
        self,
        results: Sequence[HybridSearchResult],
        truncated: bool = False,
        stop_reason: Optional[str] = None,
        manifest: Optional[RunManifest] = None,
    ) -> None:
        self.results: Tuple[HybridSearchResult, ...] = tuple(results)
        self.truncated = truncated
        self.stop_reason = stop_reason
        self.manifest = manifest

    def __getitem__(self, index):  # noqa: D105 -- Sequence protocol
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)

    def __repr__(self) -> str:
        return (
            f"ParetoFront({len(self.results)} designs, "
            f"truncated={self.truncated})"
        )


def hybrid_tradeoff_curve(
    cells: Sequence[CellSpec],
    width: int,
    power_weights: Sequence[float],
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: float = 0.5,
    power_model: Optional[PowerModel] = None,
    budget: Optional[RunBudget] = None,
    parallelism: object = "off",
) -> ParetoFront:
    """Sweep the power weight to trace an error/power trade-off frontier.

    Each weight yields the optimal chain for the scalarised objective
    ``P(Succ) - weight * power``; collectively the distinct results
    sample the Pareto frontier of (error, power) over hybrid designs.
    Duplicate chains from adjacent weights are collapsed.

    A *budget* bounds the sweep: the deadline is checked between
    weights (after at least one), and an expired budget returns the
    partial front explored so far as a :class:`ParetoFront` with
    ``truncated=True`` -- a deadline-limited exploration degrades to a
    coarser frontier instead of failing with nothing.

    ``parallelism`` (``"auto"``, a worker count, or ``"off"``) fans the
    independent per-weight searches out across worker processes
    (:mod:`repro.engine.parallel`); the front is assembled in weight
    order, so the result matches a serial sweep.  A custom
    *power_model* keeps the sweep serial -- models are not shipped to
    workers, which rebuild the datasheet default.
    """
    if not power_weights:
        raise ExplorationError("need at least one power weight")
    model = power_model or PowerModel()
    meter = make_meter(budget)
    results: List[HybridSearchResult] = []
    seen = set()
    swept: List[float] = []
    stop_reason: Optional[str] = None
    weights = sorted(float(w) for w in power_weights)

    jobs = 0
    if power_model is None and len(weights) > 1:
        from ..engine.parallel import resolve_jobs

        jobs = resolve_jobs(parallelism)
    if jobs:
        from ..core.types import validate_probability as _vp
        from ..engine.parallel import tradeoff_results_parallel

        tables = [resolve_cell(c) for c in cells]
        answers, cancelled = tradeoff_results_parallel(
            tables, width,
            float_probability_vector(p_a, width, "p_a"),
            float_probability_vector(p_b, width, "p_b"),
            float(_vp(p_cin, "p_cin")),
            weights, jobs, meter,
        )
        swept = sorted(answers)
        for weight in swept:
            result = answers[weight]
            key = result.chain
            if key not in seen:
                seen.add(key)
                results.append(result)
        if len(swept) < len(weights):
            stop_reason = meter.stop_reason()
    else:
        for weight in weights:
            if swept:
                stop_reason = meter.stop_reason()
                if stop_reason is not None:
                    break
            result = optimal_hybrid(
                cells, width, p_a, p_b, p_cin,
                power_weight=weight, power_model=model,
            )
            swept.append(weight)
            _chaos.tick("hybrid.tradeoff.weight")
            key = result.chain
            if key not in seen:
                seen.add(key)
                results.append(result)
    truncated = len(swept) < len(weights)
    manifest = build_manifest(
        "pareto-front",
        cells=[str(c) for c in cells],
        budget=budget.as_dict() if budget is not None else None,
        truncated=True if truncated else None,
        stop_reason=stop_reason if truncated else None,
        width=width,
        weights_requested=weights,
        weights_swept=swept,
    )
    if truncated:
        log_event(_logger, "hybrid.tradeoff.truncated",
                  swept=len(swept), requested=len(weights),
                  reason=stop_reason)
    return ParetoFront(results, truncated=truncated,
                       stop_reason=stop_reason if truncated else None,
                       manifest=manifest)


def greedy_hybrid(
    cells: Sequence[CellSpec],
    width: int,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: float = 0.5,
) -> HybridSearchResult:
    """Stage-by-stage greedy: maximise surviving success mass per stage.

    A fast heuristic ablation baseline; not optimal in general (the
    tests exhibit its gap against :func:`optimal_hybrid`).
    """
    tables = [resolve_cell(c) for c in cells]
    pa = float_probability_vector(p_a, width, "p_a")
    pb = float_probability_vector(p_b, width, "p_b")
    pc = float(validate_probability(p_cin, "p_cin"))
    v = (1.0 - pc, pc)
    chosen: List[FullAdderTruthTable] = []
    for i in range(width):
        last = i == width - 1
        best_table = None
        best_score = -1.0
        best_state = v
        for table in tables:
            if last:
                l0, l1 = _final_vector(table, pa[i], pb[i])
                score = l0 * v[0] + l1 * v[1]
                state = v
            else:
                t = _stage_matrix(table, pa[i], pb[i])
                state = (
                    t[0][0] * v[0] + t[0][1] * v[1],
                    t[1][0] * v[0] + t[1][1] * v[1],
                )
                score = state[0] + state[1]
            if score > best_score:
                best_score = score
                best_table = table
                best_state = state
        chosen.append(best_table)
        v = best_state
    chain = HybridChain(chosen)
    p_error = float(chain.error_probability(pa, pb, pc))
    manifest = build_manifest(
        "hybrid-search",
        cells=[t.name for t in tables],
        width=width, p_a=pa, p_b=pb, p_cin=pc, strategy="greedy",
    )
    return HybridSearchResult(
        chain=chain, p_error=p_error, objective=1.0 - p_error, exact=False,
        manifest=manifest,
    )
