"""Pareto-front extraction over design points.

The interesting LPAA trade-off is multi-objective: error probability
versus power versus area.  :func:`pareto_front` returns the
non-dominated subset of a design-point list under an arbitrary selection
of minimised objectives.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.exceptions import ExplorationError
from .design_space import DesignPoint

#: Named objectives -> extractor.  All are minimised.
_OBJECTIVES = {
    "error": lambda p: p.p_error,
    "power": lambda p: p.power_nw,
    "area": lambda p: p.area_ge,
    "width": lambda p: -p.width,  # wider is better: minimise the negation
}


def objective_vector(
    point: DesignPoint, objectives: Sequence[str]
) -> Tuple[float, ...]:
    """The point's objective values, raising on missing data."""
    values = []
    for name in objectives:
        try:
            extractor = _OBJECTIVES[name]
        except KeyError:
            raise ExplorationError(
                f"unknown objective {name!r}; known: {sorted(_OBJECTIVES)}"
            ) from None
        value = extractor(point)
        if value is None:
            raise ExplorationError(
                f"point {point.cell_name}/w{point.width} lacks {name!r} data "
                "(sweep without a power model?)"
            )
        values.append(float(value))
    return tuple(values)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """``True`` when *a* is no worse everywhere and better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(
    points: Sequence[DesignPoint],
    objectives: Sequence[str] = ("error", "power"),
) -> List[DesignPoint]:
    """Non-dominated subset of *points* under the given minimised
    objectives, in input order."""
    if not points:
        return []
    vectors = [objective_vector(p, objectives) for p in points]
    front = []
    for i, (point, vec) in enumerate(zip(points, vectors)):
        if not any(
            dominates(other, vec)
            for j, other in enumerate(vectors)
            if j != i
        ):
            front.append(point)
    return front
