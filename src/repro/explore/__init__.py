"""Design-space exploration for LPAA configurations (paper §5)."""

from .design_space import (
    DesignPoint,
    best_cell_per_probability,
    sweep_design_space,
    useful_width_limit,
)
from .hybrid_search import (
    HybridSearchResult,
    ParetoFront,
    brute_force_hybrid,
    greedy_hybrid,
    hybrid_tradeoff_curve,
    optimal_hybrid,
)
from .pareto import dominates, objective_vector, pareto_front
from .zoo_space import (
    ZooDesignPoint,
    sweep_zoo_space,
    zoo_objective_vector,
    zoo_pareto_front,
)

__all__ = [
    "DesignPoint",
    "sweep_design_space",
    "best_cell_per_probability",
    "useful_width_limit",
    "pareto_front",
    "dominates",
    "objective_vector",
    "HybridSearchResult",
    "ParetoFront",
    "optimal_hybrid",
    "brute_force_hybrid",
    "greedy_hybrid",
    "hybrid_tradeoff_curve",
    "ZooDesignPoint",
    "sweep_zoo_space",
    "zoo_objective_vector",
    "zoo_pareto_front",
]
