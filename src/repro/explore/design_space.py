"""Design-space sweeps over cells, widths and input statistics (paper §5).

Produces flat record lists combining the three axes the paper discusses
-- error probability (the recursion), power and area (the calibrated
structural model) -- ready for Pareto filtering and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..circuits.power import PowerModel
from ..core.exceptions import ExplorationError
from ..core.recursive import CellSpec, resolve_cell
from ..engine import error_curves


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of the design space."""

    cell_name: str
    width: int
    p_input: float
    p_error: float
    power_nw: Optional[float] = None
    area_ge: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """Flat-dict view for CSV/JSON export."""
        return {
            "cell": self.cell_name,
            "width": self.width,
            "p_input": self.p_input,
            "p_error": self.p_error,
            "power_nw": self.power_nw,
            "area_ge": self.area_ge,
        }


def sweep_design_space(
    cells: Sequence[CellSpec],
    widths: Sequence[int],
    probabilities: Sequence[float],
    power_model: Optional[PowerModel] = None,
    parallelism: object = "off",
) -> List[DesignPoint]:
    """Evaluate every (cell, width, input probability) combination.

    Error probabilities come from one vectorised recursion pass per
    (cell, probability); power/area are attached when a *power_model* is
    supplied (each adds one structural evaluation per cell/width).
    ``parallelism`` (``"auto"``, a worker count, or ``"off"``) is
    forwarded to :func:`repro.engine.error_curves`, which shards each
    cell's probability grid across worker processes with bit-identical
    results.
    """
    if not cells or not widths or not probabilities:
        raise ExplorationError("cells, widths and probabilities must be non-empty")
    width_list = sorted(set(int(w) for w in widths))
    if width_list[0] < 1:
        raise ExplorationError(f"widths must be >= 1, got {width_list[0]}")
    max_width = width_list[-1]
    prob_list = [float(p) for p in probabilities]
    if any(not 0.0 <= p <= 1.0 for p in prob_list):
        raise ExplorationError("probabilities must lie in [0, 1]")

    points: List[DesignPoint] = []
    prob_array = np.asarray(prob_list)
    for spec in cells:
        table = resolve_cell(spec)
        # The paper's operating points tie the carry-in to the operand
        # probability (e.g. Table 7's "A_i = B_i = C_in = 0.1").
        curves = error_curves(table, max_width, prob_array,
                              p_cin=prob_array, parallelism=parallelism)
        curves = np.atleast_2d(curves)
        for pi, p in enumerate(prob_list):
            for width in width_list:
                power = area = None
                if power_model is not None:
                    power = power_model.chain_power_nw(
                        table, width, p_a=p, p_b=p, p_cin=p
                    )
                    area = power_model.chain_area_ge(table, width)
                points.append(
                    DesignPoint(
                        cell_name=table.name,
                        width=width,
                        p_input=p,
                        p_error=float(curves[pi, width - 1]),
                        power_nw=power,
                        area_ge=area,
                    )
                )
    return points


def best_cell_per_probability(
    points: Iterable[DesignPoint],
    width: int,
) -> Dict[float, DesignPoint]:
    """For each swept probability, the lowest-error cell at *width*.

    This is the paper's Fig. 5 reading: LPAA 7 wins at low p, LPAA 1 at
    high p, LPAA 6 is the near-best "Four Season" compromise.
    """
    best: Dict[float, DesignPoint] = {}
    for point in points:
        if point.width != width:
            continue
        current = best.get(point.p_input)
        if current is None or point.p_error < current.p_error:
            best[point.p_input] = point
    return best


def useful_width_limit(
    cell: CellSpec,
    p: float = 0.5,
    threshold: float = 0.5,
    max_width: int = 32,
) -> Optional[int]:
    """First width at which ``P(Error)`` exceeds *threshold* (or None).

    Quantifies the paper's §5 remark that "none of the LPAA is useful
    beyond 10-bits cascading" for equally probable inputs.
    """
    curve = error_curves(cell, max_width, p)
    above = np.nonzero(curve > threshold)[0]
    return int(above[0]) + 1 if above.size else None
