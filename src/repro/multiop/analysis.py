"""Statistical error analysis for carry-save structures.

A 3:2 compressor row has **no carry chain**, so its columns are
statistically independent: the probability that the whole row behaves
accurately is an exact per-column product
(:func:`csa_layer_success_probability`), computed with the same L mask
the RCA recursion uses.  Deeper trees re-introduce correlation (a
column's sum and carry are dependent and both flow downstream), so for
full trees the module provides:

* :func:`csa_tree_success_product` -- the all-cells-accurate product
  with marginals propagated level by level.  It is exact for one level;
  for deeper trees it is a (documented, tested) approximation of the
  probability that *every compressor cell* behaves accurately -- which
  is itself a lower bound on output correctness, since compressor errors
  can cancel numerically;
* :func:`multi_operand_error_probability_mc` -- seeded Monte-Carlo over
  the exact functional model (the ground truth for any configuration);
* :func:`multi_operand_error_exact` -- weighted enumeration for small
  operand counts/widths (the oracle the others are tested against).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.exceptions import AnalysisError
from ..core.probability import float_probability_vector
from ..core.recursive import CellSpec, resolve_cell
from .compressor import multi_operand_add, multi_operand_add_array


def _column_distribution(cell, p_x: float, p_y: float, p_z: float):
    """Per-column probabilities: (P(cell accurate), P(sum=1), P(carry=1))."""
    from ..engine.cache import analysis_matrices

    table = resolve_cell(cell)
    mkl = analysis_matrices(table)
    p_ok = p_sum = p_carry = 0.0
    for idx in range(8):
        x, y, z = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
        weight = (
            (p_x if x else 1 - p_x)
            * (p_y if y else 1 - p_y)
            * (p_z if z else 1 - p_z)
        )
        s, c = table.rows[idx]
        p_ok += weight * mkl.l[idx]
        p_sum += weight * s
        p_carry += weight * c
    return p_ok, p_sum, p_carry


def csa_layer_success_probability(
    cell: CellSpec,
    p_x: Union[float, Sequence[float]],
    p_y: Union[float, Sequence[float]],
    p_z: Union[float, Sequence[float]],
    width: int,
) -> float:
    """Exact P(every column of one 3:2 row behaves accurately).

    Columns are independent (no carry chain), so this is a plain product
    of per-column success masses -- and since a compressor-row error
    always changes ``sum + carry`` away from ``x + y + z`` at that
    column's weight unless another column cancels it, it also equals the
    word-level correctness probability of the row for cells whose error
    cases all shift the column total (checked against enumeration in the
    tests).
    """
    px = float_probability_vector(p_x, width, "p_x")
    py = float_probability_vector(p_y, width, "p_y")
    pz = float_probability_vector(p_z, width, "p_z")
    product = 1.0
    for i in range(width):
        p_ok, _, _ = _column_distribution(cell, px[i], py[i], pz[i])
        product *= p_ok
    return product


def csa_tree_success_product(
    cell: CellSpec,
    operand_probabilities: Sequence[Sequence[float]],
    width: int,
) -> float:
    """Product-form estimate of P(every compressor cell accurate).

    Propagates per-position one-probability marginals through the
    Wallace levels (independence assumption between words) and
    multiplies each visited column's success mass.  Exact for a single
    level; an approximation beyond (tested within tolerance of MC).
    """
    probs: List[List[float]] = [
        float_probability_vector(row, width, "operand")
        for row in operand_probabilities
    ]
    if not probs:
        raise AnalysisError("need at least one operand probability row")
    current_width = width
    success = 1.0
    while len(probs) > 2:
        next_probs: List[List[float]] = []
        for j in range(0, len(probs) - 2, 3):
            x_row = probs[j] + [0.0]
            y_row = probs[j + 1] + [0.0]
            z_row = probs[j + 2] + [0.0]
            sum_row = [0.0] * (current_width + 1)
            carry_row = [0.0] * (current_width + 1)
            for i in range(current_width):
                p_ok, p_sum, p_carry = _column_distribution(
                    cell, x_row[i], y_row[i], z_row[i]
                )
                success *= p_ok
                sum_row[i] = p_sum
                carry_row[i + 1] = p_carry
            next_probs.extend([sum_row, carry_row])
        if len(probs) % 3:
            for row in probs[len(probs) - len(probs) % 3:]:
                next_probs.append(row + [0.0])
        probs = next_probs
        current_width += 1
    return success


def multi_operand_error_probability_mc(
    operand_probabilities: Sequence[Sequence[float]],
    width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
    samples: int = 200_000,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo P(CSA-tree + final-adder output != exact sum)."""
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    rows = [
        float_probability_vector(row, width, "operand")
        for row in operand_probabilities
    ]
    rng = np.random.default_rng(seed)
    operands = []
    for row in rows:
        word = np.zeros(samples, dtype=np.int64)
        for i, p in enumerate(row):
            word |= (rng.random(samples) < p).astype(np.int64) << i
        operands.append(word)
    exact = sum(operands)
    approx = multi_operand_add_array(
        operands, width, compress_cell=compress_cell, final_adder=final_adder
    )
    return float((approx != exact).mean())


def multi_operand_error_exact(
    operand_probabilities: Sequence[Sequence[float]],
    width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
    max_cases: int = 1 << 22,
) -> float:
    """Exact weighted enumeration over all operand combinations.

    Cost is ``2^(n_operands * width)``; guarded by *max_cases*.
    """
    rows = [
        float_probability_vector(row, width, "operand")
        for row in operand_probabilities
    ]
    n = len(rows)
    total_cases = 1 << (n * width)
    if total_cases > max_cases:
        raise AnalysisError(
            f"{n} operands x {width} bits needs {total_cases} cases "
            f"(> {max_cases}); use the Monte-Carlo estimator"
        )
    p_error = 0.0
    values = [0] * n
    # Mixed-radix enumeration over all operand tuples.
    for case in range(total_cases):
        weight = 1.0
        rest = case
        for k in range(n):
            values[k] = rest & ((1 << width) - 1)
            rest >>= width
            for i in range(width):
                bit = (values[k] >> i) & 1
                weight *= rows[k][i] if bit else 1.0 - rows[k][i]
        if weight == 0.0:
            continue
        approx = multi_operand_add(
            values, width, compress_cell=compress_cell,
            final_adder=final_adder,
        )
        if approx != sum(values):
            p_error += weight
    return p_error
