"""Carry-save (3:2 compressor) structures built from approximate cells.

The paper's §2.1 names the Carry-Save Adder next to the Ripple-Carry
Adder as the multi-bit topology LPAAs get cascaded into ("building
blocks of digital signal processors").  A CSA row applies one full-adder
cell per column with **no intra-row carry chain**: three operands
compress into a sum word and a carry word (shifted left by one).  A
Wallace-style tree of such rows reduces any number of operands to two,
which a final (possibly approximate) ripple adder resolves.

Everything here is bit-true and works with any
:class:`repro.core.truth_table.FullAdderTruthTable`, so the same LPAA
cells drive RCA chains and CSA trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import ChainLengthError
from ..core.recursive import CellSpec, resolve_cell
from ..core.truth_table import FullAdderTruthTable
from ..simulation.functional import ripple_add, ripple_add_array


def csa_compress(
    cell: CellSpec,
    x: int,
    y: int,
    z: int,
    width: int,
) -> Tuple[int, int]:
    """One 3:2 compression: three *width*-bit words -> (sum, carry).

    Column *i* evaluates the cell on ``(x_i, y_i, z_i)``; its sum bit
    lands at weight ``i`` and its carry bit at weight ``i + 1``.  With
    the accurate cell, ``sum + carry == x + y + z`` always.

    >>> csa_compress("accurate", 0b011, 0b001, 0b001, 3)
    (3, 2)
    """
    table = resolve_cell(cell)
    if width < 1:
        raise ChainLengthError(f"width must be >= 1, got {width}", width)
    for name, value in (("x", x), ("y", y), ("z", z)):
        if value < 0 or value >= 1 << width:
            raise ChainLengthError(
                f"operand {name}={value} must fit in {width} bits"
            )
    sum_word = 0
    carry_word = 0
    for i in range(width):
        s, c = table.evaluate((x >> i) & 1, (y >> i) & 1, (z >> i) & 1)
        sum_word |= s << i
        carry_word |= c << (i + 1)
    return sum_word, carry_word


def csa_compress_array(
    cell: CellSpec,
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    width: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`csa_compress` over operand arrays."""
    table = resolve_cell(cell)
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    z = np.asarray(z, dtype=np.int64)
    if not (x.shape == y.shape == z.shape):
        raise ChainLengthError("operand arrays must share a shape")
    for arr in (x, y, z):
        if (arr < 0).any() or (arr >= 1 << width).any():
            raise ChainLengthError(f"operands must fit in {width} bits")
    lut = np.asarray(table.rows, dtype=np.int64)
    sum_word = np.zeros_like(x)
    carry_word = np.zeros_like(x)
    for i in range(width):
        idx = (((x >> i) & 1) << 2) | (((y >> i) & 1) << 1) | ((z >> i) & 1)
        sum_word |= lut[idx, 0] << i
        carry_word |= lut[idx, 1] << (i + 1)
    return sum_word, carry_word


@dataclass(frozen=True)
class ReductionTrace:
    """Record of one Wallace-style reduction for inspection/benches."""

    levels: int
    compressions: int
    final_width: int


def wallace_reduce(
    cell: CellSpec,
    operands: Sequence[int],
    width: int,
) -> Tuple[List[int], ReductionTrace]:
    """Reduce >= 1 operands to at most two partial words via 3:2 rows.

    Words grow as carries shift left; the returned words (and the trace's
    ``final_width``) are wide enough to hold every intermediate exactly
    when the cell is accurate.
    """
    words = [int(v) for v in operands]
    if not words:
        raise ChainLengthError("need at least one operand", 0)
    if any(v < 0 or v >= 1 << width for v in words):
        raise ChainLengthError(f"operands must fit in {width} bits")
    current_width = width
    levels = 0
    compressions = 0
    while len(words) > 2:
        next_words: List[int] = []
        for j in range(0, len(words) - 2, 3):
            s, c = csa_compress(
                cell, words[j], words[j + 1], words[j + 2], current_width
            )
            next_words.extend([s, c])
            compressions += 1
        next_words.extend(words[len(words) - len(words) % 3:]
                          if len(words) % 3 else [])
        words = next_words
        current_width += 1  # carries shift one position left per level
        levels += 1
    return words, ReductionTrace(
        levels=levels, compressions=compressions, final_width=current_width
    )


def reduction_final_width(operand_count: int, width: int) -> int:
    """Width of the final two words after Wallace reduction.

    Mirrors :func:`wallace_reduce` exactly (one extra bit per level), so
    callers can pre-size hybrid final-adder chains.
    """
    if operand_count < 1:
        raise ChainLengthError("need at least one operand", 0)
    count = operand_count
    levels = 0
    while count > 2:
        count = 2 * (count // 3) + count % 3
        levels += 1
    return width + levels


def multi_operand_add(
    operands: Sequence[int],
    width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
) -> int:
    """Sum many operands: CSA tree + final ripple addition.

    *compress_cell* drives the 3:2 rows, *final_adder* the carry-
    propagating last step (defaults to the accurate cell).  With both
    accurate the result equals ``sum(operands)``.
    """
    words, trace = wallace_reduce(compress_cell, operands, width)
    if len(words) == 1:
        return words[0]
    final_cell = final_adder if final_adder is not None else "accurate"
    return ripple_add(final_cell, words[0], words[1], 0, trace.final_width)


def multi_operand_add_array(
    operands: Sequence[np.ndarray],
    width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
) -> np.ndarray:
    """Vectorised :func:`multi_operand_add` (one tree, array operands)."""
    words = [np.asarray(v, dtype=np.int64) for v in operands]
    if not words:
        raise ChainLengthError("need at least one operand", 0)
    current_width = width
    while len(words) > 2:
        next_words: List[np.ndarray] = []
        for j in range(0, len(words) - 2, 3):
            s, c = csa_compress_array(
                compress_cell, words[j], words[j + 1], words[j + 2],
                current_width,
            )
            next_words.extend([s, c])
        if len(words) % 3:
            next_words.extend(words[len(words) - len(words) % 3:])
        words = next_words
        current_width += 1
    if len(words) == 1:
        return words[0]
    final_cell = final_adder if final_adder is not None else "accurate"
    return ripple_add_array(final_cell, words[0], words[1], 0, current_width)
