"""Carry-save / multi-operand structures (paper §2.1's CSA topology)."""

from .analysis import (
    csa_layer_success_probability,
    csa_tree_success_product,
    multi_operand_error_exact,
    multi_operand_error_probability_mc,
)
from .compressor import (
    ReductionTrace,
    csa_compress,
    csa_compress_array,
    multi_operand_add,
    multi_operand_add_array,
    wallace_reduce,
)
from .mac import (
    Accumulator,
    accumulator_drift_profile,
    dot_product,
    mean_accumulator_drift,
)
from .multiplier import (
    approx_multiply,
    exhaustive_multiplier_check,
    multiplier_error_metrics,
    multiplier_final_width,
    partial_products,
)

__all__ = [
    "csa_compress",
    "csa_compress_array",
    "wallace_reduce",
    "multi_operand_add",
    "multi_operand_add_array",
    "ReductionTrace",
    "csa_layer_success_probability",
    "csa_tree_success_product",
    "multi_operand_error_probability_mc",
    "multi_operand_error_exact",
    "dot_product",
    "Accumulator",
    "accumulator_drift_profile",
    "mean_accumulator_drift",
    "partial_products",
    "approx_multiply",
    "multiplier_final_width",
    "multiplier_error_metrics",
    "exhaustive_multiplier_check",
]
