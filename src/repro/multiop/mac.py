"""Multiply-accumulate and dot products on approximate addition.

DSP kernels (the paper's motivating domain) are dominated by
accumulation.  Two accumulation styles over exact products:

* :func:`dot_product` -- CSA-tree reduction of all partial results, the
  high-throughput datapath shape;
* :class:`Accumulator` -- sequential ripple-adder accumulation, the
  low-area shape, with wraparound semantics of real fixed-width
  hardware.

Multiplications are performed exactly (the paper approximates adders,
not multipliers); the accumulating adders are the approximate parts.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..core.exceptions import AnalysisError, ChainLengthError
from ..core.recursive import CellSpec
from ..simulation.functional import ripple_add
from .compressor import multi_operand_add


def dot_product(
    a: Sequence[int],
    b: Sequence[int],
    input_width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
) -> int:
    """``sum(a_i * b_i)`` with the accumulation on a CSA tree.

    Products are exact ``2 * input_width``-bit partials; the reduction
    tree and final adder may be approximate.
    """
    if len(a) != len(b):
        raise AnalysisError(f"length mismatch: {len(a)} vs {len(b)}")
    if not a:
        return 0
    limit = 1 << input_width
    for name, vec in (("a", a), ("b", b)):
        if any(v < 0 or v >= limit for v in vec):
            raise ChainLengthError(
                f"{name} entries must fit in {input_width} bits"
            )
    products = [x * y for x, y in zip(a, b)]
    return multi_operand_add(
        products, 2 * input_width,
        compress_cell=compress_cell, final_adder=final_adder,
    )


class Accumulator:
    """A fixed-width sequential accumulator over an approximate adder.

    Adds each input into a *width*-bit register through the configured
    ripple chain; the register wraps modulo ``2**width`` exactly like
    hardware (the adder's carry-out is dropped).
    """

    def __init__(
        self,
        width: int,
        cell: Union[CellSpec, Sequence[CellSpec]] = "accurate",
    ):
        if width < 1:
            raise ChainLengthError(f"width must be >= 1, got {width}", width)
        self._width = width
        self._cell = cell
        self._value = 0
        self._exact = 0
        self._steps = 0

    @property
    def width(self) -> int:
        """Register width in bits."""
        return self._width

    @property
    def value(self) -> int:
        """Current (approximate) register contents."""
        return self._value

    @property
    def exact_value(self) -> int:
        """What an exact accumulator would hold (same wraparound)."""
        return self._exact

    @property
    def steps(self) -> int:
        """Number of accumulated inputs."""
        return self._steps

    @property
    def drift(self) -> int:
        """Signed error ``value - exact_value`` on the wrapped register
        (mapped into ``[-2^(w-1), 2^(w-1))``)."""
        half = 1 << (self._width - 1)
        raw = (self._value - self._exact) % (1 << self._width)
        return raw - (1 << self._width) if raw >= half else raw

    def add(self, value: int) -> int:
        """Accumulate one input; returns the new register value."""
        mask = (1 << self._width) - 1
        if value < 0 or value > mask:
            raise ChainLengthError(
                f"input {value} must fit in {self._width} bits"
            )
        self._value = ripple_add(
            self._cell, self._value, value, 0, self._width
        ) & mask
        self._exact = (self._exact + value) & mask
        self._steps += 1
        return self._value

    def reset(self) -> None:
        """Clear the register and the exact shadow."""
        self._value = 0
        self._exact = 0
        self._steps = 0


def accumulator_drift_profile(
    width: int,
    cell: Union[CellSpec, Sequence[CellSpec]],
    inputs: Sequence[int],
) -> np.ndarray:
    """Signed drift after each accumulation step (length = len(inputs))."""
    acc = Accumulator(width, cell)
    drifts = np.zeros(len(inputs), dtype=np.int64)
    for i, value in enumerate(inputs):
        acc.add(int(value))
        drifts[i] = acc.drift
    return drifts


def mean_accumulator_drift(
    width: int,
    cell: Union[CellSpec, Sequence[CellSpec]],
    steps: int,
    p_input: float = 0.5,
    trials: int = 64,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Average |drift| trajectory over random input streams.

    Returns a ``(steps,)`` array: mean absolute register error after
    each step, averaged over *trials* random streams whose bits are 1
    with probability *p_input*.
    """
    if steps < 1 or trials < 1:
        raise AnalysisError("steps and trials must be >= 1")
    rng = np.random.default_rng(seed)
    totals = np.zeros(steps, dtype=np.float64)
    for _ in range(trials):
        stream = np.zeros(steps, dtype=np.int64)
        for i in range(width):
            stream |= (rng.random(steps) < p_input).astype(np.int64) << i
        drifts = accumulator_drift_profile(width, cell, stream)
        totals += np.abs(drifts)
    return totals / trials
