"""Approximate array multipliers built on approximate adders.

The paper cites architectural exploration of approximate *multipliers*
(ref [16]) as the sibling problem; structurally a multiplier is exactly
this library's territory, because an unsigned array multiplier is
nothing but partial products + a large multi-operand addition.  Here:

* partial products are exact AND rows (approximating the adders, not
  the AND gates, mirrors the paper's adder-centric focus);
* their accumulation runs on the configurable CSA tree / final adder of
  :mod:`repro.multiop.compressor` -- so every LPAA cell and hybrid chain
  becomes a multiplier flavour.

Includes truncated (fixed-width) multiplication with the standard
LSB-column dropping, the other classic approximate-multiplier knob.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.exceptions import AnalysisError, ChainLengthError
from ..core.recursive import CellSpec
from .compressor import multi_operand_add, reduction_final_width


def partial_products(a: int, b: int, width: int) -> list:
    """The *width* shifted partial products of ``a * b``.

    Row *j* is ``(a & mask) << j`` if bit *j* of *b* is set, else 0 --
    already aligned, ready for multi-operand addition over
    ``2 * width`` bits.
    """
    if a < 0 or b < 0 or a >= 1 << width or b >= 1 << width:
        raise ChainLengthError(
            f"operands must fit in {width} bits, got {a}, {b}"
        )
    return [((a << j) if (b >> j) & 1 else 0) for j in range(width)]


def approx_multiply(
    a: int,
    b: int,
    width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
    truncate_bits: int = 0,
) -> int:
    """Multiply through an approximate accumulation datapath.

    Parameters
    ----------
    truncate_bits:
        Drop this many LSB columns of every partial product before
        accumulation (the classic truncated-multiplier approximation);
        the result keeps full weight (low bits simply read 0).
    """
    if truncate_bits < 0 or truncate_bits > 2 * width:
        raise AnalysisError(
            f"truncate_bits must be in [0, {2 * width}], got {truncate_bits}"
        )
    rows = partial_products(a, b, width)
    if truncate_bits:
        keep = ~((1 << truncate_bits) - 1)
        rows = [row & keep for row in rows]
        rows = [row >> truncate_bits for row in rows]
        total = multi_operand_add(
            rows, 2 * width - truncate_bits,
            compress_cell=compress_cell, final_adder=final_adder,
        )
        return total << truncate_bits
    return multi_operand_add(
        rows, 2 * width,
        compress_cell=compress_cell, final_adder=final_adder,
    )


def multiplier_final_width(width: int, truncate_bits: int = 0) -> int:
    """Width of the final carry-propagate adder inside the multiplier."""
    return reduction_final_width(width, 2 * width - truncate_bits)


def multiplier_error_metrics(
    width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
    truncate_bits: int = 0,
    samples: int = 20_000,
    seed: Optional[int] = None,
) -> Tuple[float, float, int]:
    """Monte-Carlo ``(error rate, mean |error|, worst |error|)``.

    Uniform random operands; exact products as reference.
    """
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << width, samples)
    b = rng.integers(0, 1 << width, samples)
    errors = np.zeros(samples, dtype=np.int64)
    for j in range(samples):
        approx = approx_multiply(
            int(a[j]), int(b[j]), width,
            compress_cell=compress_cell, final_adder=final_adder,
            truncate_bits=truncate_bits,
        )
        errors[j] = approx - int(a[j]) * int(b[j])
    abs_err = np.abs(errors)
    return (
        float((errors != 0).mean()),
        float(abs_err.mean()),
        int(abs_err.max()),
    )


def exhaustive_multiplier_check(
    width: int,
    compress_cell: CellSpec = "accurate",
    final_adder: Union[CellSpec, Sequence[CellSpec], None] = None,
    truncate_bits: int = 0,
) -> Tuple[int, int]:
    """``(errors, total)`` over every operand pair (small widths only)."""
    if width > 6:
        raise AnalysisError(
            f"exhaustive multiplier check at width {width} would visit "
            f"4^{width} pairs"
        )
    errors = 0
    total = 0
    for a in range(1 << width):
        for b in range(1 << width):
            total += 1
            approx = approx_multiply(
                a, b, width, compress_cell=compress_cell,
                final_adder=final_adder, truncate_bits=truncate_bits,
            )
            if approx != a * b:
                errors += 1
    return errors, total
