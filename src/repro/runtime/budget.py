"""Run budgets and cooperative cancellation for long-running engines.

The paper's point is that exhaustive simulation is infeasible at scale
(2^(2N+1) cases, Table 3); the practical consequence for this library is
that its *own* heavy engines (high-sample Monte-Carlo, chunked
exhaustive enumeration, brute-force design-space search) can run for a
long time.  A :class:`RunBudget` bounds such a run up front -- wall
clock, sample/case/config counts, a memory hint -- and a
:class:`BudgetMeter` checks it cooperatively at chunk boundaries, so the
engine stops *cleanly*: it returns a well-formed partial result flagged
``truncated=True`` with the stop reason recorded in the run manifest,
instead of being killed mid-write by an external timeout.

The meter's clock is injectable (``clock=...``) which is how the chaos
shim simulates deadline expiry deterministically in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.exceptions import AnalysisError

#: Stop reasons recorded in manifests / checkpoints (stable strings).
STOP_DEADLINE = "deadline"
STOP_MAX_SAMPLES = "max_samples"
STOP_MAX_CASES = "max_cases"
STOP_MAX_CONFIGS = "max_configs"


@dataclass(frozen=True)
class RunBudget:
    """Declarative resource envelope for one engine run.

    All limits are optional; ``None`` means unlimited.  ``deadline_s``
    is wall-clock seconds measured from meter creation (i.e. engine
    start), not an absolute timestamp, so budgets serialise and compare
    cleanly.  ``memory_hint_mb`` does not enforce anything by itself --
    engines use it to clamp their batch/block sizes.
    """

    deadline_s: Optional[float] = None
    max_samples: Optional[int] = None
    max_cases: Optional[int] = None
    max_configs: Optional[int] = None
    memory_hint_mb: Optional[float] = None

    def __post_init__(self) -> None:
        for field_name in ("deadline_s", "memory_hint_mb"):
            value = getattr(self, field_name)
            if value is not None and not value > 0:
                raise AnalysisError(
                    f"budget {field_name} must be > 0, got {value!r}"
                )
        for field_name in ("max_samples", "max_cases", "max_configs"):
            value = getattr(self, field_name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise AnalysisError(
                    f"budget {field_name} must be a positive int, "
                    f"got {value!r}"
                )

    @classmethod
    def for_deadline(cls, seconds: Optional[float]) -> Optional["RunBudget"]:
        """Deadline-only budget, or ``None`` for no limit.

        The serving layer derives one of these per dispatched
        micro-batch from the tightest remaining per-request deadline, so
        a slow engine run is cut at exactly the moment the most
        impatient waiting client would give up.
        """
        if seconds is None:
            return None
        return cls(deadline_s=seconds)

    @property
    def unlimited(self) -> bool:
        """True when no limit is set (the meter never stops a run)."""
        return all(
            getattr(self, f) is None
            for f in ("deadline_s", "max_samples", "max_cases", "max_configs")
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form for run manifests and checkpoints."""
        return {
            "deadline_s": self.deadline_s,
            "max_samples": self.max_samples,
            "max_cases": self.max_cases,
            "max_configs": self.max_configs,
            "memory_hint_mb": self.memory_hint_mb,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunBudget":
        """Inverse of :meth:`as_dict`."""
        return cls(
            deadline_s=data.get("deadline_s"),  # type: ignore[arg-type]
            max_samples=data.get("max_samples"),  # type: ignore[arg-type]
            max_cases=data.get("max_cases"),  # type: ignore[arg-type]
            max_configs=data.get("max_configs"),  # type: ignore[arg-type]
            memory_hint_mb=data.get("memory_hint_mb"),  # type: ignore[arg-type]
        )


class BudgetMeter:
    """Mutable progress tracker enforcing a :class:`RunBudget`.

    Engines ``charge()`` work done at every chunk boundary and consult
    :meth:`stop_reason`; a non-``None`` answer means "finish the current
    bookkeeping, flag the result truncated, and return".  The deadline
    clock defaults to :func:`time.monotonic` but is injectable for
    deterministic tests and chaos runs.
    """

    def __init__(
        self,
        budget: Optional[RunBudget] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget or RunBudget()
        self._clock = clock
        self._start = clock()
        self.samples = 0
        self.cases = 0
        self.configs = 0

    def charge(self, samples: int = 0, cases: int = 0, configs: int = 0) -> None:
        """Record completed work (called after each chunk)."""
        self.samples += samples
        self.cases += cases
        self.configs += configs

    def elapsed(self) -> float:
        """Wall-clock seconds since the meter was created."""
        return self._clock() - self._start

    def stop_reason(self) -> Optional[str]:
        """Why the run must stop now, or ``None`` to keep going."""
        b = self.budget
        if b.deadline_s is not None and self.elapsed() >= b.deadline_s:
            return STOP_DEADLINE
        if b.max_samples is not None and self.samples >= b.max_samples:
            return STOP_MAX_SAMPLES
        if b.max_cases is not None and self.cases >= b.max_cases:
            return STOP_MAX_CASES
        if b.max_configs is not None and self.configs >= b.max_configs:
            return STOP_MAX_CONFIGS
        return None

    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock seconds left before the deadline.

        ``None`` when the budget has no deadline; never negative.  The
        parallel executor uses this to hand each worker chunk a
        derived deadline-only budget covering exactly the time left.
        """
        if self.budget.deadline_s is None:
            return None
        return max(0.0, self.budget.deadline_s - self.elapsed())

    def remaining_samples(self, want: int) -> int:
        """Clamp a desired chunk of samples to the budget's remainder."""
        if self.budget.max_samples is None:
            return want
        return max(0, min(want, self.budget.max_samples - self.samples))

    def remaining_cases(self, want: int) -> int:
        """Clamp a desired chunk of cases to the budget's remainder."""
        if self.budget.max_cases is None:
            return want
        return max(0, min(want, self.budget.max_cases - self.cases))

    def remaining_configs(self, want: int) -> int:
        """Clamp a desired chunk of configurations to the remainder."""
        if self.budget.max_configs is None:
            return want
        return max(0, min(want, self.budget.max_configs - self.configs))


def make_meter(budget: Optional[RunBudget]) -> BudgetMeter:
    """Engine-side meter factory honouring an installed chaos shim.

    With a :class:`~repro.runtime.chaos.ChaosShim` active, the meter
    runs on the shim's virtual clock so tests can expire deadlines at
    exact chunk boundaries; otherwise it uses ``time.monotonic``.
    """
    from .chaos import get_chaos

    shim = get_chaos()
    clock = shim.clock if shim is not None else time.monotonic
    return BudgetMeter(budget, clock=clock)
