"""Fault injection for the resilience layer itself.

A resilience layer that has never seen a failure is decoration.  This
module provides a :class:`ChaosShim` the test suite (and brave users)
can install to inject the three failure modes the runtime claims to
survive:

* **IO failures** -- :func:`repro.io.atomic_write_text` consults the
  shim before committing a file, so checkpoint/result writes can be made
  to raise ``OSError`` a configurable number of times (transient) or
  forever (dead disk);
* **deadline expiry** -- :meth:`ChaosShim.clock` is a virtual clock that
  only advances when told to, letting tests drive a
  :class:`~repro.runtime.budget.BudgetMeter` past its deadline at an
  exact chunk boundary;
* **mid-run interrupts** -- engines call :func:`tick` at every chunk
  boundary; an armed shim raises ``KeyboardInterrupt`` on the N-th
  tick, simulating a user/scheduler kill between batches.

The serving layer adds three more, exercised by the chaos soak
(``benchmarks/bench_serve_chaos.py``):

* **engine faults** -- :func:`engine_call_check` runs before every
  engine dispatch inside :class:`~repro.serve.service.AnalysisService`;
  the shim can fail the first N dispatches, fail every Nth dispatch,
  or delay each one (deadline blowouts on demand);
* **cache read faults** -- :func:`cache_read_check` runs inside
  :meth:`~repro.engine.diskcache.DiskResultStore.get`; an injected
  ``OSError`` must surface as a cache miss, never as a request failure;
* **worker crashes** -- ``kill_after_batches`` sends ``SIGKILL`` to the
  *current process* on the N-th engine dispatch, the deterministic way
  to die mid-batch with requests in flight.

Installation is a context manager (:func:`install_chaos`) so a failed
test can never leak chaos into the rest of the suite; worker processes
instead install permanently from a JSON spec in the ``SEALPAA_CHAOS``
environment variable (:func:`install_chaos_from_env`), which is how the
supervisor transports faults across the process boundary.  When no shim
is installed every hook is a single ``is None`` check.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import time
from typing import Any, Dict, Iterator, Optional

#: Environment variable the supervisor/bench harness uses to arm chaos
#: inside freshly spawned worker processes.
CHAOS_ENV_VAR = "SEALPAA_CHAOS"

#: Constructor knobs that round-trip through :meth:`ChaosShim.to_spec`.
_SPEC_FIELDS = (
    "fail_io_times",
    "interrupt_after_ticks",
    "advance_per_tick",
    "fail_engine_times",
    "engine_fail_every",
    "engine_delay_s",
    "cache_read_fail_every",
    "kill_after_batches",
)

_active: Optional["ChaosShim"] = None


class ChaosShim:
    """Programmable failure injector used by the runtime test suite."""

    def __init__(
        self,
        fail_io_times: int = 0,
        interrupt_after_ticks: Optional[int] = None,
        advance_per_tick: float = 0.0,
        fail_engine_times: int = 0,
        engine_fail_every: int = 0,
        engine_delay_s: float = 0.0,
        cache_read_fail_every: int = 0,
        kill_after_batches: Optional[int] = None,
    ) -> None:
        #: How many further IO commits should fail (-1 = fail forever).
        self.fail_io_times = fail_io_times
        #: Raise ``KeyboardInterrupt`` on this 1-based tick, if set.
        self.interrupt_after_ticks = interrupt_after_ticks
        #: Virtual seconds the clock jumps at every chunk boundary --
        #: the deterministic way to expire a deadline mid-run.
        self.advance_per_tick = advance_per_tick
        #: How many further engine dispatches should fail (-1 = forever).
        self.fail_engine_times = fail_engine_times
        #: Additionally fail every Nth engine dispatch (0 = never) -- a
        #: steady background failure rate rather than a burst.
        self.engine_fail_every = engine_fail_every
        #: Real seconds to sleep before every engine dispatch (slow
        #: dependency / deadline-blowout injection).
        self.engine_delay_s = engine_delay_s
        #: Raise ``OSError`` on every Nth disk-cache read (0 = never).
        self.cache_read_fail_every = cache_read_fail_every
        #: ``SIGKILL`` the current process on this 1-based engine
        #: dispatch, if set -- dies mid-batch with requests in flight.
        self.kill_after_batches = kill_after_batches
        self.io_failures_injected = 0
        self.ticks_seen = 0
        self.engine_calls_seen = 0
        self.engine_faults_injected = 0
        self.cache_reads_seen = 0
        self.cache_faults_injected = 0
        self._now = 0.0

    # -- spec round-trip ---------------------------------------------------

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "ChaosShim":
        """Build a shim from a (possibly partial) spec dictionary.

        Unknown keys are rejected loudly -- a typo in a chaos spec that
        silently injects *nothing* would make a passing soak meaningless.
        """
        unknown = sorted(set(spec) - set(_SPEC_FIELDS))
        if unknown:
            raise ValueError(f"unknown chaos spec fields: {unknown}")
        return cls(**spec)

    def to_spec(self) -> Dict[str, Any]:
        """Non-default constructor knobs as a JSON-serialisable dict."""
        defaults = ChaosShim()
        return {
            field: getattr(self, field)
            for field in _SPEC_FIELDS
            if getattr(self, field) != getattr(defaults, field)
        }

    # -- virtual clock -----------------------------------------------------

    def clock(self) -> float:
        """Deterministic clock for ``BudgetMeter(clock=shim.clock)``."""
        return self._now

    def advance_clock(self, seconds: float) -> None:
        """Move the virtual clock forward (e.g. past a deadline)."""
        self._now += seconds

    # -- hook points -------------------------------------------------------

    def maybe_fail_io(self, path: str) -> None:
        """Raise ``OSError`` if IO failures are still armed."""
        if self.fail_io_times == 0:
            return
        if self.fail_io_times > 0:
            self.fail_io_times -= 1
        self.io_failures_injected += 1
        raise OSError(f"chaos: injected IO failure writing {path}")

    def on_tick(self, label: str) -> None:
        """Chunk-boundary hook; may raise ``KeyboardInterrupt``."""
        self.ticks_seen += 1
        self._now += self.advance_per_tick
        if (
            self.interrupt_after_ticks is not None
            and self.ticks_seen >= self.interrupt_after_ticks
        ):
            raise KeyboardInterrupt(
                f"chaos: injected interrupt at {label} "
                f"(tick {self.ticks_seen})"
            )

    def on_engine_call(self, label: str) -> None:
        """Pre-dispatch hook; may kill the process, sleep, or raise."""
        self.engine_calls_seen += 1
        if (
            self.kill_after_batches is not None
            and self.engine_calls_seen >= self.kill_after_batches
        ):
            # Die the way a segfault/OOM-kill does: no cleanup, no
            # drain, requests in flight.  The supervisor must notice.
            os.kill(os.getpid(), signal.SIGKILL)
        if self.engine_delay_s > 0:
            time.sleep(self.engine_delay_s)
        burst = self.fail_engine_times != 0
        if burst and self.fail_engine_times > 0:
            self.fail_engine_times -= 1
        periodic = (
            self.engine_fail_every > 0
            and self.engine_calls_seen % self.engine_fail_every == 0
        )
        if burst or periodic:
            self.engine_faults_injected += 1
            raise RuntimeError(
                f"chaos: injected engine failure at {label} "
                f"(call {self.engine_calls_seen})"
            )

    def on_cache_read(self, path: str) -> None:
        """Disk-cache read hook; may raise ``OSError``."""
        self.cache_reads_seen += 1
        if (
            self.cache_read_fail_every > 0
            and self.cache_reads_seen % self.cache_read_fail_every == 0
        ):
            self.cache_faults_injected += 1
            raise OSError(f"chaos: injected cache read failure for {path}")


def get_chaos() -> Optional[ChaosShim]:
    """The currently installed shim, or ``None``."""
    return _active


@contextlib.contextmanager
def install_chaos(shim: ChaosShim) -> Iterator[ChaosShim]:
    """Install *shim* for the duration of the ``with`` block."""
    global _active
    previous = _active
    _active = shim
    try:
        yield shim
    finally:
        _active = previous


def tick(label: str) -> None:
    """Engine chunk-boundary hook (no-op unless a shim is installed)."""
    if _active is not None:
        _active.on_tick(label)


def io_fault_check(path: str) -> None:
    """IO commit hook for :func:`repro.io.atomic_write_text`."""
    if _active is not None:
        _active.maybe_fail_io(path)


def engine_call_check(label: str) -> None:
    """Engine dispatch hook (no-op unless a shim is installed)."""
    if _active is not None:
        _active.on_engine_call(label)


def cache_read_check(path: str) -> None:
    """Disk-cache read hook (no-op unless a shim is installed)."""
    if _active is not None:
        _active.on_cache_read(path)


def install_chaos_from_env(environ: Optional[Dict[str, str]] = None,
                           ) -> Optional[ChaosShim]:
    """Permanently install a shim described by ``SEALPAA_CHAOS``.

    Worker processes call this once at startup; unlike
    :func:`install_chaos` there is no scope to restore, because the
    process *is* the scope.  Returns the installed shim, or ``None``
    when the variable is unset/empty.  A malformed spec raises --
    silently running a chaos soak with no chaos would be worse.
    """
    global _active
    raw = (environ if environ is not None else os.environ).get(
        CHAOS_ENV_VAR, "")
    if not raw.strip():
        return None
    shim = ChaosShim.from_spec(json.loads(raw))
    _active = shim
    return shim
