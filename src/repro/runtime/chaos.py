"""Fault injection for the resilience layer itself.

A resilience layer that has never seen a failure is decoration.  This
module provides a :class:`ChaosShim` the test suite (and brave users)
can install to inject the three failure modes the runtime claims to
survive:

* **IO failures** -- :func:`repro.io.atomic_write_text` consults the
  shim before committing a file, so checkpoint/result writes can be made
  to raise ``OSError`` a configurable number of times (transient) or
  forever (dead disk);
* **deadline expiry** -- :meth:`ChaosShim.clock` is a virtual clock that
  only advances when told to, letting tests drive a
  :class:`~repro.runtime.budget.BudgetMeter` past its deadline at an
  exact chunk boundary;
* **mid-run interrupts** -- engines call :func:`tick` at every chunk
  boundary; an armed shim raises ``KeyboardInterrupt`` on the N-th
  tick, simulating a user/scheduler kill between batches.

Installation is a context manager (:func:`install_chaos`) so a failed
test can never leak chaos into the rest of the suite.  When no shim is
installed every hook is a single ``is None`` check.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

_active: Optional["ChaosShim"] = None


class ChaosShim:
    """Programmable failure injector used by the runtime test suite."""

    def __init__(
        self,
        fail_io_times: int = 0,
        interrupt_after_ticks: Optional[int] = None,
        advance_per_tick: float = 0.0,
    ) -> None:
        #: How many further IO commits should fail (-1 = fail forever).
        self.fail_io_times = fail_io_times
        #: Raise ``KeyboardInterrupt`` on this 1-based tick, if set.
        self.interrupt_after_ticks = interrupt_after_ticks
        #: Virtual seconds the clock jumps at every chunk boundary --
        #: the deterministic way to expire a deadline mid-run.
        self.advance_per_tick = advance_per_tick
        self.io_failures_injected = 0
        self.ticks_seen = 0
        self._now = 0.0

    # -- virtual clock -----------------------------------------------------

    def clock(self) -> float:
        """Deterministic clock for ``BudgetMeter(clock=shim.clock)``."""
        return self._now

    def advance_clock(self, seconds: float) -> None:
        """Move the virtual clock forward (e.g. past a deadline)."""
        self._now += seconds

    # -- hook points -------------------------------------------------------

    def maybe_fail_io(self, path: str) -> None:
        """Raise ``OSError`` if IO failures are still armed."""
        if self.fail_io_times == 0:
            return
        if self.fail_io_times > 0:
            self.fail_io_times -= 1
        self.io_failures_injected += 1
        raise OSError(f"chaos: injected IO failure writing {path}")

    def on_tick(self, label: str) -> None:
        """Chunk-boundary hook; may raise ``KeyboardInterrupt``."""
        self.ticks_seen += 1
        self._now += self.advance_per_tick
        if (
            self.interrupt_after_ticks is not None
            and self.ticks_seen >= self.interrupt_after_ticks
        ):
            raise KeyboardInterrupt(
                f"chaos: injected interrupt at {label} "
                f"(tick {self.ticks_seen})"
            )


def get_chaos() -> Optional[ChaosShim]:
    """The currently installed shim, or ``None``."""
    return _active


@contextlib.contextmanager
def install_chaos(shim: ChaosShim) -> Iterator[ChaosShim]:
    """Install *shim* for the duration of the ``with`` block."""
    global _active
    previous = _active
    _active = shim
    try:
        yield shim
    finally:
        _active = previous


def tick(label: str) -> None:
    """Engine chunk-boundary hook (no-op unless a shim is installed)."""
    if _active is not None:
        _active.on_tick(label)


def io_fault_check(path: str) -> None:
    """IO commit hook for :func:`repro.io.atomic_write_text`."""
    if _active is not None:
        _active.maybe_fail_io(path)
