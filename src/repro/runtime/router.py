"""Graceful degradation: route an error-probability query to the best
engine the budget can afford.

The paper's Fig. 1 story -- exhaustive simulation explodes as
``2^(2N+1)`` while cheaper estimators stay flat -- becomes an
operational decision here.  :func:`plan_engine` walks the degradation
ladder

    exhaustive (one block)  ->  chunked exhaustive  ->  Monte-Carlo

using the closed-form case counts from :mod:`repro.simulation.cost_model`
and the :class:`~repro.runtime.budget.RunBudget`: a width beyond the
exhaustive limit, a case count over the budget's ``max_cases``, or a
deadline too short for the estimated enumeration throughput each push
the query one rung down instead of erroring or hanging.  Every
downgrade is recorded in the result's provenance manifest
(``degraded_from``), so a number produced by a fallback engine can
never masquerade as the exact oracle.

:func:`resilient_error_probability` executes the plan, threading the
budget (and optional checkpointing) into the chosen engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

from ..core.exceptions import AnalysisError
from ..obs.log import get_logger, log_event
from .budget import RunBudget

ENGINE_EXHAUSTIVE = "exhaustive"
ENGINE_CHUNKED_EXHAUSTIVE = "chunked-exhaustive"
ENGINE_MONTECARLO = "montecarlo"

#: Conservative enumeration throughput (cases/second) used to judge
#: whether a deadline can afford exhaustive enumeration at all.  Real
#: machines do better; underestimating only degrades earlier, which is
#: the safe direction.
CASES_PER_SECOND_ESTIMATE = 2_000_000

_logger = get_logger("runtime.router")


@dataclass(frozen=True)
class EngineDecision:
    """The routing outcome: which engine runs and why."""

    engine: str
    reason: str
    degraded_from: Optional[str] = None
    estimated_cases: Optional[int] = None
    samples: Optional[int] = None


def plan_engine(
    width: int,
    budget: Optional[RunBudget] = None,
    samples: Optional[int] = None,
) -> EngineDecision:
    """Choose the strongest engine the width and budget allow.

    Preference order: single-block exhaustive (exact, fits one
    enumeration block), chunked exhaustive (exact, bounded memory),
    Monte-Carlo (estimate, bounded everything).  *samples* is the
    Monte-Carlo fallback's sample count (clamped to the budget's
    ``max_samples``).
    """
    from ..simulation.exhaustive import BLOCK_CASES, MAX_EXHAUSTIVE_WIDTH
    from ..simulation.cost_model import exhaustive_case_count
    from ..simulation.montecarlo import PAPER_SAMPLE_COUNT

    if width < 1:
        raise AnalysisError(f"width must be >= 1, got {width}")
    mc_samples = samples if samples is not None else PAPER_SAMPLE_COUNT
    if budget is not None and budget.max_samples is not None:
        mc_samples = min(mc_samples, budget.max_samples)

    if width > MAX_EXHAUSTIVE_WIDTH:
        return EngineDecision(
            engine=ENGINE_MONTECARLO,
            reason=f"width {width} exceeds the exhaustive limit "
                   f"({MAX_EXHAUSTIVE_WIDTH})",
            degraded_from=ENGINE_CHUNKED_EXHAUSTIVE,
            samples=mc_samples,
        )
    cases = exhaustive_case_count(width)
    if budget is not None:
        if budget.max_cases is not None and cases > budget.max_cases:
            return EngineDecision(
                engine=ENGINE_MONTECARLO,
                reason=f"{cases} cases exceed the budget's max_cases "
                       f"({budget.max_cases})",
                degraded_from=ENGINE_CHUNKED_EXHAUSTIVE,
                estimated_cases=cases,
                samples=mc_samples,
            )
        if budget.deadline_s is not None:
            affordable = int(budget.deadline_s * CASES_PER_SECOND_ESTIMATE)
            if cases > affordable:
                return EngineDecision(
                    engine=ENGINE_MONTECARLO,
                    reason=f"{cases} cases would overrun the "
                           f"{budget.deadline_s:g}s deadline at "
                           f"~{CASES_PER_SECOND_ESTIMATE} cases/s",
                    degraded_from=ENGINE_CHUNKED_EXHAUSTIVE,
                    estimated_cases=cases,
                    samples=mc_samples,
                )
    if cases <= BLOCK_CASES:
        return EngineDecision(
            engine=ENGINE_EXHAUSTIVE,
            reason=f"{cases} cases fit a single enumeration block",
            estimated_cases=cases,
        )
    return EngineDecision(
        engine=ENGINE_CHUNKED_EXHAUSTIVE,
        reason=f"{cases} cases require chunked enumeration",
        degraded_from=ENGINE_EXHAUSTIVE,
        estimated_cases=cases,
    )


@dataclass(frozen=True)
class RoutedResult:
    """An engine result plus the routing decision that produced it."""

    decision: EngineDecision
    result: object

    @property
    def p_error(self) -> float:
        return self.result.p_error  # type: ignore[attr-defined]

    @property
    def truncated(self) -> bool:
        return bool(getattr(self.result, "truncated", False))


def resilient_error_probability(
    cell: object,
    width: Optional[int] = None,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: float = 0.5,
    budget: Optional[RunBudget] = None,
    samples: Optional[int] = None,
    seed: Optional[int] = 0,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[object] = None,
) -> RoutedResult:
    """Compute ``P(Error)`` with the strongest engine the budget affords.

    Routes per :func:`plan_engine`, threads the budget and optional
    checkpointing into the chosen engine, and stamps the downgrade (if
    any) into the result's provenance manifest.  Never hangs on an
    absurd width and never errors merely because the exact oracle is
    unaffordable -- the answer degrades to an estimate instead.
    """
    from ..core.recursive import resolve_chain
    from ..simulation.exhaustive import exhaustive_report
    from ..simulation.montecarlo import simulate_error_probability

    cells = resolve_chain(cell, width)
    n = len(cells)
    decision = plan_engine(n, budget, samples)
    log_event(_logger, "router.decision", engine=decision.engine,
              degraded_from=decision.degraded_from, width=n,
              reason=decision.reason)
    if decision.engine == ENGINE_MONTECARLO:
        result = simulate_error_probability(
            cells, None, p_a, p_b, p_cin,
            samples=decision.samples or 1, seed=seed, budget=budget,
            checkpoint_path=checkpoint_path, resume=resume,
            progress=progress,
        )
    else:
        result = exhaustive_report(
            cells, None, p_a, p_b, p_cin, budget=budget,
            checkpoint_path=checkpoint_path, resume=resume,
            progress=progress,
        )
    if decision.degraded_from is not None and result.manifest is not None:
        result = replace(
            result,
            manifest=replace(result.manifest,
                             degraded_from=decision.degraded_from),
        )
    return RoutedResult(decision=decision, result=result)
