"""Graceful degradation: route an error-probability query to the best
engine the budget can afford.

The paper's Fig. 1 story -- exhaustive simulation explodes as
``2^(2N+1)`` while cheaper estimators stay flat -- becomes an
operational decision here.  :func:`plan_engine` walks the degradation
ladder

    exhaustive (one block)  ->  chunked exhaustive  ->  Monte-Carlo

using the engines' own registry metadata
(:data:`repro.engine.registry.REGISTRY`: ``max_width``, ``block_cases``,
``cost_estimate``, ``ops_per_second``) and the
:class:`~repro.runtime.budget.RunBudget`: a width beyond the exhaustive
limit, a case count over the budget's ``max_cases``, or a deadline too
short for the estimated enumeration throughput each push the query one
rung down instead of erroring or hanging.  Every downgrade is recorded
in the result's provenance manifest (``degraded_from``), so a number
produced by a fallback engine can never masquerade as the exact oracle.

:func:`resilient_error_probability` is now a deprecated shim over
:func:`repro.engine.run` with ``simulate=True``, which executes the plan
and threads the budget (and optional checkpointing) into the chosen
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .._compat import warn_deprecated
from ..core.exceptions import AnalysisError
from ..obs import metrics as _metrics
from ..obs.log import get_logger, log_event
from .budget import RunBudget

ENGINE_EXHAUSTIVE = "exhaustive"
ENGINE_CHUNKED_EXHAUSTIVE = "chunked-exhaustive"
ENGINE_PARALLEL_EXHAUSTIVE = "parallel-exhaustive"
ENGINE_MONTECARLO = "montecarlo"

#: The error-magnitude ladder's rungs (see
#: :mod:`repro.engine.distribution`).
ENGINE_DISTRIBUTION_DP = "distribution-dp"
ENGINE_DISTRIBUTION_DP_TRUNCATED = "distribution-dp-truncated"
ENGINE_DISTRIBUTION_MC = "distribution-mc"

#: The windowed-block (adder zoo) ladder's rungs (see
#: :mod:`repro.engine.zoo`).
ENGINE_ZOO_DP = "zoo-dp"
ENGINE_ZOO_DP_TRUNCATED = "zoo-dp-truncated"
ENGINE_ZOO_MC = "zoo-mc"

#: Conservative enumeration throughput (cases/second) used to judge
#: whether a deadline can afford exhaustive enumeration at all.  Kept
#: for backwards compatibility; the ladder itself now reads the
#: exhaustive engine's registered ``ops_per_second`` (same default).
#: Real machines do better; underestimating only degrades earlier,
#: which is the safe direction.
CASES_PER_SECOND_ESTIMATE = 2_000_000

_logger = get_logger("runtime.router")


@dataclass(frozen=True)
class EngineDecision:
    """The routing outcome: which engine runs and why."""

    engine: str
    reason: str
    degraded_from: Optional[str] = None
    estimated_cases: Optional[int] = None
    samples: Optional[int] = None


def _record_decision(decision: EngineDecision) -> EngineDecision:
    """Telemetry: count routing outcomes (and degradations) per engine,
    so operators can see *why* latency changed -- e.g. deadline pressure
    pushing exact queries down to Monte-Carlo."""
    if _metrics.is_enabled():
        _metrics.inc(f"runtime.router.decision.{decision.engine}")
        if decision.degraded_from is not None:
            _metrics.inc("runtime.router.degraded")
    return decision


def plan_engine(
    width: int,
    budget: Optional[RunBudget] = None,
    samples: Optional[int] = None,
    jobs: Optional[int] = None,
) -> EngineDecision:
    """Choose the strongest engine the width and budget allow.

    Preference order: single-block exhaustive (exact, fits one
    enumeration block), chunked exhaustive (exact, bounded memory),
    sharded parallel exhaustive (exact, *jobs* worker processes),
    Monte-Carlo (estimate, bounded everything).  *samples* is the
    Monte-Carlo fallback's sample count (clamped to the budget's
    ``max_samples``).  *jobs* ( >= 2) adds the parallel-exhaustive
    rung: a deadline one core cannot meet is re-judged against the
    pool's aggregate throughput before the query degrades to an
    estimate -- exactness is worth one more rung.

    Thresholds come from the engine registry rather than hard-coded
    width constants: the exhaustive engine's ``max_width``,
    ``block_cases``, ``cost_estimate`` (its abstract cost *is* the case
    count) and ``ops_per_second``, and the Monte-Carlo engine's
    ``default_samples``.
    """
    from ..engine.backends import register_builtin_engines
    from ..engine.registry import REGISTRY

    register_builtin_engines()
    exhaustive = REGISTRY.get(ENGINE_EXHAUSTIVE)
    montecarlo = REGISTRY.get(ENGINE_MONTECARLO)

    if width < 1:
        raise AnalysisError(f"width must be >= 1, got {width}")
    mc_samples = (samples if samples is not None
                  else montecarlo.default_samples or 1)
    if budget is not None and budget.max_samples is not None:
        mc_samples = min(mc_samples, budget.max_samples)

    if exhaustive.max_width is not None and width > exhaustive.max_width:
        return _record_decision(EngineDecision(
            engine=ENGINE_MONTECARLO,
            reason=f"width {width} exceeds the exhaustive limit "
                   f"({exhaustive.max_width})",
            degraded_from=ENGINE_CHUNKED_EXHAUSTIVE,
            samples=mc_samples,
        ))
    cases = int(exhaustive.cost_estimate(width, None))
    cases_per_second = int(exhaustive.ops_per_second)
    if budget is not None:
        if budget.max_cases is not None and cases > budget.max_cases:
            return _record_decision(EngineDecision(
                engine=ENGINE_MONTECARLO,
                reason=f"{cases} cases exceed the budget's max_cases "
                       f"({budget.max_cases})",
                degraded_from=ENGINE_CHUNKED_EXHAUSTIVE,
                estimated_cases=cases,
                samples=mc_samples,
            ))
        if budget.deadline_s is not None:
            affordable = int(budget.deadline_s * cases_per_second)
            if cases > affordable:
                if jobs is not None and jobs >= 2 \
                        and cases <= affordable * jobs:
                    return _record_decision(EngineDecision(
                        engine=ENGINE_PARALLEL_EXHAUSTIVE,
                        reason=f"{cases} cases overrun the "
                               f"{budget.deadline_s:g}s deadline on one "
                               f"core but fit across {jobs} workers",
                        degraded_from=ENGINE_EXHAUSTIVE,
                        estimated_cases=cases,
                    ))
                return _record_decision(EngineDecision(
                    engine=ENGINE_MONTECARLO,
                    reason=f"{cases} cases would overrun the "
                           f"{budget.deadline_s:g}s deadline at "
                           f"~{cases_per_second} cases/s",
                    degraded_from=ENGINE_CHUNKED_EXHAUSTIVE,
                    estimated_cases=cases,
                    samples=mc_samples,
                ))
    if exhaustive.block_cases is None or cases <= exhaustive.block_cases:
        return _record_decision(EngineDecision(
            engine=ENGINE_EXHAUSTIVE,
            reason=f"{cases} cases fit a single enumeration block",
            estimated_cases=cases,
        ))
    return _record_decision(EngineDecision(
        engine=ENGINE_CHUNKED_EXHAUSTIVE,
        reason=f"{cases} cases require chunked enumeration",
        degraded_from=ENGINE_EXHAUSTIVE,
        estimated_cases=cases,
    ))


def plan_distribution_engine(
    request: object,
    budget: Optional[RunBudget] = None,
    samples: Optional[int] = None,
) -> EngineDecision:
    """Route an error-*magnitude* question down its own ladder.

    Preference order: exact full-support DP (``distribution-dp``),
    truncated-support DP (``distribution-dp-truncated``: deltas kept at
    :data:`~repro.engine.distribution.QUANT_BITS` significant bits --
    mass-preserving, so ER stays exact and MED/MSE drift is bounded),
    Monte-Carlo (``distribution-mc``: seeded sampling with
    Wilson/normal intervals).  Three kinds bend the ladder:

    * ``wce`` never degrades -- the interval DP is linear-time exact at
      any width, so the first rung always answers;
    * ``mred`` skips the truncated rung -- the joint ``(delta, exact)``
      DP has no mass-preserving truncation, so past the exact guard the
      answer comes from sampling;
    * a deadline too short even for the truncated DP's estimated cost
      drops straight to Monte-Carlo.

    Width limits and cost estimates come from the engines' registry
    metadata, exactly like :func:`plan_engine`.
    """
    from ..engine.backends import register_builtin_engines
    from ..engine.distribution import exact_width_limit
    from ..engine.registry import REGISTRY
    from ..engine.request import KIND_MRED, KIND_WCE

    register_builtin_engines()
    width = request.width  # type: ignore[attr-defined]
    kind = request.kind  # type: ignore[attr-defined]
    if width < 1:
        raise AnalysisError(f"width must be >= 1, got {width}")

    mc = REGISTRY.get(ENGINE_DISTRIBUTION_MC)
    mc_samples = (samples if samples is not None
                  else mc.default_samples or 1)
    if budget is not None and budget.max_samples is not None:
        mc_samples = min(mc_samples, budget.max_samples)

    def affordable(engine_name: str) -> bool:
        if budget is None or budget.deadline_s is None:
            return True
        info = REGISTRY.get(engine_name)
        cost = info.cost_estimate(width, None)
        return cost <= budget.deadline_s * info.ops_per_second

    limit = exact_width_limit(kind)
    if kind == KIND_WCE:
        # Exact at any width in O(width): nothing to degrade to.
        return _record_decision(EngineDecision(
            engine=ENGINE_DISTRIBUTION_DP,
            reason="the interval DP answers WCE exactly at any width",
        ))
    if (limit is None or width <= limit) \
            and affordable(ENGINE_DISTRIBUTION_DP):
        return _record_decision(EngineDecision(
            engine=ENGINE_DISTRIBUTION_DP,
            reason=f"width {width} fits the exact DP's support guard "
                   f"(limit {limit})",
        ))
    from ..engine.distribution import DIST_TRUNCATED_MAX_WIDTH

    if kind != KIND_MRED and width <= DIST_TRUNCATED_MAX_WIDTH \
            and affordable(ENGINE_DISTRIBUTION_DP_TRUNCATED):
        return _record_decision(EngineDecision(
            engine=ENGINE_DISTRIBUTION_DP_TRUNCATED,
            reason=f"width {width} exceeds the exact DP's support guard "
                   f"({limit}); truncated-support DP keeps ER exact "
                   "with bounded MED/MSE drift",
            degraded_from=ENGINE_DISTRIBUTION_DP,
        ))
    why = ("the joint (delta, exact) DP has no mass-preserving "
           "truncation" if kind == KIND_MRED
           else "the DP rungs are unaffordable past the truncated "
                f"guard ({DIST_TRUNCATED_MAX_WIDTH}) or deadline")
    return _record_decision(EngineDecision(
        engine=ENGINE_DISTRIBUTION_MC,
        reason=f"width {width} exceeds the exact limit ({limit}) and "
               f"{why}; sampling with interval bounds",
        degraded_from=(ENGINE_DISTRIBUTION_DP if kind == KIND_MRED
                       else ENGINE_DISTRIBUTION_DP_TRUNCATED),
        samples=mc_samples,
    ))


def plan_zoo_engine(
    request: object,
    budget: Optional[RunBudget] = None,
    samples: Optional[int] = None,
) -> EngineDecision:
    """Route a windowed-block (adder zoo) question down its ladder.

    The block twin of :func:`plan_distribution_engine`, over the
    ``zoo-*`` engines of :mod:`repro.engine.zoo`:

    * ``chain`` (P(error)) and ``wce`` never degrade -- the
      monotone-carry-cut ER DP and the interval DP are linear-time
      exact at any width;
    * ``mred`` degrades straight from the exact joint DP to sampling
      (no mass-preserving joint truncation);
    * ``med``/``error_distribution`` walk exact DP -> truncated DP ->
      Monte-Carlo exactly like the distribution ladder.
    """
    from ..engine.backends import register_builtin_engines
    from ..engine.registry import REGISTRY
    from ..engine.request import KIND_CHAIN, KIND_MRED, KIND_WCE
    from ..engine.zoo import ZOO_TRUNCATED_MAX_WIDTH, zoo_exact_width_limit

    register_builtin_engines()
    width = request.width  # type: ignore[attr-defined]
    kind = request.kind  # type: ignore[attr-defined]
    if width < 1:
        raise AnalysisError(f"width must be >= 1, got {width}")

    mc = REGISTRY.get(ENGINE_ZOO_MC)
    mc_samples = (samples if samples is not None
                  else mc.default_samples or 1)
    if budget is not None and budget.max_samples is not None:
        mc_samples = min(mc_samples, budget.max_samples)

    def affordable(engine_name: str) -> bool:
        if budget is None or budget.deadline_s is None:
            return True
        info = REGISTRY.get(engine_name)
        cost = info.cost_estimate(width, None)
        return cost <= budget.deadline_s * info.ops_per_second

    limit = zoo_exact_width_limit(kind)
    if kind in (KIND_CHAIN, KIND_WCE):
        # Linear-time exact DPs at any width: nothing to degrade to.
        return _record_decision(EngineDecision(
            engine=ENGINE_ZOO_DP,
            reason="the cut DP answers ER/WCE exactly at any width",
        ))
    if (limit is None or width <= limit) and affordable(ENGINE_ZOO_DP):
        return _record_decision(EngineDecision(
            engine=ENGINE_ZOO_DP,
            reason=f"width {width} fits the exact cut DP's support "
                   f"guard (limit {limit})",
        ))
    if kind != KIND_MRED and width <= ZOO_TRUNCATED_MAX_WIDTH \
            and affordable(ENGINE_ZOO_DP_TRUNCATED):
        return _record_decision(EngineDecision(
            engine=ENGINE_ZOO_DP_TRUNCATED,
            reason=f"width {width} exceeds the exact cut DP's support "
                   f"guard ({limit}); truncated-support DP keeps ER "
                   "exact with bounded MED/MSE drift",
            degraded_from=ENGINE_ZOO_DP,
        ))
    why = ("the joint (delta, exact) DP has no mass-preserving "
           "truncation" if kind == KIND_MRED
           else "the DP rungs are unaffordable past the truncated "
                f"guard ({ZOO_TRUNCATED_MAX_WIDTH}) or deadline")
    return _record_decision(EngineDecision(
        engine=ENGINE_ZOO_MC,
        reason=f"width {width} exceeds the exact limit ({limit}) and "
               f"{why}; sampling with interval bounds",
        degraded_from=(ENGINE_ZOO_DP if kind == KIND_MRED
                       else ENGINE_ZOO_DP_TRUNCATED),
        samples=mc_samples,
    ))


@dataclass(frozen=True)
class RoutedResult:
    """An engine result plus the routing decision that produced it."""

    decision: EngineDecision
    result: object

    @property
    def p_error(self) -> float:
        return self.result.p_error  # type: ignore[attr-defined]

    @property
    def truncated(self) -> bool:
        return bool(getattr(self.result, "truncated", False))


def resilient_error_probability(
    cell: object,
    width: Optional[int] = None,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: float = 0.5,
    budget: Optional[RunBudget] = None,
    samples: Optional[int] = None,
    seed: Optional[int] = 0,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[object] = None,
) -> RoutedResult:
    """Compute ``P(Error)`` with the strongest engine the budget affords.

    .. deprecated::
        Call ``repro.engine.run(cell, width, ..., simulate=True)``
        instead; the routed decision lands on the result as
        ``engine`` / ``reason`` / ``degraded_from`` and the
        backend-native report as ``raw``.

    Routes per :func:`plan_engine`, threads the budget and optional
    checkpointing into the chosen engine, and stamps the downgrade (if
    any) into the result's provenance manifest.  Never hangs on an
    absurd width and never errors merely because the exact oracle is
    unaffordable -- the answer degrades to an estimate instead.
    """
    warn_deprecated("runtime.router.resilient_error_probability",
                    "repro.engine.run(..., simulate=True)")
    from .. import engine as _engine

    request = _engine.AnalysisRequest.chain(cell, width, p_a, p_b, p_cin)
    decision = plan_engine(request.width, budget, samples)
    log_event(_logger, "router.decision", engine=decision.engine,
              degraded_from=decision.degraded_from, width=request.width,
              reason=decision.reason)
    answer = _engine.run(
        request=request, simulate=True, budget=budget, samples=samples,
        seed=seed, checkpoint_path=checkpoint_path, resume=resume,
        progress=progress,
    )
    return RoutedResult(decision=decision, result=answer.raw)
