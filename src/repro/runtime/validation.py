"""Self-validation guard: cross-check analytical ``P(Error)`` against a
budgeted Monte-Carlo run.

The paper's recursion (Algorithm 1) is exact for carry-chain errors but
an *upper bound* when a chain can mask a stage error in the final sum
(see :mod:`repro.core.masking`).  This module turns that relationship
into an opt-in runtime guard: :func:`validate_against_simulation` runs a
small budgeted simulation, builds a Wilson score interval around the
estimate, and raises a structured
:class:`~repro.core.exceptions.ValidationError` when the analytical
number falls outside it -- two-sided for exact chains, one-sided
(analytical below the interval) for masking chains where the bound is
allowed to sit above the simulation.

A ``z`` of 4.0 (~1 in 16k false alarms per check) keeps the guard quiet
on healthy code while still catching real disagreements within a couple
of hundred thousand samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..core.exceptions import ValidationError
from ..obs.log import get_logger, log_event
from .budget import RunBudget

#: Default sample count for the guard: enough for ~1e-3 resolution
#: without the cost of the paper's full million-sample runs.
VALIDATION_SAMPLE_COUNT = 200_000

_logger = get_logger("runtime.validation")


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of an analytical-vs-simulation cross-check."""

    analytical: float
    estimate: float
    interval: Tuple[float, float]
    samples: int
    exact: bool
    z: float
    truncated: bool = False

    @property
    def consistent(self) -> bool:
        lo, hi = self.interval
        if self.exact:
            return lo <= self.analytical <= hi
        # For masking chains the recursion upper-bounds the truth, so
        # only "analytical below the interval" is a contradiction.
        return self.analytical >= lo


def validate_against_simulation(
    cell: object,
    width: Optional[int] = None,
    p_a: object = 0.5,
    p_b: object = 0.5,
    p_cin: float = 0.5,
    samples: int = VALIDATION_SAMPLE_COUNT,
    seed: Optional[int] = 0,
    z: float = 4.0,
    budget: Optional[RunBudget] = None,
    analytical: Optional[float] = None,
) -> ValidationReport:
    """Cross-check the recursion against a budgeted Monte-Carlo run.

    Computes the analytical ``P(Error)`` (unless *analytical* is
    supplied, e.g. a cached value), simulates *samples* random
    additions under the same probabilities, and compares via the Wilson
    score interval at quantile *z*.  Returns a
    :class:`ValidationReport` on agreement; raises
    :class:`~repro.core.exceptions.ValidationError` carrying the
    analytical value, the estimate, and the interval otherwise.

    A *budget* bounds the simulation; a truncated run validates against
    whatever samples it managed to draw (wider interval, weaker check),
    so the guard itself can never blow a deadline.
    """
    from ..core.masking import chain_is_exact
    from ..core.recursive import resolve_chain
    from ..simulation.montecarlo import simulate_error_probability

    cells = resolve_chain(cell, width)
    if analytical is None:
        from .. import engine as _engine

        analytical = float(
            _engine.run(cells, None, p_a, p_b, p_cin).p_error
        )
    exact = chain_is_exact(cells)
    mc = simulate_error_probability(
        cells, None, p_a, p_b, p_cin,
        samples=samples, seed=seed, budget=budget,
    )
    interval = mc.wilson_interval(z)
    report = ValidationReport(
        analytical=analytical, estimate=mc.p_error, interval=interval,
        samples=mc.samples, exact=exact, z=z, truncated=mc.truncated,
    )
    log_event(_logger, "validation.checked", analytical=analytical,
              estimate=mc.p_error, lo=interval[0], hi=interval[1],
              samples=mc.samples, exact=exact,
              consistent=report.consistent)
    if not report.consistent:
        lo, hi = interval
        relation = "outside" if exact else "below"
        raise ValidationError(
            f"analytical P(error)={analytical:.6g} is {relation} the "
            f"simulation's Wilson interval [{lo:.6g}, {hi:.6g}] "
            f"(estimate {mc.p_error:.6g} from {mc.samples} samples, "
            f"z={z:g})",
            analytical=analytical,
            estimate=mc.p_error,
            interval=interval,
        )
    return report
