"""Circuit breaker: fail fast while a dependency is demonstrably sick.

A dependency that answers every call with an exception (a wedged engine
pool, a dead disk behind the result cache) should not cost every caller
a full dispatch + failure round-trip.  :class:`CircuitBreaker`
implements the classic three-state machine around any call site:

* **closed** -- normal operation.  Failures are counted; *consecutive*
  failures reaching ``failure_threshold`` trip the breaker open.  Any
  success resets the streak.
* **open** -- every call is refused instantly with
  :class:`BreakerOpenError` carrying a positive, finite
  ``retry_after_s`` (the time until the next probe window).  After
  ``reset_timeout_s`` the breaker moves to half-open.
* **half-open** -- up to ``half_open_max`` probe calls are let through.
  The first recorded success closes the breaker; any failure snaps it
  back open for another full ``reset_timeout_s``.

The breaker is thread-safe, clock-injectable (tests drive it with a
virtual clock -- no sleeps), and emits obs metrics under a caller-chosen
prefix: ``<prefix>.state`` gauge (0 closed, 1 half-open, 2 open) and the
``<prefix>.{opened,closed,rejected,probes,failures}`` counters.

Usage around a dispatch::

    breaker = CircuitBreaker(failure_threshold=5, reset_timeout_s=5.0)
    breaker.check()              # raises BreakerOpenError while open
    try:
        result = dispatch(...)
    except Exception:
        breaker.record_failure()
        raise
    breaker.record_success()
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..core.exceptions import ReproError
from ..obs import metrics as _metrics

#: Stable state names (also the order of the state gauge values).
STATE_CLOSED = "closed"
STATE_HALF_OPEN = "half_open"
STATE_OPEN = "open"

_STATE_GAUGE = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}

#: Floor applied to every reported ``retry_after_s`` -- a Retry-After of
#: zero (or less) tells clients to hammer the service, the opposite of
#: what an open breaker wants.
MIN_RETRY_AFTER_S = 0.001


class BreakerOpenError(ReproError):
    """The circuit breaker is open; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float):
        retry_after_s = max(float(retry_after_s), MIN_RETRY_AFTER_S)
        super().__init__(
            "circuit breaker is open; "
            f"retry after {retry_after_s:.3f}s"
        )
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    """Three-state (closed / open / half-open) failure isolator.

    *failure_threshold* consecutive failures open the breaker;
    ``failure_threshold=0`` disables it entirely (every ``check`` and
    ``allow`` passes and nothing is recorded).  *reset_timeout_s* is
    the open→half-open cool-down; *half_open_max* bounds concurrent
    probes while half-open.  *clock* defaults to ``time.monotonic``.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 5.0,
        half_open_max: int = 1,
        metric_prefix: str = "breaker",
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 0:
            raise ValueError(
                f"failure_threshold must be >= 0, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}"
            )
        if half_open_max < 1:
            raise ValueError(
                f"half_open_max must be >= 1, got {half_open_max}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_max = int(half_open_max)
        self.metric_prefix = metric_prefix
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._opened_total = 0

    # -- introspection -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        """``False`` when ``failure_threshold == 0`` (breaker disabled)."""
        return self.failure_threshold > 0

    @property
    def state(self) -> str:
        """Current state name, resolving an elapsed open cool-down."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    @property
    def opened_total(self) -> int:
        """How many times this breaker has tripped open."""
        return self._opened_total

    # -- gate --------------------------------------------------------------

    def check(self) -> None:
        """Raise :class:`BreakerOpenError` unless a call may proceed."""
        allowed, retry_after = self.allow()
        if not allowed:
            self._count("rejected")
            raise BreakerOpenError(retry_after)

    def allow(self) -> "tuple[bool, float]":
        """``(allowed, retry_after_s)`` without raising.

        While half-open, an allowance consumes one probe slot; callers
        that were allowed **must** eventually call
        :meth:`record_success` or :meth:`record_failure`.
        """
        if not self.enabled:
            return True, 0.0
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == STATE_CLOSED:
                return True, 0.0
            if self._state == STATE_HALF_OPEN:
                if self._probes_in_flight < self.half_open_max:
                    self._probes_in_flight += 1
                    probe = True
                else:
                    probe = False
            else:
                probe = False
            if probe:
                self._count_locked("probes")
                return True, 0.0
            remaining = (self._opened_at + self.reset_timeout_s
                         - self._clock())
            return False, max(remaining, MIN_RETRY_AFTER_S)

    # -- outcome recording -------------------------------------------------

    def record_success(self) -> None:
        """One dispatch succeeded: close from half-open, reset the streak."""
        if not self.enabled:
            return
        with self._lock:
            self._maybe_half_open_locked()
            self._consecutive_failures = 0
            if self._probes_in_flight:
                self._probes_in_flight -= 1
            if self._state != STATE_CLOSED:
                self._transition_locked(STATE_CLOSED)
                self._count_locked("closed")

    def record_failure(self) -> None:
        """One dispatch failed: trip open past the threshold / from probe."""
        if not self.enabled:
            return
        with self._lock:
            self._maybe_half_open_locked()
            self._count_locked("failures")
            if self._probes_in_flight:
                self._probes_in_flight -= 1
            if self._state == STATE_HALF_OPEN:
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (self._state == STATE_CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._trip_locked()

    # -- internals ---------------------------------------------------------

    def _maybe_half_open_locked(self) -> None:
        if (self._state == STATE_OPEN
                and self._clock() - self._opened_at >= self.reset_timeout_s):
            self._transition_locked(STATE_HALF_OPEN)
            self._probes_in_flight = 0

    def _trip_locked(self) -> None:
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._opened_total += 1
        self._transition_locked(STATE_OPEN)
        self._count_locked("opened")

    def _transition_locked(self, state: str) -> None:
        self._state = state
        if _metrics.is_enabled():
            _metrics.set_gauge(f"{self.metric_prefix}.state",
                               _STATE_GAUGE[state])

    def _count_locked(self, event: str) -> None:
        if _metrics.is_enabled():
            _metrics.inc(f"{self.metric_prefix}.{event}")

    def _count(self, event: str) -> None:
        with self._lock:
            self._count_locked(event)
