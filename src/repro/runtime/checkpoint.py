"""Crash-safe checkpoints for resumable engine runs.

A checkpoint is a small JSON document (``sealpaa-checkpoint-v1``)
written atomically (:func:`repro.io.atomic_write_text`) at chunk
boundaries of a long-running engine:

* Monte-Carlo: samples done, error count, and the full NumPy
  bit-generator state, so a resumed run draws the *identical* random
  stream and finishes bit-identical to an uninterrupted one;
* chunked exhaustive enumeration: the block cursor (next ``a``-axis
  start) plus accumulated error mass / cases visited;
* brute-force hybrid search: the visited-config frontier (number of
  assignments enumerated, best so far).

Every checkpoint carries a configuration *fingerprint* -- a SHA-256 of
the run's identity (engine kind, cells, probabilities, seed, batch
geometry).  :func:`load_checkpoint` refuses a fingerprint mismatch with
:class:`~repro.core.exceptions.CheckpointError`, so a stale file from a
different run can never be silently mixed into a resumed one.

Checkpoint *writes* are best-effort by design: a run that cannot
checkpoint (full disk, dead NFS) logs a warning and keeps computing --
losing resumability must not lose the run itself.  Loads, in contrast,
fail loudly.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from ..core.exceptions import CheckpointError
from ..obs import metrics as _metrics
from ..obs.log import get_logger, log_event
from ..obs.tracing import trace_span

CHECKPOINT_FORMAT = "sealpaa-checkpoint-v1"

_logger = get_logger("runtime.checkpoint")


def config_fingerprint(**identity: object) -> str:
    """SHA-256 over a run's identity fields (canonical JSON)."""
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One saved engine state, safe to reload after any crash."""

    kind: str
    fingerprint: str
    payload: Mapping[str, object] = field(default_factory=dict)
    sequence: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": CHECKPOINT_FORMAT,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "sequence": self.sequence,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Checkpoint":
        if data.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"expected a {CHECKPOINT_FORMAT!r} document, got "
                f"{data.get('format')!r}"
            )
        return cls(
            kind=str(data.get("kind", "")),
            fingerprint=str(data.get("fingerprint", "")),
            sequence=int(data.get("sequence", 0)),  # type: ignore[arg-type]
            payload=dict(data.get("payload", {})),  # type: ignore[arg-type]
        )


def save_checkpoint(
    path: Union[str, Path],
    checkpoint: Checkpoint,
    best_effort: bool = True,
) -> bool:
    """Atomically persist *checkpoint*; returns True on success.

    With ``best_effort=True`` (the engine default) an ``OSError`` that
    survives the atomic writer's bounded retries is logged and swallowed
    -- the computation continues, it just loses resumability from this
    point.  Pass ``best_effort=False`` to propagate the failure.
    """
    from ..io import atomic_write_text

    text = json.dumps(checkpoint.as_dict(), indent=2, default=_jsonify) + "\n"
    try:
        with trace_span("runtime.checkpoint.write",
                        kind=checkpoint.kind, sequence=checkpoint.sequence):
            atomic_write_text(path, text)
    except OSError as exc:
        if not best_effort:
            raise
        if _metrics.is_enabled():
            _metrics.get_registry().counter(
                "runtime.checkpoint.write_failures"
            ).add(1)
        log_event(_logger, "checkpoint.write_failed", level=logging.WARNING,
                  path=str(path), error=str(exc))
        return False
    if _metrics.is_enabled():
        _metrics.get_registry().counter("runtime.checkpoint.writes").add(1)
    return True


def load_checkpoint(
    path: Union[str, Path],
    expect_kind: Optional[str] = None,
    expect_fingerprint: Optional[str] = None,
) -> Checkpoint:
    """Read and verify a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` when the file is unreadable, corrupt
    (the atomic writer makes this impossible for *our* writes, but disks
    and humans exist), of the wrong engine kind, or fingerprinted for a
    different run configuration.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is corrupt (invalid JSON: {exc})"
        ) from exc
    if not isinstance(data, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    checkpoint = Checkpoint.from_dict(data)
    if expect_kind is not None and checkpoint.kind != expect_kind:
        raise CheckpointError(
            f"checkpoint {path} is for engine {checkpoint.kind!r}, "
            f"expected {expect_kind!r}"
        )
    if (
        expect_fingerprint is not None
        and checkpoint.fingerprint != expect_fingerprint
    ):
        raise CheckpointError(
            f"checkpoint {path} was written by a different run "
            f"configuration (fingerprint {checkpoint.fingerprint[:12]}... "
            f"!= expected {expect_fingerprint[:12]}...)"
        )
    return checkpoint


def _jsonify(value: object) -> object:
    """JSON fallback for NumPy scalars hiding in RNG state dicts."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


# -- NumPy RNG state (de)serialisation ----------------------------------------

def rng_state_to_jsonable(state: Mapping[str, object]) -> Dict[str, object]:
    """Make ``Generator.bit_generator.state`` JSON-round-trippable.

    PCG64 state is plain Python ints already; other bit generators may
    carry NumPy arrays/scalars, which are converted to lists/ints with a
    type tag so :func:`rng_state_from_jsonable` can restore them.
    """
    def convert(value: object) -> object:
        if isinstance(value, dict):
            return {k: convert(v) for k, v in value.items()}
        tolist = getattr(value, "tolist", None)
        if callable(tolist) and not isinstance(value, (int, float, str, bool)):
            return {"__ndarray__": tolist(), "dtype": str(value.dtype)} \
                if hasattr(value, "dtype") else tolist()
        return value

    return convert(dict(state))  # type: ignore[return-value]


def rng_state_from_jsonable(data: Mapping[str, object]) -> Dict[str, object]:
    """Inverse of :func:`rng_state_to_jsonable`."""
    import numpy as np

    def restore(value: object) -> object:
        if isinstance(value, dict):
            if "__ndarray__" in value:
                return np.array(value["__ndarray__"],
                                dtype=value.get("dtype"))
            return {k: restore(v) for k, v in value.items()}
        return value

    return restore(dict(data))  # type: ignore[return-value]
