"""Resilient execution layer for long-running engines.

Everything a multi-hour run needs to survive the real world:

* :mod:`~repro.runtime.budget` -- declarative :class:`RunBudget` limits
  (deadline, sample/case/config caps, memory hint) metered cooperatively
  at chunk boundaries, so engines stop cleanly with well-formed partial
  results instead of being killed;
* :mod:`~repro.runtime.checkpoint` -- crash-safe, atomically written
  checkpoints with configuration fingerprints; Monte-Carlo resume is
  bit-identical (RNG bit-generator state travels with the counts);
* :mod:`~repro.runtime.router` -- graceful degradation from exhaustive
  enumeration to chunked enumeration to Monte-Carlo when the budget
  cannot afford the exact oracle, recorded in provenance;
* :mod:`~repro.runtime.validation` -- opt-in cross-check of the
  analytical recursion against a budgeted simulation (Wilson score
  interval), raising :class:`~repro.core.exceptions.ValidationError`
  on disagreement;
* :mod:`~repro.runtime.breaker` -- a three-state circuit breaker
  (closed / open / half-open) the serving layer wraps around engine
  dispatch so a demonstrably sick dependency fails fast instead of
  costing every caller a full timeout;
* :mod:`~repro.runtime.chaos` -- a fault-injection shim (virtual clock,
  injected IO failures, simulated interrupts, and serve-facing engine /
  cache faults) that the resilience tests drive; inert unless installed.

Import order matters here: the engines import :mod:`budget`,
:mod:`chaos` and :mod:`checkpoint` at module level, so those three must
initialise before :mod:`router` / :mod:`validation` (which reach back
into the engines lazily, inside functions).
"""

from .budget import (
    STOP_DEADLINE,
    STOP_MAX_CASES,
    STOP_MAX_CONFIGS,
    STOP_MAX_SAMPLES,
    BudgetMeter,
    RunBudget,
    make_meter,
)
from .breaker import BreakerOpenError, CircuitBreaker
from .chaos import ChaosShim, get_chaos, install_chaos
from .checkpoint import (
    CHECKPOINT_FORMAT,
    Checkpoint,
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from .router import (
    CASES_PER_SECOND_ESTIMATE,
    ENGINE_CHUNKED_EXHAUSTIVE,
    ENGINE_EXHAUSTIVE,
    ENGINE_MONTECARLO,
    EngineDecision,
    RoutedResult,
    plan_engine,
    resilient_error_probability,
)
from .validation import (
    VALIDATION_SAMPLE_COUNT,
    ValidationReport,
    validate_against_simulation,
)

__all__ = [
    "RunBudget",
    "BudgetMeter",
    "make_meter",
    "STOP_DEADLINE",
    "STOP_MAX_SAMPLES",
    "STOP_MAX_CASES",
    "STOP_MAX_CONFIGS",
    "Checkpoint",
    "CHECKPOINT_FORMAT",
    "config_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
    "EngineDecision",
    "RoutedResult",
    "plan_engine",
    "resilient_error_probability",
    "ENGINE_EXHAUSTIVE",
    "ENGINE_CHUNKED_EXHAUSTIVE",
    "ENGINE_MONTECARLO",
    "CASES_PER_SECOND_ESTIMATE",
    "ValidationReport",
    "validate_against_simulation",
    "VALIDATION_SAMPLE_COUNT",
    "ChaosShim",
    "install_chaos",
    "get_chaos",
    "CircuitBreaker",
    "BreakerOpenError",
]
