#!/usr/bin/env python3
"""Regenerate the paper's tables into a single REPORT.md.

The benchmark suite (pytest benchmarks/ --benchmark-only) is the full
reproduction with assertions and timing; this script is the quick,
human-facing version: every table the library can produce analytically,
written to one markdown file in a few seconds.

Usage:  python scripts/make_report.py [output.md]
"""

from __future__ import annotations

import sys
import time

from repro import __version__
from repro.baselines.operation_counter import table3_row
from repro.core.adders import CELL_CHARACTERISTICS, PAPER_LPAAS
from repro.core.matrices import derive_matrices
from repro.core.recursive import error_probability
from repro.core.stages import format_trace_table, trace_chain
from repro.core.symbolic import symbolic_error_probability
from repro.core.truth_table import ACCURATE
from repro.core.vectorized import error_by_width
from repro.gear.variants import variant_comparison


def _md_table(headers, rows, digits=5):
    def fmt(value):
        if isinstance(value, float):
            return f"{value:.{digits}f}".rstrip("0").rstrip(".") or "0"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "REPORT.md"
    start = time.perf_counter()
    sections = []

    sections.append(
        f"# Reproduction report (sealpaa-py {__version__})\n\n"
        "All values below are produced analytically by the library; see "
        "`pytest benchmarks/ --benchmark-only` for the asserted, timed "
        "version including the simulation columns.\n"
    )

    # Table 1
    rows = []
    for idx in range(8):
        a, b, cin = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
        row = [f"{a} {b} {cin}", "{} {}".format(*ACCURATE.rows[idx])]
        for cell in PAPER_LPAAS:
            s, c = cell.rows[idx]
            mark = "*" if (s, c) != ACCURATE.rows[idx] else ""
            row.append(f"{s} {c}{mark}")
        rows.append(row)
    sections.append("## Table 1 — truth tables (* = error case)\n\n" + _md_table(
        ["A B Cin", "AccuFA", *[c.name for c in PAPER_LPAAS]], rows))

    # Table 2
    rows = [
        [name, char.error_cases,
         "-" if char.power_nw is None else char.power_nw,
         "-" if char.area_ge is None else char.area_ge]
        for name, char in CELL_CHARACTERISTICS.items()
    ]
    sections.append("\n## Table 2 — published cell characteristics\n\n" +
                    _md_table(["Cell", "Error cases", "Power nW", "Area GE"],
                              rows, digits=2))

    # Table 3
    rows = [[k, *table3_row(k).values()] for k in (4, 8, 12, 16, 20, 24, 28, 32)]
    sections.append("\n## Table 3 — inclusion-exclusion cost (corrected "
                    "closed forms)\n\n" + _md_table(
                        ["Stages", "Terms", "Mults", "Adds", "Memory"], rows))

    # Table 4
    trace = trace_chain("LPAA 1", width=4, p_a=[0.9, 0.5, 0.4, 0.8],
                        p_b=[0.8, 0.7, 0.6, 0.9], p_cin=0.5)
    sections.append("\n## Table 4 — worked example\n\n```\n"
                    + format_trace_table(trace) + "\n```")

    # Table 5
    rows = [
        [cell.name,
         str(list(derive_matrices(cell).m)),
         str(list(derive_matrices(cell).k)),
         str(list(derive_matrices(cell).l))]
        for cell in PAPER_LPAAS
    ]
    sections.append("\n## Table 5 — M/K/L matrices\n\n" +
                    _md_table(["Cell", "M", "K", "L"], rows))

    # Table 7 (analytical)
    rows = []
    for width in (2, 4, 6, 8, 10, 12):
        rows.append([width, *[
            float(error_probability(cell, width, 0.1, 0.1, 0.1))
            for cell in PAPER_LPAAS
        ]])
    sections.append("\n## Table 7 — analytical P(E) at p = 0.1\n\n" +
                    _md_table(["N", *[c.name for c in PAPER_LPAAS]], rows))

    # Fig. 5 series
    for label, p in (("(a) p = 0.5", 0.5), ("(b) p = 0.1", 0.1),
                     ("(c) p = 0.9", 0.9)):
        widths = [1, 2, 4, 8, 12, 16]
        rows = []
        for cell in PAPER_LPAAS:
            curve = error_by_width(cell, 16, p, p_cin=p)
            rows.append([cell.name, *[float(curve[n - 1]) for n in widths]])
        sections.append(f"\n## Fig. 5{label} — P(Error) vs width\n\n" +
                        _md_table(["Cell", *[f"N={n}" for n in widths]],
                                  rows, digits=4))

    # Closed forms
    rows = [
        [cell.name, f"`{symbolic_error_probability(cell, 2).to_string()}`"]
        for cell in PAPER_LPAAS
    ]
    sections.append("\n## Generic error equations (N = 2, uniform p)\n\n" +
                    _md_table(["Cell", "P(Error)(p)"], rows))

    # LLAA variants
    rows = [
        [r["name"], r["config"], r["delay"], r["p_error"]]
        for r in variant_comparison(12)
    ]
    sections.append("\n## Named LLAA variants at N = 12 (exact)\n\n" +
                    _md_table(["Adder", "GeAr form", "Delay", "P(Error)"],
                              rows))

    elapsed = time.perf_counter() - start
    sections.append(f"\n---\ngenerated in {elapsed:.2f} s\n")

    with open(out_path, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {out_path} in {elapsed:.2f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
