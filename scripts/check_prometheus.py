"""Lint a Prometheus text exposition (the `/metrics` scrape) from CI.

Reads the exposition from a file, stdin (``-``) or straight off a
running server (``--url``), runs :func:`repro.obs.prometheus.
lint_exposition` over it, and exits non-zero listing every problem:
bad metric names, samples without a preceding ``# TYPE``, non-cumulative
or non-ascending histogram buckets, a missing ``+Inf`` bucket,
unparseable sample values, a missing trailing newline.

CI usage (the serve-smoke job)::

    curl -sf -H 'Accept: text/plain' http://127.0.0.1:18080/metrics \
        | python scripts/check_prometheus.py -
"""

from __future__ import annotations

import argparse
import os
import sys
import urllib.request
from typing import Optional, Sequence

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.obs.prometheus import lint_exposition  # noqa: E402


def _read_text(args: argparse.Namespace) -> str:
    if args.url:
        request = urllib.request.Request(
            args.url, headers={"Accept": "text/plain"}
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.read().decode("utf-8")
    if args.file == "-":
        return sys.stdin.read()
    with open(args.file) as handle:
        return handle.read()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="lint a Prometheus text exposition"
    )
    parser.add_argument("file", nargs="?", default="-",
                        help="exposition file, or '-' for stdin (default)")
    parser.add_argument("--url", default=None,
                        help="scrape this /metrics URL instead of a file")
    args = parser.parse_args(argv)

    text = _read_text(args)
    if not text.strip():
        print("empty exposition (is the server serving Prometheus text?)",
              file=sys.stderr)
        return 1
    problems = lint_exposition(text)
    samples = sum(
        1 for line in text.splitlines()
        if line and not line.startswith("#")
    )
    if problems:
        for problem in problems:
            print(f"exposition: {problem}", file=sys.stderr)
        print(f"{len(problems)} problem(s) in {samples} samples",
              file=sys.stderr)
        return 1
    print(f"exposition ok: {samples} samples")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
