"""Pinned performance trajectory: write and compare bench headline numbers.

The pytest-benchmark timings are great for local A/B runs but drift with
every runner; what the repo pins instead is a small JSON document of
*headline* metrics per benchmark (requests/second, speedup factors,
wall seconds) written by the benches themselves.  Committed baselines
(``BENCH_serve.json``, ``BENCH_parallel.json`` at the repo root) plus
this module's comparison helper make a >20% regression visible in
review instead of vanishing into CI noise.

Document schema (``sealpaa-bench-v1``)::

    {
      "format": "sealpaa-bench-v1",
      "benchmark": "serve_throughput",
      "metrics": [
        {"metric": "batched_rps", "value": 812.4, "unit": "req/s",
         "higher_is_better": true},
        ...
      ],
      "run": {"python": "3.11.7", "platform": "linux",
              "cpu_count": 8, "created_at": "2026-08-08T12:00:00Z"}
    }

``higher_is_better`` makes the comparison direction-aware: a throughput
drop and a latency rise are both regressions.

Library use (the benches)::

    from bench_trajectory import metric, write_trajectory
    write_trajectory("BENCH_serve.json", "serve_throughput", [
        metric("batched_rps", rps, unit="req/s"),
    ])

CLI use (review / CI)::

    python scripts/bench_trajectory.py show BENCH_serve.json
    python scripts/bench_trajectory.py compare BENCH_serve.json new.json

``compare`` exits 1 when any shared metric regressed by more than the
threshold (default 20%).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Mapping, Optional, Sequence

BENCH_FORMAT = "sealpaa-bench-v1"

#: Relative change beyond which ``compare`` flags a regression.  20%
#: rides well above runner-to-runner noise for these macro benches while
#: still catching a lost vectorisation or an accidental O(n^2).
DEFAULT_THRESHOLD = 0.20


def metric(
    name: str,
    value: float,
    unit: str = "",
    higher_is_better: bool = True,
) -> Dict[str, object]:
    """One trajectory entry; benches build their list out of these."""
    if not name:
        raise ValueError("metric name must be non-empty")
    return {
        "metric": str(name),
        "value": float(value),
        "unit": str(unit),
        "higher_is_better": bool(higher_is_better),
    }


def run_metadata() -> Dict[str, object]:
    """Provenance for a trajectory document: enough to judge whether two
    documents are comparable at all (a 1-core container vs an 8-core
    workstation is a hardware delta, not a code regression)."""
    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def write_trajectory(
    path: str,
    benchmark: str,
    metrics: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """Write a ``sealpaa-bench-v1`` document to *path* and return it."""
    names = [m["metric"] for m in metrics]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate metric names: {names}")
    doc: Dict[str, object] = {
        "format": BENCH_FORMAT,
        "benchmark": str(benchmark),
        "metrics": [dict(m) for m in metrics],
        "run": run_metadata(),
    }
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def load_trajectory(path: str) -> Dict[str, object]:
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path}: not a {BENCH_FORMAT} document "
            f"(format={doc.get('format') if isinstance(doc, dict) else None!r})"
        )
    return doc


def compare(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, object]]:
    """Direction-aware comparison of two trajectory documents.

    Returns one row per metric present in *both* documents, each with a
    ``status`` of ``ok``, ``improved`` or ``regressed``; ``regressed``
    means the value moved in the *bad* direction (per
    ``higher_is_better``) by more than *threshold* relative to the
    baseline.  Metrics present on only one side are reported as
    ``added``/``removed`` and never fail the comparison.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    base = {m["metric"]: m for m in baseline.get("metrics", [])}
    cur = {m["metric"]: m for m in current.get("metrics", [])}
    rows: List[Dict[str, object]] = []
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            rows.append({"metric": name, "status": "removed",
                         "baseline": base[name]["value"]})
            continue
        if name not in base:
            rows.append({"metric": name, "status": "added",
                         "current": cur[name]["value"]})
            continue
        b = float(base[name]["value"])
        c = float(cur[name]["value"])
        higher = bool(base[name].get("higher_is_better", True))
        # Signed relative change in the *good* direction.
        if b == 0:
            change = 0.0 if c == 0 else float("inf") * (1 if c > b else -1)
        else:
            change = (c - b) / abs(b)
        if not higher:
            change = -change
        if change < -threshold:
            status = "regressed"
        elif change > threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append({
            "metric": name, "status": status, "baseline": b, "current": c,
            "change": change, "unit": base[name].get("unit", ""),
        })
    return rows


def regressions(rows: Sequence[Mapping[str, object]]) -> List[Mapping[str, object]]:
    return [row for row in rows if row["status"] == "regressed"]


def _cmd_show(args: argparse.Namespace) -> int:
    doc = load_trajectory(args.file)
    run = doc.get("run") or {}
    print(f"{doc['benchmark']}  ({run.get('created_at', '?')}, "
          f"py{run.get('python', '?')}, {run.get('cpu_count', '?')} cpus)")
    for m in doc["metrics"]:
        arrow = "higher" if m.get("higher_is_better", True) else "lower"
        print(f"  {m['metric']:<28s} {m['value']:>14.4f} {m.get('unit', ''):<8s}"
              f" ({arrow} is better)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_trajectory(args.baseline)
    current = load_trajectory(args.current)
    rows = compare(baseline, current, threshold=args.threshold)
    for row in rows:
        if row["status"] in ("added", "removed"):
            print(f"  {row['metric']:<28s} {row['status']}")
            continue
        print(f"  {row['metric']:<28s} {row['baseline']:>12.4f} -> "
              f"{row['current']:>12.4f}  ({row['change']:+.1%})  "
              f"{row['status'].upper()}")
    bad = regressions(rows)
    if bad:
        print(f"{len(bad)} metric(s) regressed beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("no regressions beyond the threshold")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="write/compare sealpaa benchmark trajectory documents"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("show", help="pretty-print one trajectory document")
    p.add_argument("file")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser(
        "compare",
        help="compare a fresh document against a pinned baseline; exit 1 "
             "on a >threshold regression",
    )
    p.add_argument("baseline", help="the committed BENCH_*.json")
    p.add_argument("current", help="the freshly produced document")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="relative regression tolerance (default 0.20)")
    p.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
